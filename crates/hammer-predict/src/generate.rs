//! Autoregressive sequence generation (Fig. 11 and control-sequence
//! extension).
//!
//! "The model can effectively predict future trends in real loads and
//! extend time series" — a trained model is rolled forward: each predicted
//! value is appended to the window and prediction repeats, producing an
//! arbitrarily long synthetic continuation with the learned temporal
//! character.

use crate::dataset::Normalizer;
use crate::models::SeriesModel;

/// Rolls `model` forward `steps` times from `seed_window` (normalised
/// values). Returns the generated normalised values.
///
/// # Panics
///
/// Panics when the seed window is empty.
pub fn generate_sequence(
    model: &mut dyn SeriesModel,
    seed_window: &[f64],
    steps: usize,
) -> Vec<f64> {
    assert!(!seed_window.is_empty(), "seed window must not be empty");
    let mut window = seed_window.to_vec();
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let next = model.predict_next(&window);
        out.push(next);
        window.remove(0);
        window.push(next);
    }
    out
}

/// Like [`generate_sequence`] but denormalises the output back to
/// transaction counts (floored at zero — negative workloads do not
/// exist).
pub fn generate_denormalized(
    model: &mut dyn SeriesModel,
    seed_window: &[f64],
    steps: usize,
    normalizer: &Normalizer,
) -> Vec<f64> {
    generate_sequence(model, seed_window, steps)
        .into_iter()
        .map(|v| normalizer.denormalize(v).max(0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{LinearModel, TrainConfig};

    fn sine(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 2.0 * std::f64::consts::PI / 12.0).sin())
            .collect()
    }

    #[test]
    fn generates_requested_length() {
        let config = TrainConfig {
            window: 12,
            epochs: 10,
            ..TrainConfig::default()
        };
        let mut model = LinearModel::new(&config);
        let series = sine(120);
        model.fit(&series, &config);
        let out = generate_sequence(&mut model, &series[..12], 40);
        assert_eq!(out.len(), 40);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn generated_sine_stays_oscillatory() {
        // A trained linear AR model on a clean sine must keep oscillating
        // rather than collapse to a constant.
        let config = TrainConfig {
            window: 12,
            epochs: 60,
            lr: 1e-2,
            ..TrainConfig::default()
        };
        let mut model = LinearModel::new(&config);
        let series = sine(240);
        model.fit(&series, &config);
        let out = generate_sequence(&mut model, &series[..12], 48);
        let max = out.iter().copied().fold(f64::MIN, f64::max);
        let min = out.iter().copied().fold(f64::MAX, f64::min);
        assert!(max > 0.3 && min < -0.3, "collapsed: [{min}, {max}]");
    }

    #[test]
    fn denormalized_output_non_negative() {
        let config = TrainConfig {
            window: 6,
            epochs: 3,
            ..TrainConfig::default()
        };
        let mut model = LinearModel::new(&config);
        let series = sine(60);
        model.fit(&series, &config);
        let norm = Normalizer {
            mean: 1.0,
            std: 10.0,
        };
        let out = generate_denormalized(&mut model, &series[..6], 30, &norm);
        assert!(out.iter().all(|v| *v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "seed window must not be empty")]
    fn empty_seed_panics() {
        let config = TrainConfig::default();
        let mut model = LinearModel::new(&config);
        let _ = generate_sequence(&mut model, &[], 5);
    }
}
