//! Hammer's learning-based workload prediction (paper §IV).
//!
//! Real control sequences are too short for large-scale testing, so the
//! paper trains a time-series model to learn a workload's temporal
//! character and *extend* it. This crate assembles that model and its
//! Table III baselines from [`hammer_nn`] building blocks:
//!
//! * [`dataset`] — windowing, z-score normalisation, chronological
//!   train/test splitting of hourly transaction-count series.
//! * [`metrics`] — MAE / MSE / RMSE / R² (Table III's columns).
//! * [`models`] — the [`models::SeriesModel`] trait and five
//!   implementations: `Linear`, `RNN`, `TCN`, `Transformer`, and the
//!   paper's `Ours` (TCN → BiGRU → multi-head attention, Fig. 5),
//!   all trained with MAE loss (Eq. 8) and Adam.
//! * [`generate`] — autoregressive rollout to produce the "generated
//!   sequence" of Fig. 11 and arbitrarily long control sequences.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod generate;
pub mod metrics;
pub mod models;

pub use dataset::{Dataset, Normalizer};
pub use generate::generate_sequence;
pub use metrics::{evaluate, Metrics};
pub use models::{
    HammerModel, LinearModel, RnnModel, SeriesModel, TcnModel, TrainConfig, TransformerModel,
};
