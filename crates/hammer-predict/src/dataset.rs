//! Dataset pipeline: normalisation, windowing, chronological splits.
//!
//! The paper pre-processes each application's transaction log by "dividing
//! them into hourly intervals and counting the number of transactions in
//! each interval" (§V-E); here the hourly series arrives directly (from
//! `hammer-workload`'s trace generators) and is normalised and windowed
//! for supervised next-step prediction.

/// Z-score normalisation fitted on training data only.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normalizer {
    /// Training-set mean.
    pub mean: f64,
    /// Training-set standard deviation (floored to avoid division by 0).
    pub std: f64,
}

impl Normalizer {
    /// Fits on a series.
    pub fn fit(series: &[f64]) -> Self {
        if series.is_empty() {
            return Normalizer {
                mean: 0.0,
                std: 1.0,
            };
        }
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / series.len() as f64;
        Normalizer {
            mean,
            std: var.sqrt().max(1e-9),
        }
    }

    /// Normalises one value.
    pub fn normalize(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Inverts the normalisation.
    pub fn denormalize(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }
}

/// A windowed next-step-prediction dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Normalised training series.
    pub train: Vec<f64>,
    /// Normalised test series (chronologically after `train`).
    pub test: Vec<f64>,
    /// The fitted normaliser (from the training split only).
    pub normalizer: Normalizer,
    /// Window length fed to the models.
    pub window: usize,
}

impl Dataset {
    /// Splits `series` chronologically at `train_fraction` and normalises
    /// both parts with training statistics.
    ///
    /// # Panics
    ///
    /// Panics when the window is zero, the fraction is outside `(0, 1)`,
    /// or the series is too short to produce at least one training and
    /// one test sample.
    pub fn new(series: &[f64], window: usize, train_fraction: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1)"
        );
        let split = (series.len() as f64 * train_fraction).round() as usize;
        assert!(
            split > window && series.len() - split > window,
            "series too short: len {} window {window} split {split}",
            series.len()
        );
        let normalizer = Normalizer::fit(&series[..split]);
        let train = series[..split]
            .iter()
            .map(|v| normalizer.normalize(*v))
            .collect();
        // Test windows may reach back into the train tail for context, so
        // keep `window` values of overlap.
        let test = series[split - window..]
            .iter()
            .map(|v| normalizer.normalize(*v))
            .collect();
        Dataset {
            train,
            test,
            normalizer,
            window,
        }
    }

    /// `(window, target)` samples over the training split.
    pub fn train_samples(&self) -> Vec<(&[f64], f64)> {
        windows(&self.train, self.window)
    }

    /// `(window, target)` samples over the test split.
    pub fn test_samples(&self) -> Vec<(&[f64], f64)> {
        windows(&self.test, self.window)
    }
}

/// Sliding `(window, next)` samples over a series.
pub fn windows(series: &[f64], window: usize) -> Vec<(&[f64], f64)> {
    if series.len() <= window {
        return Vec::new();
    }
    (0..series.len() - window)
        .map(|i| (&series[i..i + window], series[i + window]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64).sin() * 10.0 + 50.0).collect()
    }

    #[test]
    fn normalizer_roundtrip() {
        let s = series(100);
        let norm = Normalizer::fit(&s);
        for v in &s {
            let back = norm.denormalize(norm.normalize(*v));
            assert!((back - v).abs() < 1e-9);
        }
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let s = series(1000);
        let norm = Normalizer::fit(&s);
        let normalized: Vec<f64> = s.iter().map(|v| norm.normalize(*v)).collect();
        let mean = normalized.iter().sum::<f64>() / normalized.len() as f64;
        let var =
            normalized.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / normalized.len() as f64;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalizer_constant_series_safe() {
        let norm = Normalizer::fit(&[5.0; 10]);
        assert!(norm.normalize(5.0).is_finite());
    }

    #[test]
    fn windows_cover_series() {
        let s: Vec<f64> = (0..10).map(|v| v as f64).collect();
        let w = windows(&s, 3);
        assert_eq!(w.len(), 7);
        assert_eq!(w[0], (&s[0..3], 3.0));
        assert_eq!(w[6], (&s[6..9], 9.0));
    }

    #[test]
    fn windows_short_series_empty() {
        let s = vec![1.0, 2.0];
        assert!(windows(&s, 3).is_empty());
        assert!(windows(&s, 2).is_empty());
    }

    #[test]
    fn dataset_split_is_chronological_with_context_overlap() {
        let s = series(100);
        let ds = Dataset::new(&s, 5, 0.8);
        assert_eq!(ds.train.len(), 80);
        assert_eq!(ds.test.len(), 25); // 20 + window overlap
                                       // First test target must be the value at index 80 of the source.
        let first_target = ds.test_samples()[0].1;
        let expected = ds.normalizer.normalize(s[80]);
        assert!((first_target - expected).abs() < 1e-9);
    }

    #[test]
    fn sample_counts() {
        let s = series(100);
        let ds = Dataset::new(&s, 5, 0.8);
        assert_eq!(ds.train_samples().len(), 75);
        assert_eq!(ds.test_samples().len(), 20);
    }

    #[test]
    #[should_panic(expected = "series too short")]
    fn too_short_panics() {
        let _ = Dataset::new(&series(10), 8, 0.8);
    }
}
