//! Prediction-quality metrics: the columns of the paper's Table III.

/// MAE / MSE / RMSE / R² over a prediction set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// Mean absolute error.
    pub mae: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Coefficient of determination (1 = perfect; can be negative).
    pub r2: f64,
}

/// Computes metrics for parallel prediction/target slices.
///
/// # Panics
///
/// Panics when the slices differ in length or are empty.
pub fn evaluate(predictions: &[f64], targets: &[f64]) -> Metrics {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "no predictions");
    let n = predictions.len() as f64;
    let mae = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / n;
    let mse = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / n;
    let mean_target = targets.iter().sum::<f64>() / n;
    let ss_tot: f64 = targets.iter().map(|t| (t - mean_target).powi(2)).sum();
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (t - p).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else if ss_res == 0.0 {
        1.0
    } else {
        0.0
    };
    Metrics {
        mae,
        mse,
        rmse: mse.sqrt(),
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = [1.0, 2.0, 3.0];
        let m = evaluate(&t, &t);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.mse, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.r2, 1.0);
    }

    #[test]
    fn known_values() {
        let p = [2.0, 4.0];
        let t = [1.0, 2.0];
        let m = evaluate(&p, &t);
        assert!((m.mae - 1.5).abs() < 1e-12); // (1 + 2)/2
        assert!((m.mse - 2.5).abs() < 1e-12); // (1 + 4)/2
        assert!((m.rmse - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_prediction_has_zero_r2() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5; 4];
        let m = evaluate(&p, &t);
        assert!(m.r2.abs() < 1e-12);
    }

    #[test]
    fn bad_prediction_negative_r2() {
        let t = [1.0, 2.0, 3.0];
        let p = [30.0, -10.0, 99.0];
        assert!(evaluate(&p, &t).r2 < 0.0);
    }

    #[test]
    fn constant_target_handled() {
        let t = [5.0; 3];
        assert_eq!(evaluate(&t, &t).r2, 1.0);
        assert_eq!(evaluate(&[6.0; 3], &t).r2, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = evaluate(&[1.0], &[1.0, 2.0]);
    }
}
