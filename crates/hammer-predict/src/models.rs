//! The prediction models of Table III.
//!
//! All five operate on *normalised* series (see [`crate::dataset`]), take
//! a window of `TrainConfig::window` past values, and predict the next
//! value. All are trained with MAE loss (paper Eq. 8) and Adam.

use hammer_nn::layer::{Layer, Linear, Param};
use hammer_nn::{Adam, BiGru, Mat, MultiHeadAttention, Relu, Sequential, TcnBlock, VanillaRnn};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters shared by every model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainConfig {
    /// Input window length (24 = one day of hourly buckets).
    pub window: usize,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed for weight init and sample shuffling.
    pub seed: u64,
    /// Stop when the epoch-mean loss improves less than this
    /// ("the training process concludes when the model's loss converges").
    pub convergence_tol: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            window: 24,
            epochs: 120,
            lr: 5e-3,
            seed: 7,
            convergence_tol: 1e-5,
        }
    }
}

/// A next-step time-series predictor.
pub trait SeriesModel {
    /// Display name (matches Table III's Method column).
    fn name(&self) -> &'static str;
    /// Trains on a normalised series; returns the final epoch-mean MAE.
    fn fit(&mut self, train: &[f64], config: &TrainConfig) -> f32;
    /// Predicts the next normalised value from a window of
    /// `config.window` normalised values.
    fn predict_next(&mut self, window: &[f64]) -> f64;
}

fn window_to_mat(window: &[f64]) -> Mat {
    Mat::from_vec(window.len(), 1, window.iter().map(|v| *v as f32).collect())
}

/// Shared training loop for sequence-body + scalar-head models.
struct SeqTrainer {
    body: Box<dyn Layer>,
    head: Linear,
    adam: Adam,
    window: usize,
    /// Feed the raw last observation to the head (skip connection).
    use_skip: bool,
    /// Validation-based early stopping with best-weight restore.
    early_stop: bool,
}

impl SeqTrainer {
    /// The vanilla training recipe the paper's baselines use: no skip
    /// connection, plain train-until-converged.
    fn vanilla(body: Box<dyn Layer>, head: Linear, lr: f32, window: usize) -> Self {
        SeqTrainer {
            body,
            head,
            adam: Adam::new(lr),
            window,
            use_skip: false,
            early_stop: false,
        }
    }

    /// The full recipe of the proposed model: last-value skip connection
    /// plus validation early stopping.
    fn tuned(body: Box<dyn Layer>, head: Linear, lr: f32, window: usize) -> Self {
        SeqTrainer {
            body,
            head,
            adam: Adam::new(lr),
            window,
            use_skip: true,
            early_stop: true,
        }
    }

    /// Head input: the body's last-step features, plus — with `use_skip` —
    /// the raw last observation (a skip connection: short-term dependence
    /// flows straight to the output, so the learned stack only has to
    /// model the *change*).
    fn head_input(&self, window: &[f64], seq: &Mat) -> Mat {
        let mut features = seq.row(seq.rows() - 1).to_vec();
        if self.use_skip {
            features.push(*window.last().expect("nonempty window") as f32);
        }
        Mat::from_vec(1, features.len(), features)
    }

    fn forward_scalar(&mut self, window: &[f64]) -> f32 {
        let x = window_to_mat(window);
        let seq = self.body.forward(&x);
        let last = self.head_input(window, &seq);
        self.head.forward(&last).get(0, 0)
    }

    /// One MAE training step; returns the loss.
    fn train_step(&mut self, window: &[f64], target: f64) -> f32 {
        let x = window_to_mat(window);
        let seq = self.body.forward(&x);
        let t_len = seq.rows();
        let cols = seq.cols();
        let last = self.head_input(window, &seq);
        let pred = self.head.forward(&last);
        let target_mat = Mat::from_vec(1, 1, vec![target as f32]);
        let (loss, dpred) = hammer_nn::mae_loss(&pred, &target_mat);
        let d_last = self.head.backward(&dpred);
        // Only the last time step feeds the head (the final skip-feature
        // column belongs to the raw input, which takes no gradient).
        let mut d_seq = Mat::zeros(t_len, cols);
        d_seq
            .row_mut(t_len - 1)
            .copy_from_slice(&d_last.row(0)[..cols]);
        let _ = self.body.backward(&d_seq);
        let mut params = self.body.params_mut();
        params.extend(self.head.params_mut());
        self.adam.step(params);
        loss
    }

    fn snapshot(&mut self) -> Vec<Mat> {
        let mut params: Vec<Mat> = self
            .body
            .params_mut()
            .iter()
            .map(|p| p.value.clone())
            .collect();
        params.extend(self.head.params_mut().iter().map(|p| p.value.clone()));
        params
    }

    fn restore(&mut self, snapshot: &[Mat]) {
        let mut params = self.body.params_mut();
        params.extend(self.head.params_mut());
        for (p, saved) in params.into_iter().zip(snapshot) {
            p.value = saved.clone();
        }
    }

    fn validation_mae(&mut self, samples: &[(&[f64], f64)]) -> f32 {
        let mut total = 0.0;
        for (w, t) in samples {
            total += (self.forward_scalar(w) as f64 - t).abs() as f32;
        }
        total / samples.len().max(1) as f32
    }

    /// Trains until the loss converges; with `early_stop`, holds out a
    /// chronological validation tail (last 15% of windows) and restores
    /// the best-validation weights, which keeps larger models from
    /// memorising the small datasets.
    fn fit(&mut self, train: &[f64], config: &TrainConfig) -> f32 {
        let samples = crate::dataset::windows(train, self.window);
        if samples.is_empty() {
            return f32::NAN;
        }
        let split = if self.early_stop {
            (samples.len() * 85 / 100).max(1).min(samples.len() - 1)
        } else {
            samples.len() - 1
        };
        let (train_samples, val_samples) = if samples.len() >= 8 && self.early_stop {
            samples.split_at(split)
        } else {
            (&samples[..], &samples[..samples.len().min(1)])
        };
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xfeed);
        let mut order: Vec<usize> = (0..train_samples.len()).collect();
        let mut best_val = f32::MAX;
        let mut best_snapshot = self.snapshot();
        let mut patience = 10u32;
        let mut final_loss = f32::NAN;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &i in &order {
                let (w, t) = train_samples[i];
                total += self.train_step(w, t);
            }
            final_loss = total / train_samples.len() as f32;
            if self.early_stop {
                let val = self.validation_mae(val_samples);
                if val + config.convergence_tol < best_val {
                    best_val = val;
                    best_snapshot = self.snapshot();
                    patience = 10;
                } else {
                    patience -= 1;
                    if patience == 0 {
                        break;
                    }
                }
            } else {
                // Vanilla convergence criterion on the training loss.
                if (best_val - final_loss).abs() < config.convergence_tol {
                    break;
                }
                best_val = final_loss;
            }
        }
        if self.early_stop {
            self.restore(&best_snapshot);
        }
        final_loss
    }
}

/// Positional encoding: adds fixed sinusoids to the sequence (identity in
/// the backward pass). Needed by the Transformer baseline, which has no
/// recurrence or convolution to perceive order.
#[derive(Clone, Debug, Default)]
struct PositionalEncoding;

impl Layer for PositionalEncoding {
    fn forward(&mut self, x: &Mat) -> Mat {
        let mut out = x.clone();
        let d = x.cols();
        for t in 0..x.rows() {
            for c in 0..d {
                let angle = t as f32 / 10_000f32.powf(2.0 * (c / 2) as f32 / d as f32);
                let enc = if c % 2 == 0 { angle.sin() } else { angle.cos() };
                let v = out.get(t, c) + enc;
                out.set(t, c, v);
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        grad_out.clone()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// Linear autoregression: the flattened window through one dense layer.
pub struct LinearModel {
    net: Linear,
    adam: Adam,
    window: usize,
}

impl LinearModel {
    /// Builds the model for the config's window length.
    pub fn new(config: &TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        LinearModel {
            net: Linear::new(config.window, 1, &mut rng),
            adam: Adam::new(config.lr),
            window: config.window,
        }
    }
}

impl SeriesModel for LinearModel {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn fit(&mut self, train: &[f64], config: &TrainConfig) -> f32 {
        let samples = crate::dataset::windows(train, self.window);
        if samples.is_empty() {
            return f32::NAN;
        }
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xfeed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut prev_loss = f32::MAX;
        let mut final_loss = f32::NAN;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &i in &order {
                let (w, t) = samples[i];
                let x = Mat::from_vec(1, self.window, w.iter().map(|v| *v as f32).collect());
                let pred = self.net.forward(&x);
                let target = Mat::from_vec(1, 1, vec![t as f32]);
                let (loss, dpred) = hammer_nn::mae_loss(&pred, &target);
                total += loss;
                let _ = self.net.backward(&dpred);
                self.adam.step(self.net.params_mut());
            }
            final_loss = total / samples.len() as f32;
            if (prev_loss - final_loss).abs() < config.convergence_tol {
                break;
            }
            prev_loss = final_loss;
        }
        final_loss
    }

    fn predict_next(&mut self, window: &[f64]) -> f64 {
        let x = Mat::from_vec(1, self.window, window.iter().map(|v| *v as f32).collect());
        self.net.forward(&x).get(0, 0) as f64
    }
}

/// The vanilla-RNN baseline.
pub struct RnnModel {
    trainer: SeqTrainer,
}

impl RnnModel {
    /// Builds the model.
    pub fn new(config: &TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let hidden = 24;
        let body = VanillaRnn::new(1, hidden, &mut rng);
        let head = Linear::new(hidden, 1, &mut rng);
        RnnModel {
            trainer: SeqTrainer::vanilla(Box::new(body), head, config.lr, config.window),
        }
    }
}

impl SeriesModel for RnnModel {
    fn name(&self) -> &'static str {
        "RNN"
    }
    fn fit(&mut self, train: &[f64], config: &TrainConfig) -> f32 {
        self.trainer.fit(train, config)
    }
    fn predict_next(&mut self, window: &[f64]) -> f64 {
        self.trainer.forward_scalar(window) as f64
    }
}

/// The TCN-only baseline (two residual blocks, dilations 1 and 2).
pub struct TcnModel {
    trainer: SeqTrainer,
}

impl TcnModel {
    /// Builds the model.
    pub fn new(config: &TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let channels = 16;
        let body = Sequential::new()
            .push(TcnBlock::new(1, channels, 3, 1, &mut rng))
            .push(TcnBlock::new(channels, channels, 3, 2, &mut rng))
            .push(TcnBlock::new(channels, channels, 3, 4, &mut rng));
        let head = Linear::new(channels, 1, &mut rng);
        TcnModel {
            trainer: SeqTrainer::vanilla(Box::new(body), head, config.lr, config.window),
        }
    }
}

impl SeriesModel for TcnModel {
    fn name(&self) -> &'static str {
        "TCN"
    }
    fn fit(&mut self, train: &[f64], config: &TrainConfig) -> f32 {
        self.trainer.fit(train, config)
    }
    fn predict_next(&mut self, window: &[f64]) -> f64 {
        self.trainer.forward_scalar(window) as f64
    }
}

/// The Transformer baseline: embedding + positional encoding + one
/// self-attention encoder block with a feed-forward tail.
pub struct TransformerModel {
    trainer: SeqTrainer,
}

impl TransformerModel {
    /// Builds the model.
    pub fn new(config: &TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = 16;
        let body = Sequential::new()
            .push(Linear::new(1, d, &mut rng))
            .push(PositionalEncoding)
            .push(MultiHeadAttention::new(d, 4, &mut rng))
            .push(Linear::new(d, 2 * d, &mut rng))
            .push(Relu::new())
            .push(Linear::new(2 * d, d, &mut rng));
        let head = Linear::new(d, 1, &mut rng);
        TransformerModel {
            trainer: SeqTrainer::vanilla(Box::new(body), head, config.lr, config.window),
        }
    }
}

impl SeriesModel for TransformerModel {
    fn name(&self) -> &'static str {
        "Transformer"
    }
    fn fit(&mut self, train: &[f64], config: &TrainConfig) -> f32 {
        self.trainer.fit(train, config)
    }
    fn predict_next(&mut self, window: &[f64]) -> f64 {
        self.trainer.forward_scalar(window) as f64
    }
}

/// The paper's model (Fig. 5): **TCN → BiGRU → multi-head attention**.
///
/// The TCN captures long-range structure (periodicity), the BiGRU models
/// short-range dependencies in both directions, and the attention stage
/// catches sudden bursts. Because the paper's datasets yield only ~200
/// training windows, each member network is deliberately small and the
/// model is a 3-member deep ensemble (different initialisations, averaged
/// predictions) — the standard variance-reduction recipe at this data
/// scale (see EXPERIMENTS.md).
pub struct HammerModel {
    members: Vec<SeqTrainer>,
}

impl HammerModel {
    /// Builds the ensemble.
    pub fn new(config: &TrainConfig) -> Self {
        let members = (0..3u64)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i * 7919));
                let channels = 8;
                let gru_hidden = 6; // BiGRU output = 12
                let attn_dim = 2 * gru_hidden;
                let body = Sequential::new()
                    .push(TcnBlock::new(1, channels, 3, 1, &mut rng))
                    .push(TcnBlock::new(channels, channels, 3, 2, &mut rng))
                    .push(BiGru::new(channels, gru_hidden, &mut rng))
                    .push(MultiHeadAttention::new(attn_dim, 2, &mut rng));
                let head = Linear::new(attn_dim + 1, 1, &mut rng);
                SeqTrainer::tuned(Box::new(body), head, config.lr * 0.2, config.window)
            })
            .collect();
        HammerModel { members }
    }
}

impl SeriesModel for HammerModel {
    fn name(&self) -> &'static str {
        "Ours"
    }
    fn fit(&mut self, train: &[f64], config: &TrainConfig) -> f32 {
        let mut last = f32::NAN;
        for member in &mut self.members {
            last = member.fit(train, config);
        }
        last
    }
    fn predict_next(&mut self, window: &[f64]) -> f64 {
        let n = self.members.len().max(1) as f64;
        self.members
            .iter_mut()
            .map(|m| m.forward_scalar(window) as f64)
            .sum::<f64>()
            / n
    }
}

/// A public handle to the shared sequence trainer, for ablation studies
/// that assemble custom bodies from [`hammer_nn`] blocks and train them
/// with exactly the recipes the Table III models use.
pub struct SeqTrainerHandle {
    inner: SeqTrainer,
}

impl SeqTrainerHandle {
    /// The vanilla recipe (the baselines' protocol): no skip connection,
    /// train until the loss converges.
    pub fn vanilla(body: Box<dyn Layer>, head: Linear, lr: f32, window: usize) -> Self {
        SeqTrainerHandle {
            inner: SeqTrainer::vanilla(body, head, lr, window),
        }
    }

    /// The proposed model's full recipe: last-value skip connection plus
    /// validation early stopping with best-weight restore.
    pub fn tuned(body: Box<dyn Layer>, head: Linear, lr: f32, window: usize) -> Self {
        SeqTrainerHandle {
            inner: SeqTrainer::tuned(body, head, lr, window),
        }
    }

    /// Trains on a normalised series; returns the final epoch-mean MAE.
    pub fn fit(&mut self, train: &[f64], config: &TrainConfig) -> f32 {
        self.inner.fit(train, config)
    }

    /// Predicts the next normalised value.
    pub fn predict_next(&mut self, window: &[f64]) -> f64 {
        self.inner.forward_scalar(window) as f64
    }
}

/// Builds all five Table III models in the paper's row order.
pub fn all_models(config: &TrainConfig) -> Vec<Box<dyn SeriesModel>> {
    vec![
        Box::new(LinearModel::new(config)),
        Box::new(RnnModel::new(config)),
        Box::new(TcnModel::new(config)),
        Box::new(TransformerModel::new(config)),
        Box::new(HammerModel::new(config)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 2.0 * std::f64::consts::PI / 24.0).sin())
            .collect()
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            window: 12,
            epochs: 15,
            lr: 1e-2,
            seed: 3,
            convergence_tol: 1e-7,
        }
    }

    fn check_learns(model: &mut dyn SeriesModel, tolerance: f64) {
        let config = quick_config();
        let series = sine_series(200);
        let loss = model.fit(&series[..160], &config);
        assert!(loss.is_finite(), "{}: loss diverged", model.name());
        // Evaluate one-step predictions on the tail.
        let samples = crate::dataset::windows(&series[148..], config.window);
        let mut total_err = 0.0;
        for (w, t) in &samples {
            total_err += (model.predict_next(w) - t).abs();
        }
        let mae = total_err / samples.len() as f64;
        assert!(
            mae < tolerance,
            "{}: test MAE {mae} above {tolerance}",
            model.name()
        );
    }

    #[test]
    fn linear_learns_sine() {
        check_learns(&mut LinearModel::new(&quick_config()), 0.3);
    }

    #[test]
    fn rnn_learns_sine() {
        check_learns(&mut RnnModel::new(&quick_config()), 0.35);
    }

    #[test]
    fn tcn_learns_sine() {
        check_learns(&mut TcnModel::new(&quick_config()), 0.35);
    }

    #[test]
    fn transformer_learns_sine() {
        check_learns(&mut TransformerModel::new(&quick_config()), 0.5);
    }

    #[test]
    fn hammer_model_learns_sine() {
        check_learns(&mut HammerModel::new(&quick_config()), 0.3);
    }

    #[test]
    fn all_models_have_unique_names() {
        let config = quick_config();
        let models = all_models(&config);
        let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["Linear", "RNN", "TCN", "Transformer", "Ours"]);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let config = quick_config();
        let series = sine_series(100);
        let mut a = HammerModel::new(&config);
        let mut b = HammerModel::new(&config);
        let la = a.fit(&series, &config);
        let lb = b.fit(&series, &config);
        assert_eq!(la, lb);
        let w = &series[..config.window];
        assert_eq!(a.predict_next(w), b.predict_next(w));
    }

    #[test]
    fn positional_encoding_identity_backward() {
        let mut pe = PositionalEncoding;
        let x = Mat::from_vec(3, 2, vec![0.0; 6]);
        let y = pe.forward(&x);
        // Encoding alone: y[0][1] = cos(0) = 1.
        assert!((y.get(0, 1) - 1.0).abs() < 1e-6);
        let g = Mat::from_vec(3, 2, vec![1.0; 6]);
        assert_eq!(pe.backward(&g), g);
    }

    #[test]
    fn fit_on_too_short_series_returns_nan() {
        let config = quick_config();
        let mut model = LinearModel::new(&config);
        assert!(model.fit(&[1.0, 2.0], &config).is_nan());
    }
}
