//! Resilient-submission retry policy.
//!
//! Under fault injection ([`hammer_net::FaultPlan`]) a submission can fail
//! transiently — the target node is crashed, blackholed, or its mempool is
//! full (backpressure). The submission workers consult a [`RetryPolicy`]
//! to decide whether to re-attempt: exponential backoff with deterministic
//! jitter, a per-transaction attempt budget, and a per-slice deadline.
//! Every decision is driven by [`hammer_chain::ChainError::kind`] /
//! `is_retryable()`, never by matching error variants directly.
//!
//! The default policy is [`RetryPolicy::disabled`]: with no retry budget
//! the driver behaves exactly as it did before fault injection existed
//! (every submission is attempted once), so fault-free runs are
//! bit-identical with or without this module.

use std::time::Duration;

/// Outcome of one retry-policy consultation after a transient failure.
/// [`RetryPolicy::decide`] is the single decision point the submission
/// workers use, so its semantics can be property-tested without a chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Pause for the contained duration, then attempt again.
    Retry(Duration),
    /// The attempt budget is exhausted: abandon as `Dropped`.
    Drop,
    /// The next pause would cross the per-slice deadline: abandon as
    /// `Expired`.
    Expire,
}

/// When and how the submission workers retry transient failures.
///
/// Backoff for attempt `n` (0-based) is
/// `min(base_backoff · multiplier^n, max_backoff)`, scaled by a
/// deterministic jitter factor in `[1 - jitter, 1 + jitter]` derived from
/// the transaction id — two runs over the same workload retry on the same
/// schedule (simulated time), keeping fault runs reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum re-attempts after the first submission (0 = disabled).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Exponential growth factor per attempt (≥ 1.0).
    pub multiplier: f64,
    /// Upper clamp on a single backoff pause.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1)`: each pause is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Give up retrying once this much simulated time has passed since the
    /// first attempt. `None` defaults to the control sequence's slice
    /// length (a transaction may not steal budget from the next slice).
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

impl RetryPolicy {
    /// No retries: submissions are attempted exactly once (the pre-fault
    /// driver behaviour, and the default).
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.0,
            deadline: None,
        }
    }

    /// A sensible enabled policy: 8 attempts, 10 ms → 1.28 s exponential
    /// backoff with 20% jitter, deadline defaulting to the slice length.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(2),
            jitter: 0.2,
            deadline: None,
        }
    }

    /// Whether any retrying happens at all.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// Checks internal consistency. Returns a human-readable complaint for
    /// the driver/builder to wrap into their own error types.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        if self.base_backoff.is_zero() {
            return Err("retry base_backoff must be positive".to_owned());
        }
        if self.multiplier < 1.0 || !self.multiplier.is_finite() {
            return Err(format!(
                "retry multiplier must be a finite value >= 1.0, got {}",
                self.multiplier
            ));
        }
        if self.max_backoff < self.base_backoff {
            return Err("retry max_backoff must be >= base_backoff".to_owned());
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err(format!(
                "retry jitter must be in [0, 1), got {}",
                self.jitter
            ));
        }
        if self.deadline.is_some_and(|d| d.is_zero()) {
            return Err("retry deadline must be positive when set".to_owned());
        }
        Ok(())
    }

    /// The pause before retry number `attempt` (0-based), jittered
    /// deterministically by `seed` (the transaction id fingerprint): the
    /// same transaction backs off identically across runs.
    pub fn backoff(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self.multiplier.powi(attempt.min(63) as i32);
        let raw = self
            .base_backoff
            .mul_f64(exp)
            .min(self.max_backoff)
            .max(self.base_backoff.min(self.max_backoff));
        if self.jitter == 0.0 {
            return raw;
        }
        // splitmix64 of (seed, attempt) → uniform fraction in [0, 1).
        let mixed = splitmix64(seed ^ ((attempt as u64) << 32));
        let unit = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 + self.jitter * (2.0 * unit - 1.0);
        raw.mul_f64(factor)
    }

    /// The worker-loop decision after transient failure number `attempt`
    /// (0-based): retry after a jittered pause, drop (budget exhausted),
    /// or expire (the pause would cross `give_up_at`). `now` is the
    /// current simulated time and `seed` the transaction fingerprint —
    /// both the driver's retry loop and property tests route through
    /// here, so what is tested is what runs.
    pub fn decide(
        &self,
        attempt: u32,
        seed: u64,
        now: Duration,
        give_up_at: Duration,
    ) -> RetryDecision {
        if attempt >= self.max_retries {
            return RetryDecision::Drop;
        }
        let pause = self.backoff(attempt, seed);
        if now + pause >= give_up_at {
            return RetryDecision::Expire;
        }
        RetryDecision::Retry(pause)
    }
}

/// The splitmix64 mixer (public-domain; the same finaliser the seeded
/// network RNG family uses). Full-period and cheap, which is all jitter
/// needs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disabled_policy_validates_and_never_retries() {
        let p = RetryPolicy::disabled();
        assert!(!p.enabled());
        assert!(p.validate().is_ok());
        // Even nonsense fields validate when disabled: they are unused.
        let p = RetryPolicy {
            multiplier: -1.0,
            ..RetryPolicy::disabled()
        };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn backoff_schedule_is_exponential_and_clamped() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard()
        };
        assert_eq!(p.backoff(0, 7), Duration::from_millis(10));
        assert_eq!(p.backoff(1, 7), Duration::from_millis(20));
        assert_eq!(p.backoff(2, 7), Duration::from_millis(40));
        assert_eq!(p.backoff(5, 7), Duration::from_millis(320));
        // 10ms * 2^10 = 10.24s clamps to max_backoff.
        assert_eq!(p.backoff(10, 7), Duration::from_secs(2));
        // Huge attempt numbers neither overflow nor panic.
        assert_eq!(p.backoff(u32::MAX, 7), Duration::from_secs(2));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter: 0.2,
            ..RetryPolicy::standard()
        };
        for attempt in 0..6 {
            for seed in [0u64, 1, 42, u64::MAX] {
                let a = p.backoff(attempt, seed);
                let b = p.backoff(attempt, seed);
                assert_eq!(a, b, "same inputs must give the same pause");
                let nominal = RetryPolicy { jitter: 0.0, ..p }.backoff(attempt, seed);
                let lo = nominal.mul_f64(1.0 - p.jitter - 1e-9);
                let hi = nominal.mul_f64(1.0 + p.jitter + 1e-9);
                assert!(a >= lo && a <= hi, "pause {a:?} outside [{lo:?}, {hi:?}]");
            }
        }
        // Different seeds should not all collapse to one pause.
        let distinct: std::collections::HashSet<Duration> =
            (0..32u64).map(|s| p.backoff(3, s)).collect();
        assert!(distinct.len() > 8, "jitter too coarse: {distinct:?}");
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let base = RetryPolicy::standard();
        for (bad, needle) in [
            (
                RetryPolicy {
                    base_backoff: Duration::ZERO,
                    ..base
                },
                "base_backoff",
            ),
            (
                RetryPolicy {
                    multiplier: 0.5,
                    ..base
                },
                "multiplier",
            ),
            (
                RetryPolicy {
                    multiplier: f64::NAN,
                    ..base
                },
                "multiplier",
            ),
            (
                RetryPolicy {
                    max_backoff: Duration::from_millis(1),
                    ..base
                },
                "max_backoff",
            ),
            (
                RetryPolicy {
                    jitter: 1.0,
                    ..base
                },
                "jitter",
            ),
            (
                RetryPolicy {
                    jitter: -0.1,
                    ..base
                },
                "jitter",
            ),
            (
                RetryPolicy {
                    deadline: Some(Duration::ZERO),
                    ..base
                },
                "deadline",
            ),
        ] {
            let err = bad.validate().unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle}");
        }
    }

    #[test]
    fn zero_jitter_is_exact() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard()
        };
        assert_eq!(p.backoff(4, 1), p.backoff(4, 2), "no jitter → seed-free");
    }

    #[test]
    fn decide_mirrors_the_worker_loop() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard()
        };
        let far = Duration::from_secs(3600);
        assert_eq!(
            p.decide(0, 7, Duration::ZERO, far),
            RetryDecision::Retry(Duration::from_millis(10))
        );
        assert_eq!(
            p.decide(p.max_retries, 7, Duration::ZERO, far),
            RetryDecision::Drop
        );
        // A pause that would land exactly on the deadline expires
        // (half-open, like fault windows).
        assert_eq!(
            p.decide(0, 7, Duration::ZERO, Duration::from_millis(10)),
            RetryDecision::Expire
        );
    }

    /// Drives [`RetryPolicy::decide`] the way a worker does: accumulate
    /// pauses from `start` until the policy says stop. Returns the
    /// terminal decision and the pause sequence taken.
    fn walk(
        policy: &RetryPolicy,
        seed: u64,
        start: Duration,
        give_up_at: Duration,
    ) -> (RetryDecision, Vec<Duration>) {
        let mut now = start;
        let mut pauses = Vec::new();
        for attempt in 0.. {
            match policy.decide(attempt, seed, now, give_up_at) {
                RetryDecision::Retry(pause) => {
                    now += pause;
                    pauses.push(pause);
                }
                terminal => return (terminal, pauses),
            }
        }
        unreachable!("decide terminates within max_retries + 1 attempts")
    }

    proptest! {
        /// Same seed + same transaction fingerprint ⇒ the identical
        /// jitter sequence, across independently constructed policies.
        #[test]
        fn prop_jitter_sequence_is_deterministic(
            seed in any::<u64>(),
            max_retries in 1u32..16,
            base_ms in 1u64..50,
            multiplier in 1.0f64..4.0,
            jitter in 0.0f64..0.9,
        ) {
            let build = || RetryPolicy {
                max_retries,
                base_backoff: Duration::from_millis(base_ms),
                multiplier,
                max_backoff: Duration::from_secs(2),
                jitter,
                deadline: None,
            };
            let (a, b) = (build(), build());
            prop_assert_eq!(a.validate(), Ok(()));
            let far = Duration::from_secs(1_000_000);
            let (end_a, pauses_a) = walk(&a, seed, Duration::ZERO, far);
            let (end_b, pauses_b) = walk(&b, seed, Duration::ZERO, far);
            prop_assert_eq!(end_a, end_b);
            prop_assert_eq!(&pauses_a, &pauses_b);
            // And per-attempt: the pause is a pure function of
            // (policy, attempt, seed).
            for (attempt, pause) in pauses_a.iter().enumerate() {
                prop_assert_eq!(a.backoff(attempt as u32, seed), *pause);
            }
        }

        /// With an unreachable deadline, exhausting the attempt budget
        /// always terminates in `Drop`, after exactly `max_retries`
        /// retries.
        #[test]
        fn prop_budget_exhaustion_always_drops(
            seed in any::<u64>(),
            max_retries in 1u32..16,
            base_ms in 1u64..50,
            multiplier in 1.0f64..4.0,
            jitter in 0.0f64..0.9,
        ) {
            let policy = RetryPolicy {
                max_retries,
                base_backoff: Duration::from_millis(base_ms),
                multiplier,
                max_backoff: Duration::from_secs(2),
                jitter,
                deadline: None,
            };
            // 2 s max pause × ≤16 attempts ≪ 1 000 000 s: the deadline
            // can never fire, so the budget must.
            let far = Duration::from_secs(1_000_000);
            let (end, pauses) = walk(&policy, seed, Duration::ZERO, far);
            prop_assert_eq!(end, RetryDecision::Drop);
            prop_assert_eq!(pauses.len() as u32, max_retries);
        }

        /// With a finite deadline, the walk still terminates, never
        /// retries past the deadline, and ends in `Drop` or `Expire` —
        /// the two abandonment statuses the accounting identity counts.
        #[test]
        fn prop_finite_deadline_terminates_in_drop_or_expire(
            seed in any::<u64>(),
            max_retries in 1u32..16,
            deadline_ms in 1u64..2_000,
        ) {
            let policy = RetryPolicy {
                max_retries,
                ..RetryPolicy::standard()
            };
            let give_up_at = Duration::from_millis(deadline_ms);
            let (end, pauses) = walk(&policy, seed, Duration::ZERO, give_up_at);
            prop_assert!(matches!(end, RetryDecision::Drop | RetryDecision::Expire));
            prop_assert!(pauses.len() as u32 <= max_retries);
            let elapsed: Duration = pauses.iter().sum();
            prop_assert!(elapsed < give_up_at, "retried past the deadline");
        }
    }
}
