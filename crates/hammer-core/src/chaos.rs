//! Chaos harness: run a backend under a seeded randomized fault schedule
//! ([`hammer_net::ChaosSchedule`]) and check a run-level invariant oracle
//! over the resulting report.
//!
//! The oracle ([`check_report`], [`check_journal`]) verifies properties
//! that must hold for *every* run, whatever faults were injected:
//!
//! 1. **Accounting identity** — `committed + failed + timed_out +
//!    rejected + dropped + expired == submitted`: no transaction is lost
//!    or double-counted, even when retries, drops, and watchdog aborts
//!    interleave.
//! 2. **Fault-window attribution exactness** — every
//!    [`crate::FaultWindowStats`] entry matches an independent recount of
//!    the commit times against the installed plan, and the windowed
//!    entries plus the `nominal` entry cover each commit exactly once.
//! 3. **Journal monotonicity** — per-node block-seal timestamps and the
//!    fault enter/exit stream never run backwards on the simulated clock.
//! 4. **No stall, no thread leak** — the run finished without tripping
//!    the stall watchdog, and tearing the deployment down returns the
//!    process to its baseline thread count.
//!
//! [`run_chaos_case`] packages the whole drill — deploy, discover fault
//! targets, generate and install a schedule, evaluate, judge — and is
//! shared by the `chaos_sweep` bench bin and the integration tests.

use std::collections::HashMap;
use std::time::Duration;

use hammer_chain::types::TxStatus;
use hammer_net::{
    ChaosConfig, ChaosSchedule, ChaosTargets, FaultPlan, LinkConfig, SimClock, SimNetwork,
};
use hammer_obs::{EventKind, JournalEvent, Obs};
use hammer_workload::{ControlSequence, WorkloadConfig};

use crate::deploy::{BackendOptions, BackendRegistry};
use crate::driver::{EvalConfig, EvalReport, Evaluation};
use crate::retry::RetryPolicy;

/// One invariant's verdict for a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantCheck {
    /// Stable snake_case invariant name.
    pub name: &'static str,
    /// Whether the invariant held.
    pub passed: bool,
    /// Human-readable evidence (counts compared, first offending event).
    pub detail: String,
}

impl InvariantCheck {
    /// A passing check (crate-internal: the chaos oracle and the scenario
    /// expectation layer are the only factories of evidence rows).
    pub(crate) fn pass(name: &'static str, detail: impl Into<String>) -> Self {
        InvariantCheck {
            name,
            passed: true,
            detail: detail.into(),
        }
    }

    /// A failing check (crate-internal, see [`InvariantCheck::pass`]).
    pub(crate) fn fail(name: &'static str, detail: impl Into<String>) -> Self {
        InvariantCheck {
            name,
            passed: false,
            detail: detail.into(),
        }
    }
}

/// The oracle's verdict over one chaos case: which backend and seed ran,
/// whether the watchdog fired, and every invariant's outcome.
#[derive(Clone, Debug)]
pub struct ChaosVerdict {
    /// The backend evaluated (registry name).
    pub backend: String,
    /// The schedule seed.
    pub seed: u64,
    /// Whether the stall watchdog aborted the run.
    pub stalled: bool,
    /// Every invariant checked, in check order.
    pub checks: Vec<InvariantCheck>,
}

impl ChaosVerdict {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The invariants that failed.
    pub fn violations(&self) -> Vec<&InvariantCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Serialises the verdict as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"backend\":\"");
        escape_into(&mut out, &self.backend);
        out.push_str(&format!(
            "\",\"seed\":{},\"stalled\":{},\"passed\":{},\"checks\":[",
            self.seed,
            self.stalled,
            self.passed()
        ));
        for (i, check) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"passed\":{},\"detail\":\"",
                check.name, check.passed
            ));
            escape_into(&mut out, &check.detail);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }
}

fn escape_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Checks the report-level invariants: the accounting identity and the
/// fault-window attribution (see the module docs).
pub fn check_report(report: &EvalReport, plan: Option<&FaultPlan>) -> Vec<InvariantCheck> {
    let mut checks = Vec::with_capacity(2);

    let accounted = report.committed as u64
        + report.failed as u64
        + report.timed_out as u64
        + report.dropped as u64
        + report.expired as u64
        + report.rejected;
    let detail = format!(
        "committed={} failed={} timed_out={} dropped={} expired={} rejected={} vs submitted={}",
        report.committed,
        report.failed,
        report.timed_out,
        report.dropped,
        report.expired,
        report.rejected,
        report.submitted
    );
    checks.push(if accounted == report.submitted {
        InvariantCheck::pass("accounting_identity", detail)
    } else {
        InvariantCheck::fail("accounting_identity", detail)
    });

    checks.push(attribution_check(report, plan));
    checks
}

/// Independently recounts commit times against the plan's windows and
/// compares the result entry-by-entry with the report's breakdown.
fn attribution_check(report: &EvalReport, plan: Option<&FaultPlan>) -> InvariantCheck {
    const NAME: &str = "fault_window_attribution";
    let windows = match plan {
        Some(plan) if !plan.is_empty() => plan.windows(),
        _ => {
            return if report.fault_windows.is_empty() {
                InvariantCheck::pass(NAME, "no plan installed, no breakdown reported")
            } else {
                InvariantCheck::fail(
                    NAME,
                    format!(
                        "no plan installed but {} breakdown entries reported",
                        report.fault_windows.len()
                    ),
                )
            };
        }
    };
    if report.fault_windows.len() != windows.len() + 1 {
        return InvariantCheck::fail(
            NAME,
            format!(
                "{} plan windows but {} breakdown entries (want windows + nominal)",
                windows.len(),
                report.fault_windows.len()
            ),
        );
    }
    let commits: Vec<Duration> = report
        .records
        .iter()
        .filter(|r| r.status == TxStatus::Committed)
        .filter_map(|r| r.end)
        .collect();
    for (window, entry) in windows.iter().zip(&report.fault_windows) {
        if entry.label != window.label {
            return InvariantCheck::fail(
                NAME,
                format!(
                    "entry '{}' out of order with window '{}'",
                    entry.label, window.label
                ),
            );
        }
        let recount = commits
            .iter()
            .filter(|&&end| end >= window.start && end < window.end)
            .count();
        if recount != entry.committed {
            return InvariantCheck::fail(
                NAME,
                format!(
                    "window '{}': report says {} commits, recount says {recount}",
                    window.label, entry.committed
                ),
            );
        }
    }
    // Windows may overlap (different fault kinds), so the per-window
    // entries can double-attribute; the exact cover is inside-any +
    // nominal == committed.
    let inside_any = commits
        .iter()
        .filter(|&&end| windows.iter().any(|w| end >= w.start && end < w.end))
        .count();
    let nominal = report.fault_windows.last().expect("checked non-empty");
    if nominal.label != "nominal" {
        return InvariantCheck::fail(
            NAME,
            format!("last entry is '{}', not nominal", nominal.label),
        );
    }
    let outside = commits.len() - inside_any;
    if nominal.committed != outside {
        return InvariantCheck::fail(
            NAME,
            format!(
                "nominal entry says {} commits, recount outside all windows says {outside}",
                nominal.committed
            ),
        );
    }
    InvariantCheck::pass(
        NAME,
        format!(
            "{} windows, {inside_any} commits inside, {outside} outside",
            windows.len()
        ),
    )
}

/// Checks the journal's simulated clock never runs backwards where a
/// single writer guarantees an order: per-node block seals, and the
/// fault enter/exit stream (both emitted by one thread each). A global
/// all-events check would be unsound — threads race into the ring.
pub fn check_journal(events: &[JournalEvent]) -> InvariantCheck {
    const NAME: &str = "journal_monotonicity";
    let mut per_node_seal: HashMap<&str, Duration> = HashMap::new();
    let mut last_fault = Duration::ZERO;
    let mut seals = 0usize;
    let mut fault_edges = 0usize;
    for event in events {
        match event.kind {
            EventKind::BlockSeal => {
                seals += 1;
                let last = per_node_seal.entry(event.node.as_str()).or_default();
                if event.at < *last {
                    return InvariantCheck::fail(
                        NAME,
                        format!(
                            "block seal on '{}' at {:?} after one at {:?}",
                            event.node, event.at, last
                        ),
                    );
                }
                *last = event.at;
            }
            EventKind::FaultEnter | EventKind::FaultExit => {
                fault_edges += 1;
                if event.at < last_fault {
                    return InvariantCheck::fail(
                        NAME,
                        format!(
                            "fault edge '{}' at {:?} after one at {:?}",
                            event.node, event.at, last_fault
                        ),
                    );
                }
                last_fault = event.at;
            }
            _ => {}
        }
    }
    InvariantCheck::pass(
        NAME,
        format!(
            "{seals} seals over {} nodes, {fault_edges} fault edges",
            per_node_seal.len()
        ),
    )
}

/// Live threads in this process (via procfs, like the conformance suite).
pub fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|dir| dir.count())
        .unwrap_or(0)
}

/// Live direct child processes of this process (via procfs): scans
/// `/proc/<pid>/stat` and counts entries whose parent pid is us. Zombies
/// (exited but unreaped children) still count — the supervisor is
/// expected to `wait()` on everything it spawns, so a zombie *is* a
/// leak.
pub fn live_children() -> usize {
    let own = std::process::id();
    let Ok(dir) = std::fs::read_dir("/proc") else {
        return 0;
    };
    dir.filter_map(|entry| {
        let entry = entry.ok()?;
        // Numeric directory names are pids.
        entry.file_name().to_str()?.parse::<u32>().ok()?;
        let stat = std::fs::read_to_string(entry.path().join("stat")).ok()?;
        // Field 2 (comm) may contain spaces/parens; the ppid is the 4th
        // field overall, i.e. the 2nd after the *last* ')'.
        let after_comm = &stat[stat.rfind(')')? + 1..];
        let ppid: u32 = after_comm.split_whitespace().nth(1)?.parse().ok()?;
        (ppid == own).then_some(())
    })
    .count()
}

/// One chaos drill: which backend to deploy, which seed drives both the
/// fault schedule and the workload, and how hard to push.
#[derive(Clone, Debug)]
pub struct ChaosCase {
    /// Registry name of the backend ([`BackendRegistry::builtin`]).
    pub backend: String,
    /// Seed for the fault schedule and the workload generator.
    pub seed: u64,
    /// Control-sequence length in one-second slices.
    pub slices: usize,
    /// Transactions per slice.
    pub rate: u32,
    /// Simulated-clock speedup.
    pub speedup: f64,
    /// Stall-watchdog budget (simulated). Must comfortably exceed the
    /// backend's block interval and the longest generated fault window.
    pub stall_budget: Duration,
}

impl ChaosCase {
    /// A case with sweep-friendly defaults: 10 slices at 100 tx/s, 100×
    /// speedup, and a 30-second stall budget (clear of Ethereum's
    /// 15-second blocks and the generator's 3-second window cap).
    pub fn new(backend: impl Into<String>, seed: u64) -> Self {
        ChaosCase {
            backend: backend.into(),
            seed,
            slices: 10,
            rate: 100,
            speedup: 100.0,
            stall_budget: Duration::from_secs(30),
        }
    }
}

/// Runs one chaos case end-to-end and returns the oracle's verdict:
/// deploy the backend fresh, discover its fault targets, generate and
/// install the seeded schedule, evaluate under the resilient submission
/// path with the stall watchdog armed, then check every invariant and
/// tear the deployment down (probing for leaked threads).
pub fn run_chaos_case(case: &ChaosCase) -> ChaosVerdict {
    let threads_before = live_threads();
    let children_before = live_children();
    let registry = BackendRegistry::builtin();
    let clock = SimClock::with_speedup(case.speedup);
    let net = SimNetwork::new(clock.clone(), LinkConfig::lan());
    net.install_obs(Obs::new());
    let deployment = registry
        .deploy_on(
            &case.backend,
            &BackendOptions::default(),
            clock,
            net.clone(),
        )
        .expect("chaos cases target registered backends");

    let targets = ChaosTargets::new(
        deployment.chain().ingress_nodes(),
        deployment.chain().sealer_nodes(),
    );
    let slice = Duration::from_secs(1);
    let chaos_config = ChaosConfig {
        horizon: slice * case.slices as u32,
        ..ChaosConfig::default()
    };
    let schedule = ChaosSchedule::generate(case.seed, &targets, &chaos_config);
    net.try_install_faults(schedule.into_plan())
        .expect("generated schedules always validate against their topology");

    let control = ControlSequence::constant(case.rate, case.slices, slice);
    let workload = WorkloadConfig {
        accounts: 200,
        seed: case.seed,
        ..WorkloadConfig::default()
    };
    let evaluation = Evaluation::new(
        EvalConfig::builder()
            .poll_interval(Duration::from_millis(50))
            .drain_timeout(Duration::from_secs(60))
            .retry(RetryPolicy::standard())
            .stall_budget(case.stall_budget)
            .build()
            .expect("the chaos harness configuration is statically valid"),
    );

    let outcome = evaluation.run(&deployment, &workload, &control);

    let plan = net.fault_plan();
    let events = net.obs().journal().events();
    let mut stalled = false;
    let mut checks = Vec::new();
    match outcome {
        Ok(report) => {
            stalled = report.stalled;
            checks.extend(check_report(&report, plan.as_deref()));
            checks.push(check_journal(&events));
            checks.push(if report.stalled {
                InvariantCheck::fail(
                    "no_stall",
                    format!("watchdog aborted with {} pending", report.timed_out),
                )
            } else {
                InvariantCheck::pass("no_stall", "run completed without a watchdog abort")
            });
        }
        Err(e) => checks.push(InvariantCheck::fail("run_completes", e.to_string())),
    }

    drop(deployment);
    // Deployment teardown joins node threads synchronously, and joining
    // the scheduler makes the teardown point *deterministic* — after
    // this line every framework thread is gone, no settling wait needed.
    net.shutdown_and_join();
    drop(net);
    // A short grace loop still covers unrelated process threads (e.g. a
    // just-finished parallel test) unwinding underneath the probe.
    let probe_deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut threads_after = live_threads();
    while threads_after > threads_before && std::time::Instant::now() < probe_deadline {
        std::thread::sleep(Duration::from_millis(20));
        threads_after = live_threads();
    }
    checks.push(if threads_after <= threads_before {
        InvariantCheck::pass(
            "no_thread_leak",
            format!("before={threads_before} after={threads_after}"),
        )
    } else {
        InvariantCheck::fail(
            "no_thread_leak",
            format!("before={threads_before} after={threads_after}"),
        )
    });
    // Orphan probe: everything the case spawned (nothing, for in-process
    // backends; node-host processes once supervisors are in play) must
    // be dead *and reaped* by now.
    let children_after = live_children();
    checks.push(if children_after <= children_before {
        InvariantCheck::pass(
            "no_child_leak",
            format!("before={children_before} after={children_after}"),
        )
    } else {
        InvariantCheck::fail(
            "no_child_leak",
            format!("before={children_before} after={children_after}"),
        )
    });

    ChaosVerdict {
        backend: case.backend.clone(),
        seed: case.seed,
        stalled,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TxRecord;
    use hammer_chain::types::TxId;
    use hammer_store::table::LatencySummary;

    fn record(i: u8, end_ms: Option<u64>, status: TxStatus) -> TxRecord {
        TxRecord {
            tx_id: TxId([i; 32]),
            client_id: 0,
            server_id: 0,
            start: Duration::ZERO,
            end: end_ms.map(Duration::from_millis),
            status,
        }
    }

    fn report(records: Vec<TxRecord>) -> EvalReport {
        let committed = records
            .iter()
            .filter(|r| r.status == TxStatus::Committed)
            .count();
        let failed = records
            .iter()
            .filter(|r| r.status == TxStatus::Failed)
            .count();
        let timed_out = records
            .iter()
            .filter(|r| r.status == TxStatus::TimedOut)
            .count();
        EvalReport {
            chain: "test".to_owned(),
            submitted: records.len() as u64,
            rejected: 0,
            retried: 0,
            dropped: 0,
            expired: 0,
            committed,
            failed,
            timed_out,
            overall_tps: 0.0,
            latency: LatencySummary::default(),
            tps_series: vec![],
            per_client_committed: vec![],
            per_shard_committed: vec![],
            sim_duration: Duration::ZERO,
            wall_time: Duration::ZERO,
            synced_rows: 0,
            index_stats: None,
            fault_windows: vec![],
            stalled: false,
            records,
        }
    }

    #[test]
    fn accounting_identity_passes_and_fails() {
        let good = report(vec![
            record(1, Some(10), TxStatus::Committed),
            record(2, Some(20), TxStatus::Failed),
            record(3, None, TxStatus::TimedOut),
        ]);
        let checks = check_report(&good, None);
        assert!(checks.iter().all(|c| c.passed), "{checks:?}");

        let mut bad = report(vec![record(1, Some(10), TxStatus::Committed)]);
        bad.submitted = 5; // one committed record cannot account for five
        let checks = check_report(&bad, None);
        let identity = checks
            .iter()
            .find(|c| c.name == "accounting_identity")
            .unwrap();
        assert!(!identity.passed, "{identity:?}");
    }

    #[test]
    fn attribution_recount_catches_tampering() {
        use crate::driver::FaultWindowStats;
        let plan = FaultPlan::new().crash("n0", Duration::from_secs(1), Duration::from_secs(2));
        let mut rpt = report(vec![
            record(1, Some(1_500), TxStatus::Committed), // inside
            record(2, Some(2_500), TxStatus::Committed), // outside
        ]);
        let window = &plan.windows()[0];
        rpt.fault_windows = vec![
            FaultWindowStats {
                label: window.label.clone(),
                start: window.start,
                end: window.end,
                committed: 1,
                tps: 1.0,
            },
            FaultWindowStats {
                label: "nominal".to_owned(),
                start: Duration::ZERO,
                end: Duration::from_secs(3),
                committed: 1,
                tps: 0.5,
            },
        ];
        assert!(attribution_check(&rpt, Some(&plan)).passed);

        rpt.fault_windows[0].committed = 2; // tamper
        assert!(!attribution_check(&rpt, Some(&plan)).passed);

        // A breakdown reported with no plan installed is a violation.
        rpt.fault_windows.truncate(1);
        assert!(!attribution_check(&rpt, None).passed);
    }

    #[test]
    fn journal_monotonicity_is_per_writer() {
        let seal = |node: &str, at_ms: u64| JournalEvent {
            at: Duration::from_millis(at_ms),
            kind: EventKind::BlockSeal,
            node: node.to_owned(),
            detail: String::new(),
            value: 1,
        };
        // Interleaved nodes are fine as long as each node is ordered.
        let ok = vec![seal("a", 10), seal("b", 5), seal("a", 20), seal("b", 6)];
        assert!(check_journal(&ok).passed);
        // A single node running backwards is not.
        let bad = vec![seal("a", 10), seal("a", 5)];
        assert!(!check_journal(&bad).passed);
    }

    #[test]
    fn verdict_json_is_well_formed() {
        let verdict = ChaosVerdict {
            backend: "neuchain-sim".to_owned(),
            seed: 7,
            stalled: false,
            checks: vec![
                InvariantCheck::pass("accounting_identity", "all accounted"),
                InvariantCheck::fail("no_stall", "aborted with 3 \"pending\""),
            ],
        };
        assert!(!verdict.passed());
        assert_eq!(verdict.violations().len(), 1);
        let json = verdict.to_json();
        assert!(json.contains("\"backend\":\"neuchain-sim\""), "{json}");
        assert!(json.contains("\"passed\":false"), "{json}");
        assert!(json.contains("\\\"pending\\\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
