//! A model of the evaluation client's machine.
//!
//! The paper's client is an `ecs.e-c1m2.large` instance with **2 vCPUs**
//! (§V *Environment*), and Fig. 10's headline observation — throughput
//! peaks at 2 threads per client and degrades beyond — is a property of
//! that machine, not of the blockchain: "increasing the number of threads
//! results in competition for CPU cores and increased scheduling
//! overhead". Since this reproduction runs on a many-core host, the
//! client's constraint must be modelled explicitly: every submission pays
//! a per-operation cost that grows once more driver threads run than the
//! modelled machine has vCPUs.

use std::time::Duration;

/// The modelled client machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientMachine {
    /// Number of vCPUs (the paper's client has 2).
    pub vcpus: u32,
    /// CPU cost of preparing and submitting one transaction when the
    /// machine is uncontended.
    pub submit_cost: Duration,
    /// Additional scheduling overhead per thread beyond the vCPU count
    /// (fraction of `submit_cost` each).
    pub contention_overhead: f64,
}

impl Default for ClientMachine {
    fn default() -> Self {
        Self::paper_client()
    }
}

impl ClientMachine {
    /// The paper's evaluation client: 2 vCPUs.
    pub fn paper_client() -> Self {
        ClientMachine {
            vcpus: 2,
            submit_cost: Duration::from_micros(900),
            contention_overhead: 0.35,
        }
    }

    /// An effectively unconstrained client (for benches that isolate the
    /// chain side).
    pub fn unconstrained() -> Self {
        ClientMachine {
            vcpus: 1024,
            submit_cost: Duration::from_micros(1),
            contention_overhead: 0.0,
        }
    }

    /// The *wall* time one submission occupies a worker thread when
    /// `active_threads` driver threads share the machine.
    ///
    /// * `active_threads <= vcpus`: each thread gets a core; the cost is
    ///   `submit_cost`.
    /// * beyond that, threads time-share cores
    ///   (`active_threads / vcpus` slowdown) and pay scheduling overhead
    ///   per excess thread.
    pub fn submit_delay(&self, active_threads: u32) -> Duration {
        let threads = active_threads.max(1) as f64;
        let vcpus = self.vcpus.max(1) as f64;
        let share = (threads / vcpus).max(1.0);
        let excess = (threads - vcpus).max(0.0);
        let overhead = 1.0 + self.contention_overhead * excess;
        self.submit_cost.mul_f64(share * overhead)
    }

    /// Ideal submissions/second the whole machine sustains with
    /// `active_threads` threads — the analytic curve behind Fig. 10's
    /// thread sweep.
    pub fn max_submission_rate(&self, active_threads: u32) -> f64 {
        let per_thread = 1.0 / self.submit_delay(active_threads).as_secs_f64();
        per_thread * active_threads.max(1) as f64
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.vcpus == 0 {
            return Err("vcpus must be positive".to_owned());
        }
        if self.submit_cost.is_zero() {
            return Err("submit_cost must be positive".to_owned());
        }
        if !self.contention_overhead.is_finite() || self.contention_overhead < 0.0 {
            return Err(format!(
                "contention_overhead must be finite and non-negative, got {}",
                self.contention_overhead
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_threads_pay_base_cost() {
        let m = ClientMachine::paper_client();
        assert_eq!(m.submit_delay(1), m.submit_cost);
        assert_eq!(m.submit_delay(2), m.submit_cost);
    }

    #[test]
    fn oversubscription_slows_each_thread() {
        let m = ClientMachine::paper_client();
        assert!(m.submit_delay(3) > m.submit_delay(2));
        assert!(m.submit_delay(6) > m.submit_delay(3));
    }

    #[test]
    fn throughput_peaks_at_vcpu_count() {
        // The analytic reproduction of Fig. 10's thread sweep: rate rises
        // to 2 threads, then declines.
        let m = ClientMachine::paper_client();
        let rates: Vec<f64> = (1..=6).map(|t| m.max_submission_rate(t)).collect();
        assert!(rates[1] > rates[0], "2 threads beat 1");
        let peak = rates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 1, "peak must be at 2 threads (index 1): {rates:?}");
        assert!(rates[5] < rates[1], "6 threads worse than 2");
    }

    #[test]
    fn unconstrained_machine_is_flat() {
        let m = ClientMachine::unconstrained();
        assert_eq!(m.submit_delay(1), m.submit_delay(64));
    }

    #[test]
    fn zero_active_threads_treated_as_one() {
        let m = ClientMachine::paper_client();
        assert_eq!(m.submit_delay(0), m.submit_delay(1));
    }

    #[test]
    fn validation() {
        assert!(ClientMachine::paper_client().validate().is_ok());
        assert!(ClientMachine {
            vcpus: 0,
            ..ClientMachine::paper_client()
        }
        .validate()
        .is_err());
        assert!(ClientMachine {
            submit_cost: Duration::ZERO,
            ..ClientMachine::paper_client()
        }
        .validate()
        .is_err());
        assert!(ClientMachine {
            contention_overhead: -1.0,
            ..ClientMachine::paper_client()
        }
        .validate()
        .is_err());
    }
}
