//! One-call SUT deployment (the paper's Ansible role, §III-A1) and the
//! backend registry.
//!
//! "We utilize the Ansible component to develop automated deployment
//! scripts, simplifying the deployment and configuration processes of the
//! blockchain environment. Currently, automated deployment scripts are
//! available for four typical blockchain systems." — [`Deployment::up`]
//! is the programmatic equivalent: it builds the simulated cluster
//! (clock, network, nodes) for any of the four chains from a
//! [`ChainSpec`] and hands back a ready [`BlockchainClient`].
//!
//! The [`BackendRegistry`] goes one step further: backends are selected
//! *by name* (from config files, CLI flags, or conformance sweeps), so
//! the driver, `multi`, and the bench binaries never hard-code a
//! constructor. Registering a new backend is one
//! [`BackendRegistry::register`] call with a builder closure — see
//! `DESIGN.md` §5.

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hammer_chain::client::{Architecture, BlockchainClient, ChainError, CommitEvent};
use hammer_chain::kernel::SimChain;
use hammer_chain::ledger::LedgerError;
use hammer_chain::remote::TcpChainClient;
use hammer_chain::state::AccountState;
use hammer_chain::types::{Address, Block, SignedTransaction, TxId};
use hammer_ethereum::{EthereumConfig, EthereumSim};
use hammer_fabric::{FabricConfig, FabricSim};
use hammer_meepo::{MeepoConfig, MeepoSim};
use hammer_net::{
    Fault, FaultPlan, LinkConfig, ReconnectPolicy, SimClock, SimNetwork, TcpClientConfig,
    TcpRpcClient,
};
use hammer_neuchain::{NeuchainConfig, NeuchainSim};
use hammer_rpc::json::Value;
use parking_lot::Mutex;

use crate::retry::RetryPolicy;

/// Which system to deploy, with its full configuration.
#[derive(Clone, Debug)]
pub enum ChainSpec {
    /// PoW Ethereum simulator.
    Ethereum(EthereumConfig),
    /// Execute-order-validate Fabric simulator.
    Fabric(FabricConfig),
    /// Deterministic-ordering Neuchain simulator.
    Neuchain(NeuchainConfig),
    /// Sharded Meepo simulator.
    Meepo(MeepoConfig),
}

impl ChainSpec {
    /// Ethereum with the paper's deployment defaults (5 workers, 15 s PoW
    /// blocks).
    pub fn ethereum_default() -> Self {
        ChainSpec::Ethereum(EthereumConfig::default())
    }

    /// Fabric with the paper's deployment defaults (1 orderer + 4 peers).
    pub fn fabric_default() -> Self {
        ChainSpec::Fabric(FabricConfig::default())
    }

    /// Neuchain with the paper's deployment defaults (epoch server +
    /// client proxy + 3 block servers).
    pub fn neuchain_default() -> Self {
        ChainSpec::Neuchain(NeuchainConfig::default())
    }

    /// Meepo with the paper's deployment defaults (2 shards × 3 nodes).
    pub fn meepo_default() -> Self {
        ChainSpec::Meepo(MeepoConfig::default())
    }

    /// The chain's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ChainSpec::Ethereum(_) => "ethereum-sim",
            ChainSpec::Fabric(_) => "fabric-sim",
            ChainSpec::Neuchain(_) => "neuchain-sim",
            ChainSpec::Meepo(_) => "meepo-sim",
        }
    }

    /// Looks a default spec up by its display name (config files and CLI
    /// flags select backends this way).
    pub fn by_name(name: &str) -> Option<ChainSpec> {
        match name {
            "ethereum-sim" => Some(Self::ethereum_default()),
            "fabric-sim" => Some(Self::fabric_default()),
            "neuchain-sim" => Some(Self::neuchain_default()),
            "meepo-sim" => Some(Self::meepo_default()),
            _ => None,
        }
    }

    /// Default specs for all four systems, in the paper's Fig. 6 order.
    pub fn all_defaults() -> Vec<ChainSpec> {
        vec![
            Self::ethereum_default(),
            Self::fabric_default(),
            Self::meepo_default(),
            Self::neuchain_default(),
        ]
    }
}

/// Backend-agnostic knobs a registry builder applies to whatever config
/// the chain uses internally (conformance suites tighten capacity and
/// stall sealing without knowing any chain's config type).
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendOptions {
    /// Overrides the ingress capacity (mempool / endorsement inbox).
    pub mempool_capacity: Option<usize>,
    /// Makes block production effectively never happen (hour-long
    /// intervals), so pooled transactions stay pooled — used to drive a
    /// bounded ingress to overflow deterministically.
    pub stall_sealing: bool,
}

/// How a registered backend is constructed: from the generic options plus
/// the shared clock and network.
pub type BackendBuilder =
    Box<dyn Fn(&BackendOptions, SimClock, SimNetwork) -> Deployment + Send + Sync>;

/// The name was not registered.
#[derive(Debug)]
pub struct UnknownBackend {
    /// The name that failed to resolve.
    pub name: String,
    /// Every registered name, for the error message.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown backend {:?} (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownBackend {}

/// How the system under test is deployed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DeployMode {
    /// Every chain node runs inside the driver process on the simulated
    /// network (the default; byte-identical with the pre-distributed
    /// framework).
    #[default]
    InProcess,
    /// The chain runs as its own `node-host` OS process behind real TCP;
    /// a [`Supervisor`] owns its lifecycle and realises crash-fault
    /// windows as SIGKILL + restart.
    MultiProcess,
}

impl DeployMode {
    /// Parses the spec/CLI spelling (`in_process` / `multi_process`,
    /// `in` / `multi` accepted as shorthand).
    pub fn parse(s: &str) -> Option<DeployMode> {
        match s {
            "in_process" | "in" => Some(DeployMode::InProcess),
            "multi_process" | "multi" => Some(DeployMode::MultiProcess),
            _ => None,
        }
    }

    /// The canonical spec spelling.
    pub fn name(&self) -> &'static str {
        match self {
            DeployMode::InProcess => "in_process",
            DeployMode::MultiProcess => "multi_process",
        }
    }
}

/// Why a deployment failed: the name is unknown, or (multi-process only)
/// the node process could not be spawned / never became healthy.
#[derive(Debug)]
pub enum DeployError {
    /// The backend name is not registered.
    Unknown(UnknownBackend),
    /// Spawning or health-checking the node process failed.
    Spawn(String),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Unknown(e) => e.fmt(f),
            DeployError::Spawn(msg) => write!(f, "node process: {msg}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<UnknownBackend> for DeployError {
    fn from(e: UnknownBackend) -> Self {
        DeployError::Unknown(e)
    }
}

/// Wall-clock knobs for the node-process [`Supervisor`].
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Explicit path to the `node-host` binary. `None` resolves via the
    /// `HAMMER_NODE_HOST` environment variable, then next to the current
    /// executable (and its parent directory, covering test binaries in
    /// `target/<profile>/deps/`).
    pub node_host: Option<PathBuf>,
    /// How long to wait for the `LISTENING` handshake plus the first
    /// successful health check.
    pub health_timeout: Duration,
    /// Supervision loop cadence (crash-window edges land within a tick).
    pub tick: Duration,
    /// Base restart backoff after a failed respawn; doubles per
    /// consecutive failure.
    pub restart_backoff: Duration,
    /// Upper clamp on the restart backoff.
    pub max_restart_backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            node_host: None,
            health_timeout: Duration::from_secs(30),
            tick: Duration::from_millis(10),
            restart_backoff: Duration::from_millis(50),
            max_restart_backoff: Duration::from_secs(1),
        }
    }
}

/// Finds the `node-host` binary per [`SupervisorConfig::node_host`].
fn resolve_node_host(explicit: Option<&PathBuf>) -> Result<PathBuf, DeployError> {
    if let Some(path) = explicit {
        return Ok(path.clone());
    }
    if let Some(env) = std::env::var_os("HAMMER_NODE_HOST") {
        return Ok(PathBuf::from(env));
    }
    let exe = std::env::current_exe()
        .map_err(|e| DeployError::Spawn(format!("cannot locate current executable: {e}")))?;
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join("node-host");
        if candidate.is_file() {
            return Ok(candidate);
        }
        // Test binaries live in target/<profile>/deps/; the bin is one
        // level up. Stop at the target dir.
        if d.file_name().is_some_and(|n| n == "target") {
            break;
        }
        dir = d.parent();
    }
    Err(DeployError::Spawn(
        "cannot find the node-host binary: set HAMMER_NODE_HOST or build it \
         (cargo build --bin node-host)"
            .to_owned(),
    ))
}

/// Lifecycle stats for one supervised node process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcessFaultStats {
    /// SIGKILLs delivered for crash-fault windows.
    pub kills: u64,
    /// Successful restarts (crash-window exits and unexpected deaths).
    pub restarts: u64,
}

struct SupervisorShared {
    binary: PathBuf,
    backend: String,
    options: BackendOptions,
    speedup: f64,
    clock: SimClock,
    addr: SocketAddr,
    config: SupervisorConfig,
    child: Mutex<Option<Child>>,
    /// Genesis allocations to replay into a fresh process incarnation.
    seeds: Mutex<Vec<(u64, u64, u64)>>,
    plan: Mutex<Option<FaultPlan>>,
    /// Crash windows extracted from the plan (the supervisor realises
    /// these as SIGKILL; other fault kinds are the node's own business).
    crash_windows: Mutex<Vec<(Duration, Duration)>>,
    rpc: TcpRpcClient,
    stop: AtomicBool,
    kills: AtomicU64,
    restarts: AtomicU64,
}

impl SupervisorShared {
    /// Spawns a fresh node process on the supervisor's fixed port and
    /// waits for the `LISTENING` handshake. The caller must hold no
    /// `child` lock.
    fn spawn_process(&self) -> Result<(), DeployError> {
        let mut cmd = Command::new(&self.binary);
        cmd.arg("--backend")
            .arg(&self.backend)
            .arg("--port")
            .arg(self.addr.port().to_string())
            .arg("--speedup")
            .arg(self.speedup.to_string())
            .arg("--epoch-offset-ms")
            .arg(self.clock.now().as_millis().to_string());
        if let Some(capacity) = self.options.mempool_capacity {
            cmd.arg("--mempool-capacity").arg(capacity.to_string());
        }
        if self.options.stall_sealing {
            cmd.arg("--stall-sealing");
        }
        // stdin stays piped so our death closes it and the node exits
        // (the node-host's own orphan guard); stdout carries the
        // handshake; stderr flows through for diagnostics.
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| DeployError::Spawn(format!("spawn {:?}: {e}", self.binary)))?;

        let stdout = child
            .stdout
            .take()
            .expect("stdout was requested piped above");
        let (tx, rx) = crossbeam::channel::bounded(1);
        std::thread::Builder::new()
            .name("node-host-handshake".to_owned())
            .spawn(move || {
                let mut line = String::new();
                let mut reader = std::io::BufReader::new(stdout);
                let _ = reader.read_line(&mut line);
                let _ = tx.send(line);
            })
            .expect("failed to spawn handshake reader");
        match rx.recv_timeout(self.config.health_timeout) {
            Ok(line) if line.trim().starts_with("LISTENING") => {}
            other => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(DeployError::Spawn(match other {
                    Ok(line) => format!("bad handshake line {line:?}"),
                    Err(_) => format!(
                        "no LISTENING handshake within {:?}",
                        self.config.health_timeout
                    ),
                }));
            }
        }
        *self.child.lock() = Some(child);
        Ok(())
    }

    /// Replays recorded genesis seeds and the fault plan into a freshly
    /// spawned process.
    fn replay_state(&self) -> Result<(), DeployError> {
        let seeds = self.seeds.lock().clone();
        for (account, checking, savings) in seeds {
            self.call_checked(
                "seed_account",
                Value::object([
                    ("account", Value::from(account.to_string())),
                    ("checking", Value::from(checking)),
                    ("savings", Value::from(savings)),
                ]),
            )?;
        }
        let plan = self.plan.lock().clone();
        if let Some(plan) = plan {
            self.call_checked("install_faults", plan.to_value())?;
        }
        Ok(())
    }

    fn call_checked(&self, method: &str, params: Value) -> Result<(), DeployError> {
        self.rpc
            .call(method, params)
            .map_err(|e| DeployError::Spawn(format!("{method}: {e}")))?
            .map_err(|e| DeployError::Spawn(format!("{method}: {e}")))?;
        Ok(())
    }

    /// Whether the child is currently running (reaps a just-exited one).
    fn child_alive(&self) -> bool {
        let mut guard = self.child.lock();
        match guard.as_mut() {
            None => false,
            Some(child) => match child.try_wait() {
                Ok(None) => true,
                // Exited (status available) or unprobeable: treat as dead
                // and drop the handle so the wait() above reaped it.
                _ => {
                    *guard = None;
                    false
                }
            },
        }
    }

    /// SIGKILLs the child, reaping it. Idempotent.
    fn kill_child(&self) {
        let child = self.child.lock().take();
        if let Some(mut child) = child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The crash window (if any) covering `now`.
fn in_crash_window(windows: &[(Duration, Duration)], now: Duration) -> bool {
    windows.iter().any(|(s, e)| now >= *s && now < *e)
}

/// Owns one `node-host` process: deploy → capture (handshake + health
/// check) → execute (the run, with crash windows realised as SIGKILL and
/// restart-with-backoff) → cleanup (kill + reap on shutdown or drop, so
/// no child outlives the driver, panics included).
pub struct Supervisor {
    shared: Arc<SupervisorShared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("backend", &self.shared.backend)
            .field("addr", &self.shared.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Supervisor {
    /// Spawns and health-checks a `node-host` for `backend`, then starts
    /// the supervision loop.
    pub fn launch(
        backend: &str,
        options: &BackendOptions,
        clock: SimClock,
        config: SupervisorConfig,
    ) -> Result<Arc<Supervisor>, DeployError> {
        let binary = resolve_node_host(config.node_host.as_ref())?;
        // A fixed port keeps the driver's client address stable across
        // restarts: probe a free one, release it, tell the node to bind
        // it. (Loopback-local; the tiny bind race is acceptable here.)
        let probe = std::net::TcpListener::bind("127.0.0.1:0")
            .map_err(|e| DeployError::Spawn(format!("port probe: {e}")))?;
        let addr = probe
            .local_addr()
            .map_err(|e| DeployError::Spawn(format!("port probe: {e}")))?;
        drop(probe);

        let rpc = TcpRpcClient::new(
            addr,
            TcpClientConfig {
                connect_timeout: Duration::from_millis(500),
                ..TcpClientConfig::default()
            },
            // The supervisor's control channel rides out restarts it
            // causes itself.
            ReconnectPolicy {
                max_attempts: 20,
                base_backoff: Duration::from_millis(10),
                multiplier: 1.5,
                max_backoff: Duration::from_millis(200),
            },
        );
        let shared = Arc::new(SupervisorShared {
            binary,
            backend: backend.to_owned(),
            options: *options,
            speedup: clock.speedup(),
            clock,
            addr,
            config,
            child: Mutex::new(None),
            seeds: Mutex::new(Vec::new()),
            plan: Mutex::new(None),
            crash_windows: Mutex::new(Vec::new()),
            rpc,
            stop: AtomicBool::new(false),
            kills: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
        });
        shared.spawn_process()?;
        // First health check: the chain must answer before the
        // deployment is handed to the driver.
        let deadline = Instant::now() + shared.config.health_timeout;
        loop {
            match shared.rpc.call("chain_name", Value::Null) {
                Ok(Ok(_)) => break,
                _ if Instant::now() >= deadline => {
                    shared.kill_child();
                    return Err(DeployError::Spawn(format!(
                        "node on {} never answered a health check",
                        shared.addr
                    )));
                }
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("node-supervisor".to_owned())
            .spawn(move || supervise_loop(loop_shared))
            .expect("failed to spawn supervisor thread");
        Ok(Arc::new(Supervisor {
            shared,
            thread: Mutex::new(Some(thread)),
        }))
    }

    /// The node's TCP address (stable across restarts).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Records a genesis allocation for replay into restarted
    /// incarnations (the deployment forwards the live call itself).
    pub fn record_seed(&self, account: Address, checking: u64, savings: u64) {
        self.shared
            .seeds
            .lock()
            .push((account.0, checking, savings));
    }

    /// Stores the fault plan, forwards it to the node (blackhole /
    /// partition / latency windows act on the node's own simulated
    /// network), and arms the crash windows this supervisor realises as
    /// SIGKILL + restart.
    pub fn install_plan(&self, plan: FaultPlan) -> Result<(), DeployError> {
        let crashes: Vec<(Duration, Duration)> = plan
            .windows()
            .iter()
            .filter(|w| matches!(w.fault, Fault::Crash { .. }))
            .map(|w| (w.start, w.end))
            .collect();
        self.shared
            .call_checked("install_faults", plan.to_value())?;
        *self.shared.plan.lock() = Some(plan);
        *self.shared.crash_windows.lock() = crashes;
        Ok(())
    }

    /// Kill/restart counters.
    pub fn stats(&self) -> ProcessFaultStats {
        ProcessFaultStats {
            kills: self.shared.kills.load(Ordering::Relaxed),
            restarts: self.shared.restarts.load(Ordering::Relaxed),
        }
    }

    /// Whether the node process is currently alive.
    pub fn node_alive(&self) -> bool {
        self.shared.child_alive()
    }

    /// Stops the supervision loop and reaps the node process. Idempotent;
    /// called by `Drop` (panic-safe: an unwinding test still reaps its
    /// children).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let handle = self.thread.lock().take();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
        self.shared.kill_child();
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The supervision loop: SIGKILL inside crash windows, restart (with
/// seed/plan replay and exponential backoff) outside them.
fn supervise_loop(shared: Arc<SupervisorShared>) {
    let mut backoff = shared.config.restart_backoff;
    let mut next_restart = Instant::now();
    while !shared.stop.load(Ordering::SeqCst) {
        let now = shared.clock.now();
        let crashed = in_crash_window(&shared.crash_windows.lock(), now);
        if crashed {
            if shared.child_alive() {
                shared.kill_child();
                shared.kills.fetch_add(1, Ordering::Relaxed);
            }
        } else if !shared.child_alive() && Instant::now() >= next_restart {
            match shared.spawn_process().and_then(|()| shared.replay_state()) {
                Ok(()) => {
                    shared.restarts.fetch_add(1, Ordering::Relaxed);
                    backoff = shared.config.restart_backoff;
                }
                Err(_) => {
                    // The port may linger in TIME_WAIT or the machine may
                    // be briefly out of resources: back off and retry.
                    shared.kill_child();
                    next_restart = Instant::now() + backoff;
                    backoff = (backoff * 2).min(shared.config.max_restart_backoff);
                }
            }
        }
        std::thread::sleep(shared.config.tick);
    }
}

/// The driver-facing handle of a multi-process deployment: a
/// [`TcpChainClient`] that additionally records genesis seeds into the
/// supervisor so restarts can replay them.
struct SupervisedChain {
    inner: Arc<TcpChainClient>,
    supervisor: Arc<Supervisor>,
}

impl BlockchainClient for SupervisedChain {
    fn chain_name(&self) -> &str {
        self.inner.chain_name()
    }
    fn architecture(&self) -> Architecture {
        self.inner.architecture()
    }
    fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError> {
        self.inner.submit(tx)
    }
    fn latest_height(&self, shard: u32) -> Result<u64, ChainError> {
        self.inner.latest_height(shard)
    }
    fn block_at(&self, shard: u32, height: u64) -> Result<Option<Block>, ChainError> {
        self.inner.block_at(shard, height)
    }
    fn pending_txs(&self) -> Result<usize, ChainError> {
        self.inner.pending_txs()
    }
    fn subscribe_commits(&self) -> crossbeam::channel::Receiver<CommitEvent> {
        self.inner.subscribe_commits()
    }
    fn shutdown(&self) {
        self.inner.shutdown()
    }
}

impl SimChain for SupervisedChain {
    fn seed_account(&self, account: Address, checking: u64, savings: u64) {
        self.supervisor.record_seed(account, checking, savings);
        self.inner.seed_account(account, checking, savings);
    }
    fn account(&self, account: Address) -> Option<AccountState> {
        self.inner.account(account)
    }
    fn ingress_nodes(&self) -> Vec<String> {
        self.inner.ingress_nodes()
    }
    fn sealer_nodes(&self) -> Vec<String> {
        self.inner.sealer_nodes()
    }
    fn verify_ledgers(&self) -> Result<(), LedgerError> {
        self.inner.verify_ledgers()
    }
    fn progress_mark(&self) -> u64 {
        self.inner.progress_mark()
    }
}

/// The driver-side reconnect policy for a multi-process deployment,
/// derived from the run's [`RetryPolicy`]: sim-time backoffs scale to
/// wall time, so at high speedups the TCP client fails fast and the
/// sim-time-aware retry machinery governs pacing. A disabled retry
/// policy means a single connection attempt per call.
pub fn reconnect_policy_for(policy: &RetryPolicy, clock: &SimClock) -> ReconnectPolicy {
    if !policy.enabled() {
        return ReconnectPolicy::none();
    }
    // Never fully zero: a sub-millisecond wall backoff busy-spins against
    // a connection-refused loopback port.
    let floor = Duration::from_millis(1);
    ReconnectPolicy {
        max_attempts: policy.max_retries,
        base_backoff: clock.to_wall(policy.base_backoff).max(floor),
        multiplier: policy.multiplier,
        max_backoff: clock.to_wall(policy.max_backoff).max(floor),
    }
}

/// Name → builder map for every deployable backend. [`BackendRegistry::builtin`]
/// holds the paper's four systems; [`BackendRegistry::register`] adds new
/// ones (a custom [`hammer_chain::kernel::ConsensusPolicy`] wrapped in a
/// builder closure — see `examples/custom_chain.rs`).
pub struct BackendRegistry {
    builders: Vec<(String, BackendBuilder)>,
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

const STALL_INTERVAL: std::time::Duration = std::time::Duration::from_secs(3600);

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BackendRegistry {
            builders: Vec::new(),
        }
    }

    /// A registry holding the paper's four systems under their display
    /// names, in Fig. 6 order.
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        registry.register("ethereum-sim", |opts, clock, net| {
            let mut config = EthereumConfig::default();
            if let Some(capacity) = opts.mempool_capacity {
                config.mempool_capacity = capacity;
            }
            if opts.stall_sealing {
                config.block_interval = STALL_INTERVAL;
            }
            Deployment::from_chain(
                EthereumSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            )
        });
        registry.register("fabric-sim", |opts, clock, net| {
            let mut config = FabricConfig::default();
            if let Some(capacity) = opts.mempool_capacity {
                config.inbox_capacity = capacity;
            }
            if opts.stall_sealing {
                // Fabric's pool is the endorsement inbox: stalling the
                // endorsers keeps it full.
                config.endorse_cost = STALL_INTERVAL;
            }
            Deployment::from_chain(
                FabricSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            )
        });
        registry.register("meepo-sim", |opts, clock, net| {
            let mut config = MeepoConfig::default();
            if let Some(capacity) = opts.mempool_capacity {
                config.mempool_capacity = capacity;
            }
            if opts.stall_sealing {
                config.epoch_interval = STALL_INTERVAL;
            }
            Deployment::from_chain(
                MeepoSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            )
        });
        registry.register("neuchain-sim", |opts, clock, net| {
            let mut config = NeuchainConfig::default();
            if let Some(capacity) = opts.mempool_capacity {
                config.mempool_capacity = capacity;
            }
            if opts.stall_sealing {
                config.epoch_interval = STALL_INTERVAL;
            }
            Deployment::from_chain(
                NeuchainSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            )
        });
        registry
    }

    /// Registers (or replaces) a backend under `name`.
    pub fn register(
        &mut self,
        name: &str,
        builder: impl Fn(&BackendOptions, SimClock, SimNetwork) -> Deployment + Send + Sync + 'static,
    ) {
        if let Some(slot) = self.builders.iter_mut().find(|(n, _)| n == name) {
            slot.1 = Box::new(builder);
        } else {
            self.builders.push((name.to_owned(), Box::new(builder)));
        }
    }

    /// Every registered backend name, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.builders.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Deploys `name` on a fresh simulated network at `speedup`×.
    pub fn deploy(
        &self,
        name: &str,
        opts: &BackendOptions,
        speedup: f64,
    ) -> Result<Deployment, UnknownBackend> {
        let clock = SimClock::with_speedup(speedup);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        self.deploy_on(name, opts, clock, net)
    }

    /// Deploys `name` on an existing clock/network.
    pub fn deploy_on(
        &self,
        name: &str,
        opts: &BackendOptions,
        clock: SimClock,
        net: SimNetwork,
    ) -> Result<Deployment, UnknownBackend> {
        match self.builders.iter().find(|(n, _)| n == name) {
            Some((_, builder)) => Ok(builder(opts, clock, net)),
            None => Err(UnknownBackend {
                name: name.to_owned(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            }),
        }
    }

    /// Deploys `name` as its own `node-host` OS process behind real TCP,
    /// supervised for crash-fault realisation (SIGKILL + restart).
    ///
    /// `clock`/`net` are the *driver-side* clock and network: the node
    /// process runs its own simulated network internally, but its node
    /// names are registered on the local `net` so fault-target resolution,
    /// fault-plan validation and attribution all work exactly as in
    /// in-process mode.
    pub fn deploy_multi(
        &self,
        name: &str,
        opts: &BackendOptions,
        clock: SimClock,
        net: SimNetwork,
        supervisor_config: SupervisorConfig,
        reconnect: ReconnectPolicy,
    ) -> Result<Deployment, DeployError> {
        if !self.builders.iter().any(|(n, _)| n == name) {
            return Err(DeployError::Unknown(UnknownBackend {
                name: name.to_owned(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            }));
        }
        let supervisor = Supervisor::launch(name, opts, clock.clone(), supervisor_config)?;
        let inner =
            TcpChainClient::connect(supervisor.addr(), TcpClientConfig::default(), reconnect)
                .map_err(|e| {
                    supervisor.shutdown();
                    DeployError::Spawn(format!("connect to node: {e}"))
                })?;
        let chain = Arc::new(SupervisedChain {
            inner,
            supervisor: Arc::clone(&supervisor),
        });
        // Mirror the remote node names onto the local network so
        // ChaosTargets placeholders resolve and try_install_faults
        // validates against the real topology. Endpoint registration
        // persists after the handles drop.
        let mut names: Vec<String> = chain.ingress_nodes();
        names.extend(chain.sealer_nodes());
        names.sort();
        names.dedup();
        for node in names {
            if !net.endpoint_names().contains(&node) {
                let _ = net.register(&node);
            }
        }
        let mut deployment = Deployment::from_chain(chain, clock, net);
        deployment.supervisor = Some(supervisor);
        Ok(deployment)
    }
}

/// A running SUT: in-process on the simulated network, or a supervised
/// `node-host` OS process behind real TCP.
pub struct Deployment {
    client: Arc<dyn BlockchainClient>,
    chain: Arc<dyn SimChain>,
    clock: SimClock,
    net: SimNetwork,
    supervisor: Option<Arc<Supervisor>>,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("chain", &self.client().chain_name())
            .finish()
    }
}

impl Deployment {
    /// Deploys the SUT on a fresh simulated network whose clock runs
    /// `speedup`× faster than wall time (1.0 = real time). Links follow
    /// the paper's ~100 Mbps testbed.
    pub fn up(spec: ChainSpec, speedup: f64) -> Self {
        let clock = SimClock::with_speedup(speedup);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        Self::up_on(spec, clock, net)
    }

    /// Deploys on an existing clock/network (shared-infrastructure runs).
    pub fn up_on(spec: ChainSpec, clock: SimClock, net: SimNetwork) -> Self {
        match spec {
            ChainSpec::Ethereum(config) => Self::from_chain(
                EthereumSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            ),
            ChainSpec::Fabric(config) => Self::from_chain(
                FabricSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            ),
            ChainSpec::Neuchain(config) => Self::from_chain(
                NeuchainSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            ),
            ChainSpec::Meepo(config) => Self::from_chain(
                MeepoSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            ),
        }
    }

    /// Wraps any started [`SimChain`] (built-in or custom policy) as a
    /// deployment.
    pub fn from_chain<T: SimChain + 'static>(
        chain: Arc<T>,
        clock: SimClock,
        net: SimNetwork,
    ) -> Self {
        Deployment {
            client: Arc::clone(&chain) as Arc<dyn BlockchainClient>,
            chain: chain as Arc<dyn SimChain>,
            clock,
            net,
            supervisor: None,
        }
    }

    /// The generic client handle the driver programs against.
    pub fn client(&self) -> Arc<dyn BlockchainClient> {
        Arc::clone(&self.client)
    }

    /// The deployment-facing chain surface: seeding, state reads,
    /// fault-target discovery, ledger audits.
    pub fn chain(&self) -> &Arc<dyn SimChain> {
        &self.chain
    }

    /// Seeds an account with initial balances (genesis allocation — the
    /// preparation-phase fixture the paper's client installs).
    pub fn seed_account(&self, account: Address, checking: u64, savings: u64) {
        self.chain.seed_account(account, checking, savings);
    }

    /// The simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The simulated network (resource monitoring reads its counters).
    pub fn net(&self) -> &SimNetwork {
        &self.net
    }

    /// The node-process supervisor, if this is a multi-process deployment.
    pub fn supervisor(&self) -> Option<&Arc<Supervisor>> {
        self.supervisor.as_ref()
    }

    /// Installs a fault plan on this deployment, whatever its mode.
    ///
    /// The plan always lands on the local simulated network (attribution
    /// and the fault journal read it from there). In multi-process mode it
    /// is additionally armed on the supervisor, which realises crash
    /// windows as SIGKILL of the actual node process and forwards the
    /// full plan to the node for its internal network.
    pub fn install_faults(&self, plan: FaultPlan) -> Result<(), String> {
        self.net
            .try_install_faults(plan.clone())
            .map_err(|e| e.to_string())?;
        if let Some(supervisor) = &self.supervisor {
            supervisor.install_plan(plan).map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Stops block production (and, in multi-process mode, reaps the node
    /// process).
    pub fn down(&self) {
        self.client.shutdown();
        if let Some(supervisor) = &self.supervisor {
            supervisor.shutdown();
        }
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        self.down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_chains_deploy() {
        for spec in ChainSpec::all_defaults() {
            let name = spec.name();
            let deployment = Deployment::up(spec, 1000.0);
            assert_eq!(deployment.client().chain_name(), name);
            assert_eq!(deployment.client().latest_height(0).unwrap(), 0);
            deployment.down();
        }
    }

    #[test]
    fn seeding_reaches_the_chain() {
        let deployment = Deployment::up(ChainSpec::fabric_default(), 1000.0);
        let account = Address::from_name("seeded");
        deployment.seed_account(account, 123, 456);
        assert_eq!(deployment.chain().account(account).unwrap().checking, 123);
        assert_eq!(deployment.client().pending_txs().unwrap(), 0);
    }

    #[test]
    fn spec_names() {
        assert_eq!(ChainSpec::ethereum_default().name(), "ethereum-sim");
        assert_eq!(ChainSpec::fabric_default().name(), "fabric-sim");
        assert_eq!(ChainSpec::neuchain_default().name(), "neuchain-sim");
        assert_eq!(ChainSpec::meepo_default().name(), "meepo-sim");
        for spec in ChainSpec::all_defaults() {
            assert_eq!(ChainSpec::by_name(spec.name()).unwrap().name(), spec.name());
        }
        assert!(ChainSpec::by_name("nonexistent").is_none());
    }

    #[test]
    fn registry_deploys_by_name() {
        let registry = BackendRegistry::builtin();
        assert_eq!(
            registry.names(),
            vec!["ethereum-sim", "fabric-sim", "meepo-sim", "neuchain-sim"]
        );
        for name in registry.names() {
            let deployment = registry
                .deploy(name, &BackendOptions::default(), 1000.0)
                .unwrap();
            assert_eq!(deployment.client().chain_name(), name);
            deployment.down();
        }
    }

    #[test]
    fn registry_rejects_unknown_names() {
        let registry = BackendRegistry::builtin();
        let err = registry
            .deploy("tendermint", &BackendOptions::default(), 1000.0)
            .unwrap_err();
        assert!(err.to_string().contains("tendermint"));
        assert!(err.to_string().contains("neuchain-sim"));
    }

    #[test]
    fn registry_applies_generic_options() {
        use hammer_chain::client::ErrorKind;
        use hammer_chain::smallbank::Op;
        use hammer_chain::types::Transaction;
        use hammer_crypto::sig::SigParams;
        use hammer_crypto::Keypair;

        let registry = BackendRegistry::builtin();
        let opts = BackendOptions {
            mempool_capacity: Some(2),
            stall_sealing: true,
        };
        let deployment = registry.deploy("neuchain-sim", &opts, 1000.0).unwrap();
        let client = deployment.client();
        let mut saw_backpressure = false;
        for nonce in 0..10 {
            let tx = Transaction {
                client_id: 0,
                server_id: 0,
                nonce,
                op: Op::KvGet { key: nonce },
                chain_name: "neuchain-sim".to_owned(),
                contract_name: "smallbank".to_owned(),
            }
            .sign(&Keypair::from_seed(3), &SigParams::fast());
            if let Err(err) = client.submit(tx) {
                assert_eq!(err.kind(), ErrorKind::Backpressure);
                saw_backpressure = true;
                break;
            }
        }
        assert!(saw_backpressure, "capacity override not applied");
        deployment.down();
    }

    #[test]
    fn deploy_mode_spellings_roundtrip() {
        for mode in [DeployMode::InProcess, DeployMode::MultiProcess] {
            assert_eq!(DeployMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(DeployMode::parse("multi"), Some(DeployMode::MultiProcess));
        assert_eq!(DeployMode::parse("in"), Some(DeployMode::InProcess));
        assert_eq!(DeployMode::parse("remote"), None);
        assert_eq!(DeployMode::default(), DeployMode::InProcess);
    }

    #[test]
    fn reconnect_policy_scales_sim_backoffs_to_wall_time() {
        let clock = SimClock::with_speedup(100.0);
        let policy = RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(400),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(2),
            ..RetryPolicy::standard()
        };
        let reconnect = reconnect_policy_for(&policy, &clock);
        assert_eq!(reconnect.max_attempts, 4);
        assert_eq!(reconnect.base_backoff, Duration::from_millis(4));
        assert_eq!(reconnect.max_backoff, Duration::from_millis(20));

        // Sub-millisecond wall backoffs clamp up so a dead port is not
        // busy-spun against.
        let fast = reconnect_policy_for(&policy, &SimClock::with_speedup(1_000_000.0));
        assert!(fast.base_backoff >= Duration::from_millis(1));

        let none = reconnect_policy_for(&RetryPolicy::disabled(), &clock);
        assert_eq!(none.max_attempts, ReconnectPolicy::none().max_attempts);
    }

    #[test]
    fn crash_window_membership_is_half_open() {
        let windows = vec![
            (Duration::from_secs(1), Duration::from_secs(2)),
            (Duration::from_secs(5), Duration::from_secs(6)),
        ];
        assert!(!in_crash_window(&windows, Duration::from_millis(999)));
        assert!(in_crash_window(&windows, Duration::from_secs(1)));
        assert!(in_crash_window(&windows, Duration::from_millis(1999)));
        assert!(!in_crash_window(&windows, Duration::from_secs(2)));
        assert!(in_crash_window(&windows, Duration::from_millis(5500)));
        assert!(!in_crash_window(&windows, Duration::from_secs(7)));
    }

    #[test]
    fn deploy_multi_rejects_unknown_backend_without_spawning() {
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::lan());
        let err = BackendRegistry::builtin()
            .deploy_multi(
                "tendermint",
                &BackendOptions::default(),
                clock,
                net,
                SupervisorConfig::default(),
                ReconnectPolicy::none(),
            )
            .unwrap_err();
        assert!(matches!(err, DeployError::Unknown(_)), "{err}");
    }

    #[test]
    fn missing_node_host_binary_is_a_spawn_error() {
        let config = SupervisorConfig {
            node_host: Some(PathBuf::from("/nonexistent/node-host")),
            ..SupervisorConfig::default()
        };
        let err = Supervisor::launch(
            "neuchain-sim",
            &BackendOptions::default(),
            SimClock::with_speedup(1000.0),
            config,
        )
        .unwrap_err();
        assert!(matches!(err, DeployError::Spawn(_)), "{err}");
    }
}
