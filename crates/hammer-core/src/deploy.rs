//! One-call SUT deployment (the paper's Ansible role, §III-A1) and the
//! backend registry.
//!
//! "We utilize the Ansible component to develop automated deployment
//! scripts, simplifying the deployment and configuration processes of the
//! blockchain environment. Currently, automated deployment scripts are
//! available for four typical blockchain systems." — [`Deployment::up`]
//! is the programmatic equivalent: it builds the simulated cluster
//! (clock, network, nodes) for any of the four chains from a
//! [`ChainSpec`] and hands back a ready [`BlockchainClient`].
//!
//! The [`BackendRegistry`] goes one step further: backends are selected
//! *by name* (from config files, CLI flags, or conformance sweeps), so
//! the driver, `multi`, and the bench binaries never hard-code a
//! constructor. Registering a new backend is one
//! [`BackendRegistry::register`] call with a builder closure — see
//! `DESIGN.md` §5.

use std::sync::Arc;

use hammer_chain::client::BlockchainClient;
use hammer_chain::kernel::SimChain;
use hammer_chain::types::Address;
use hammer_ethereum::{EthereumConfig, EthereumSim};
use hammer_fabric::{FabricConfig, FabricSim};
use hammer_meepo::{MeepoConfig, MeepoSim};
use hammer_net::{LinkConfig, SimClock, SimNetwork};
use hammer_neuchain::{NeuchainConfig, NeuchainSim};

/// Which system to deploy, with its full configuration.
#[derive(Clone, Debug)]
pub enum ChainSpec {
    /// PoW Ethereum simulator.
    Ethereum(EthereumConfig),
    /// Execute-order-validate Fabric simulator.
    Fabric(FabricConfig),
    /// Deterministic-ordering Neuchain simulator.
    Neuchain(NeuchainConfig),
    /// Sharded Meepo simulator.
    Meepo(MeepoConfig),
}

impl ChainSpec {
    /// Ethereum with the paper's deployment defaults (5 workers, 15 s PoW
    /// blocks).
    pub fn ethereum_default() -> Self {
        ChainSpec::Ethereum(EthereumConfig::default())
    }

    /// Fabric with the paper's deployment defaults (1 orderer + 4 peers).
    pub fn fabric_default() -> Self {
        ChainSpec::Fabric(FabricConfig::default())
    }

    /// Neuchain with the paper's deployment defaults (epoch server +
    /// client proxy + 3 block servers).
    pub fn neuchain_default() -> Self {
        ChainSpec::Neuchain(NeuchainConfig::default())
    }

    /// Meepo with the paper's deployment defaults (2 shards × 3 nodes).
    pub fn meepo_default() -> Self {
        ChainSpec::Meepo(MeepoConfig::default())
    }

    /// The chain's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ChainSpec::Ethereum(_) => "ethereum-sim",
            ChainSpec::Fabric(_) => "fabric-sim",
            ChainSpec::Neuchain(_) => "neuchain-sim",
            ChainSpec::Meepo(_) => "meepo-sim",
        }
    }

    /// Looks a default spec up by its display name (config files and CLI
    /// flags select backends this way).
    pub fn by_name(name: &str) -> Option<ChainSpec> {
        match name {
            "ethereum-sim" => Some(Self::ethereum_default()),
            "fabric-sim" => Some(Self::fabric_default()),
            "neuchain-sim" => Some(Self::neuchain_default()),
            "meepo-sim" => Some(Self::meepo_default()),
            _ => None,
        }
    }

    /// Default specs for all four systems, in the paper's Fig. 6 order.
    pub fn all_defaults() -> Vec<ChainSpec> {
        vec![
            Self::ethereum_default(),
            Self::fabric_default(),
            Self::meepo_default(),
            Self::neuchain_default(),
        ]
    }
}

/// Backend-agnostic knobs a registry builder applies to whatever config
/// the chain uses internally (conformance suites tighten capacity and
/// stall sealing without knowing any chain's config type).
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendOptions {
    /// Overrides the ingress capacity (mempool / endorsement inbox).
    pub mempool_capacity: Option<usize>,
    /// Makes block production effectively never happen (hour-long
    /// intervals), so pooled transactions stay pooled — used to drive a
    /// bounded ingress to overflow deterministically.
    pub stall_sealing: bool,
}

/// How a registered backend is constructed: from the generic options plus
/// the shared clock and network.
pub type BackendBuilder =
    Box<dyn Fn(&BackendOptions, SimClock, SimNetwork) -> Deployment + Send + Sync>;

/// The name was not registered.
#[derive(Debug)]
pub struct UnknownBackend {
    /// The name that failed to resolve.
    pub name: String,
    /// Every registered name, for the error message.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown backend {:?} (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownBackend {}

/// Name → builder map for every deployable backend. [`BackendRegistry::builtin`]
/// holds the paper's four systems; [`BackendRegistry::register`] adds new
/// ones (a custom [`hammer_chain::kernel::ConsensusPolicy`] wrapped in a
/// builder closure — see `examples/custom_chain.rs`).
pub struct BackendRegistry {
    builders: Vec<(String, BackendBuilder)>,
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

const STALL_INTERVAL: std::time::Duration = std::time::Duration::from_secs(3600);

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BackendRegistry {
            builders: Vec::new(),
        }
    }

    /// A registry holding the paper's four systems under their display
    /// names, in Fig. 6 order.
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        registry.register("ethereum-sim", |opts, clock, net| {
            let mut config = EthereumConfig::default();
            if let Some(capacity) = opts.mempool_capacity {
                config.mempool_capacity = capacity;
            }
            if opts.stall_sealing {
                config.block_interval = STALL_INTERVAL;
            }
            Deployment::from_chain(
                EthereumSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            )
        });
        registry.register("fabric-sim", |opts, clock, net| {
            let mut config = FabricConfig::default();
            if let Some(capacity) = opts.mempool_capacity {
                config.inbox_capacity = capacity;
            }
            if opts.stall_sealing {
                // Fabric's pool is the endorsement inbox: stalling the
                // endorsers keeps it full.
                config.endorse_cost = STALL_INTERVAL;
            }
            Deployment::from_chain(
                FabricSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            )
        });
        registry.register("meepo-sim", |opts, clock, net| {
            let mut config = MeepoConfig::default();
            if let Some(capacity) = opts.mempool_capacity {
                config.mempool_capacity = capacity;
            }
            if opts.stall_sealing {
                config.epoch_interval = STALL_INTERVAL;
            }
            Deployment::from_chain(
                MeepoSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            )
        });
        registry.register("neuchain-sim", |opts, clock, net| {
            let mut config = NeuchainConfig::default();
            if let Some(capacity) = opts.mempool_capacity {
                config.mempool_capacity = capacity;
            }
            if opts.stall_sealing {
                config.epoch_interval = STALL_INTERVAL;
            }
            Deployment::from_chain(
                NeuchainSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            )
        });
        registry
    }

    /// Registers (or replaces) a backend under `name`.
    pub fn register(
        &mut self,
        name: &str,
        builder: impl Fn(&BackendOptions, SimClock, SimNetwork) -> Deployment + Send + Sync + 'static,
    ) {
        if let Some(slot) = self.builders.iter_mut().find(|(n, _)| n == name) {
            slot.1 = Box::new(builder);
        } else {
            self.builders.push((name.to_owned(), Box::new(builder)));
        }
    }

    /// Every registered backend name, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.builders.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Deploys `name` on a fresh simulated network at `speedup`×.
    pub fn deploy(
        &self,
        name: &str,
        opts: &BackendOptions,
        speedup: f64,
    ) -> Result<Deployment, UnknownBackend> {
        let clock = SimClock::with_speedup(speedup);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        self.deploy_on(name, opts, clock, net)
    }

    /// Deploys `name` on an existing clock/network.
    pub fn deploy_on(
        &self,
        name: &str,
        opts: &BackendOptions,
        clock: SimClock,
        net: SimNetwork,
    ) -> Result<Deployment, UnknownBackend> {
        match self.builders.iter().find(|(n, _)| n == name) {
            Some((_, builder)) => Ok(builder(opts, clock, net)),
            None => Err(UnknownBackend {
                name: name.to_owned(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            }),
        }
    }
}

/// A running simulated SUT.
pub struct Deployment {
    client: Arc<dyn BlockchainClient>,
    chain: Arc<dyn SimChain>,
    clock: SimClock,
    net: SimNetwork,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("chain", &self.client().chain_name())
            .finish()
    }
}

impl Deployment {
    /// Deploys the SUT on a fresh simulated network whose clock runs
    /// `speedup`× faster than wall time (1.0 = real time). Links follow
    /// the paper's ~100 Mbps testbed.
    pub fn up(spec: ChainSpec, speedup: f64) -> Self {
        let clock = SimClock::with_speedup(speedup);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        Self::up_on(spec, clock, net)
    }

    /// Deploys on an existing clock/network (shared-infrastructure runs).
    pub fn up_on(spec: ChainSpec, clock: SimClock, net: SimNetwork) -> Self {
        match spec {
            ChainSpec::Ethereum(config) => Self::from_chain(
                EthereumSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            ),
            ChainSpec::Fabric(config) => Self::from_chain(
                FabricSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            ),
            ChainSpec::Neuchain(config) => Self::from_chain(
                NeuchainSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            ),
            ChainSpec::Meepo(config) => Self::from_chain(
                MeepoSim::start(config, clock.clone(), net.clone()),
                clock,
                net,
            ),
        }
    }

    /// Wraps any started [`SimChain`] (built-in or custom policy) as a
    /// deployment.
    pub fn from_chain<T: SimChain + 'static>(
        chain: Arc<T>,
        clock: SimClock,
        net: SimNetwork,
    ) -> Self {
        Deployment {
            client: Arc::clone(&chain) as Arc<dyn BlockchainClient>,
            chain: chain as Arc<dyn SimChain>,
            clock,
            net,
        }
    }

    /// The generic client handle the driver programs against.
    pub fn client(&self) -> Arc<dyn BlockchainClient> {
        Arc::clone(&self.client)
    }

    /// The deployment-facing chain surface: seeding, state reads,
    /// fault-target discovery, ledger audits.
    pub fn chain(&self) -> &Arc<dyn SimChain> {
        &self.chain
    }

    /// Seeds an account with initial balances (genesis allocation — the
    /// preparation-phase fixture the paper's client installs).
    pub fn seed_account(&self, account: Address, checking: u64, savings: u64) {
        self.chain.seed_account(account, checking, savings);
    }

    /// The simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The simulated network (resource monitoring reads its counters).
    pub fn net(&self) -> &SimNetwork {
        &self.net
    }

    /// Stops block production.
    pub fn down(&self) {
        self.client.shutdown();
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        self.down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_chains_deploy() {
        for spec in ChainSpec::all_defaults() {
            let name = spec.name();
            let deployment = Deployment::up(spec, 1000.0);
            assert_eq!(deployment.client().chain_name(), name);
            assert_eq!(deployment.client().latest_height(0).unwrap(), 0);
            deployment.down();
        }
    }

    #[test]
    fn seeding_reaches_the_chain() {
        let deployment = Deployment::up(ChainSpec::fabric_default(), 1000.0);
        let account = Address::from_name("seeded");
        deployment.seed_account(account, 123, 456);
        assert_eq!(deployment.chain().account(account).unwrap().checking, 123);
        assert_eq!(deployment.client().pending_txs().unwrap(), 0);
    }

    #[test]
    fn spec_names() {
        assert_eq!(ChainSpec::ethereum_default().name(), "ethereum-sim");
        assert_eq!(ChainSpec::fabric_default().name(), "fabric-sim");
        assert_eq!(ChainSpec::neuchain_default().name(), "neuchain-sim");
        assert_eq!(ChainSpec::meepo_default().name(), "meepo-sim");
        for spec in ChainSpec::all_defaults() {
            assert_eq!(ChainSpec::by_name(spec.name()).unwrap().name(), spec.name());
        }
        assert!(ChainSpec::by_name("nonexistent").is_none());
    }

    #[test]
    fn registry_deploys_by_name() {
        let registry = BackendRegistry::builtin();
        assert_eq!(
            registry.names(),
            vec!["ethereum-sim", "fabric-sim", "meepo-sim", "neuchain-sim"]
        );
        for name in registry.names() {
            let deployment = registry
                .deploy(name, &BackendOptions::default(), 1000.0)
                .unwrap();
            assert_eq!(deployment.client().chain_name(), name);
            deployment.down();
        }
    }

    #[test]
    fn registry_rejects_unknown_names() {
        let registry = BackendRegistry::builtin();
        let err = registry
            .deploy("tendermint", &BackendOptions::default(), 1000.0)
            .unwrap_err();
        assert!(err.to_string().contains("tendermint"));
        assert!(err.to_string().contains("neuchain-sim"));
    }

    #[test]
    fn registry_applies_generic_options() {
        use hammer_chain::client::ErrorKind;
        use hammer_chain::smallbank::Op;
        use hammer_chain::types::Transaction;
        use hammer_crypto::sig::SigParams;
        use hammer_crypto::Keypair;

        let registry = BackendRegistry::builtin();
        let opts = BackendOptions {
            mempool_capacity: Some(2),
            stall_sealing: true,
        };
        let deployment = registry.deploy("neuchain-sim", &opts, 1000.0).unwrap();
        let client = deployment.client();
        let mut saw_backpressure = false;
        for nonce in 0..10 {
            let tx = Transaction {
                client_id: 0,
                server_id: 0,
                nonce,
                op: Op::KvGet { key: nonce },
                chain_name: "neuchain-sim".to_owned(),
                contract_name: "smallbank".to_owned(),
            }
            .sign(&Keypair::from_seed(3), &SigParams::fast());
            if let Err(err) = client.submit(tx) {
                assert_eq!(err.kind(), ErrorKind::Backpressure);
                saw_backpressure = true;
                break;
            }
        }
        assert!(saw_backpressure, "capacity override not applied");
        deployment.down();
    }
}
