//! One-call SUT deployment (the paper's Ansible role, §III-A1).
//!
//! "We utilize the Ansible component to develop automated deployment
//! scripts, simplifying the deployment and configuration processes of the
//! blockchain environment. Currently, automated deployment scripts are
//! available for four typical blockchain systems." — [`Deployment::up`]
//! is the programmatic equivalent: it builds the simulated cluster
//! (clock, network, nodes) for any of the four chains from a
//! [`ChainSpec`] and hands back a ready [`BlockchainClient`].

use std::sync::Arc;

use hammer_chain::client::BlockchainClient;
use hammer_chain::types::Address;
use hammer_ethereum::{EthereumConfig, EthereumSim};
use hammer_fabric::{FabricConfig, FabricSim};
use hammer_meepo::{MeepoConfig, MeepoSim};
use hammer_net::{LinkConfig, SimClock, SimNetwork};
use hammer_neuchain::{NeuchainConfig, NeuchainSim};

/// Which system to deploy, with its full configuration.
#[derive(Clone, Debug)]
pub enum ChainSpec {
    /// PoW Ethereum simulator.
    Ethereum(EthereumConfig),
    /// Execute-order-validate Fabric simulator.
    Fabric(FabricConfig),
    /// Deterministic-ordering Neuchain simulator.
    Neuchain(NeuchainConfig),
    /// Sharded Meepo simulator.
    Meepo(MeepoConfig),
}

impl ChainSpec {
    /// Ethereum with the paper's deployment defaults (5 workers, 15 s PoW
    /// blocks).
    pub fn ethereum_default() -> Self {
        ChainSpec::Ethereum(EthereumConfig::default())
    }

    /// Fabric with the paper's deployment defaults (1 orderer + 4 peers).
    pub fn fabric_default() -> Self {
        ChainSpec::Fabric(FabricConfig::default())
    }

    /// Neuchain with the paper's deployment defaults (epoch server +
    /// client proxy + 3 block servers).
    pub fn neuchain_default() -> Self {
        ChainSpec::Neuchain(NeuchainConfig::default())
    }

    /// Meepo with the paper's deployment defaults (2 shards × 3 nodes).
    pub fn meepo_default() -> Self {
        ChainSpec::Meepo(MeepoConfig::default())
    }

    /// The chain's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ChainSpec::Ethereum(_) => "ethereum-sim",
            ChainSpec::Fabric(_) => "fabric-sim",
            ChainSpec::Neuchain(_) => "neuchain-sim",
            ChainSpec::Meepo(_) => "meepo-sim",
        }
    }

    /// Default specs for all four systems, in the paper's Fig. 6 order.
    pub fn all_defaults() -> Vec<ChainSpec> {
        vec![
            Self::ethereum_default(),
            Self::fabric_default(),
            Self::meepo_default(),
            Self::neuchain_default(),
        ]
    }
}

enum Handle {
    Ethereum(Arc<EthereumSim>),
    Fabric(Arc<FabricSim>),
    Neuchain(Arc<NeuchainSim>),
    Meepo(Arc<MeepoSim>),
}

/// A running simulated SUT.
pub struct Deployment {
    handle: Handle,
    clock: SimClock,
    net: SimNetwork,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("chain", &self.client().chain_name())
            .finish()
    }
}

impl Deployment {
    /// Deploys the SUT on a fresh simulated network whose clock runs
    /// `speedup`× faster than wall time (1.0 = real time). Links follow
    /// the paper's ~100 Mbps testbed.
    pub fn up(spec: ChainSpec, speedup: f64) -> Self {
        let clock = SimClock::with_speedup(speedup);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        Self::up_on(spec, clock, net)
    }

    /// Deploys on an existing clock/network (shared-infrastructure runs).
    pub fn up_on(spec: ChainSpec, clock: SimClock, net: SimNetwork) -> Self {
        let handle = match spec {
            ChainSpec::Ethereum(config) => {
                Handle::Ethereum(EthereumSim::start(config, clock.clone(), net.clone()))
            }
            ChainSpec::Fabric(config) => {
                Handle::Fabric(FabricSim::start(config, clock.clone(), net.clone()))
            }
            ChainSpec::Neuchain(config) => {
                Handle::Neuchain(NeuchainSim::start(config, clock.clone(), net.clone()))
            }
            ChainSpec::Meepo(config) => {
                Handle::Meepo(MeepoSim::start(config, clock.clone(), net.clone()))
            }
        };
        Deployment { handle, clock, net }
    }

    /// The generic client handle the driver programs against.
    pub fn client(&self) -> Arc<dyn BlockchainClient> {
        match &self.handle {
            Handle::Ethereum(c) => Arc::clone(c) as Arc<dyn BlockchainClient>,
            Handle::Fabric(c) => Arc::clone(c) as Arc<dyn BlockchainClient>,
            Handle::Neuchain(c) => Arc::clone(c) as Arc<dyn BlockchainClient>,
            Handle::Meepo(c) => Arc::clone(c) as Arc<dyn BlockchainClient>,
        }
    }

    /// Seeds an account with initial balances (genesis allocation — the
    /// preparation-phase fixture the paper's client installs).
    pub fn seed_account(&self, account: Address, checking: u64, savings: u64) {
        match &self.handle {
            Handle::Ethereum(c) => c.seed_account(account, checking, savings),
            Handle::Fabric(c) => c.seed_account(account, checking, savings),
            Handle::Neuchain(c) => c.seed_account(account, checking, savings),
            Handle::Meepo(c) => c.seed_account(account, checking, savings),
        }
    }

    /// The simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The simulated network (resource monitoring reads its counters).
    pub fn net(&self) -> &SimNetwork {
        &self.net
    }

    /// Stops block production.
    pub fn down(&self) {
        self.client().shutdown();
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        self.down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_chains_deploy() {
        for spec in ChainSpec::all_defaults() {
            let name = spec.name();
            let deployment = Deployment::up(spec, 1000.0);
            assert_eq!(deployment.client().chain_name(), name);
            assert_eq!(deployment.client().latest_height(0).unwrap(), 0);
            deployment.down();
        }
    }

    #[test]
    fn seeding_reaches_the_chain() {
        let deployment = Deployment::up(ChainSpec::fabric_default(), 1000.0);
        let account = Address::from_name("seeded");
        deployment.seed_account(account, 123, 456);
        // Verify through the workload path: a balance query via submit
        // would need the full driver; use pending_txs as a liveness probe
        // and trust the chain test suites for semantics.
        assert_eq!(deployment.client().pending_txs().unwrap(), 0);
    }

    #[test]
    fn spec_names() {
        assert_eq!(ChainSpec::ethereum_default().name(), "ethereum-sim");
        assert_eq!(ChainSpec::fabric_default().name(), "fabric-sim");
        assert_eq!(ChainSpec::neuchain_default().name(), "neuchain-sim");
        assert_eq!(ChainSpec::meepo_default().name(), "meepo-sim");
    }
}
