//! Declarative evaluation scenarios: builder → validate → compile → run
//! → verdict.
//!
//! Everything PRs 2–6 built — the [`EvalConfig`] builder, scripted
//! [`FaultPlan`]s and seeded [`ChaosSchedule`]s, [`RetryPolicy`], the
//! crash-recoverable driver, and the invariant oracle — composes here
//! behind one fluent [`ScenarioBuilder`] (modeled on
//! logos-blockchain-testing's build/deploy/capture/execute/evaluate
//! lifecycle). A scenario names its backend, shapes its workload and run
//! window, scripts or seeds its faults, and — the new piece — states
//! [`Expectation`]s: consensus liveness, a minimum tx-inclusion ratio,
//! latency SLO quantiles read from the hammer-obs lifecycle histograms,
//! the accounting identity, and no-stall. `build()` validates the whole
//! composition up front (typed [`ScenarioError`], no panics) and
//! compiles it down to the existing `EvalConfig` / `ChaosSchedule` /
//! [`RecoveryConfig`] machinery; `run()` drives the unmodified driver
//! and grades the report into a [`Verdict`] with per-expectation
//! pass/fail evidence.
//!
//! The shipped corpus ([`corpus`]) is data, not code: six JSON specs
//! under `scenarios/` at the repository root, each runnable by name
//! (`scenario_sweep` bench bin, `examples/scenarios.rs`).
//!
//! ```
//! use std::time::Duration;
//! use hammer_core::scenario::Scenario;
//!
//! let verdict = Scenario::builder("smoke")
//!     .backend("neuchain-sim")
//!     .speedup(1000.0)
//!     .constant_load(50, 2)
//!     .workload_with(|w| w.accounts = 100)
//!     .expect_consensus_liveness(1)
//!     .expect_accounting_identity()
//!     .expect_no_stall()
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(verdict.passed(), "{:?}", verdict.violations());
//! ```

use std::sync::Arc;
use std::time::Duration;

use hammer_net::chaos::{ChaosConfig, ChaosSchedule, ChaosTargets, FaultPlan, FaultPlanError};
use hammer_net::{LinkConfig, SimClock, SimNetwork};
use hammer_obs::{EventKind, Obs, Stage};
use hammer_rpc::json::Value;
use hammer_store::KvStore;
use hammer_workload::{
    AccessDistribution, ControlSequence, TraceKind, TraceSpec, WorkloadConfig, WorkloadKind,
};

use crate::chaos::{check_report, InvariantCheck};
use crate::checkpoint::RecoveryConfig;
use crate::deploy::{
    reconnect_policy_for, BackendOptions, BackendRegistry, DeployMode, Deployment,
    ProcessFaultStats, SupervisorConfig,
};
use crate::driver::{EvalConfig, EvalError, EvalReport, Evaluation};
use crate::retry::RetryPolicy;

/// What a scenario demands of its run. Each expectation grades into one
/// (or, for the oracle-backed ones, a few) [`InvariantCheck`] evidence
/// rows in the [`Verdict`].
#[derive(Clone, Debug, PartialEq)]
pub enum Expectation {
    /// The chain made consensus progress: at least `min_blocks` sealed
    /// blocks/epochs across shards (the kernel's
    /// [`SimChain::progress_mark`](hammer_chain::kernel::SimChain::progress_mark)).
    ConsensusLiveness {
        /// Minimum sealed blocks/epochs (≥ 1).
        min_blocks: u64,
    },
    /// At least `ratio` of attempted transactions committed
    /// (`committed / submitted`).
    MinInclusionRatio {
        /// The floor, in `(0, 1]`.
        ratio: f64,
        /// Per-backend floors overriding `ratio` — calibration data for
        /// corpus scenarios retargeted across backends with very
        /// different commit disciplines.
        overrides: Vec<(String, f64)>,
    },
    /// The `quantile` of commit latency (submission → block inclusion,
    /// simulated time, read from the hammer-obs [`Stage::InBlock`]
    /// lifecycle histogram) stays at or under `bound`.
    LatencySlo {
        /// Which quantile to read, in `(0, 1)` (e.g. `0.95`).
        quantile: f64,
        /// The latency bound.
        bound: Duration,
        /// Per-backend bounds overriding `bound` (a PoW chain's 15 s
        /// blocks need a different SLO than a deterministic sealer).
        overrides: Vec<(String, Duration)>,
    },
    /// The PR 5 oracle's report checks: the accounting identity
    /// `committed + failed + timed_out + rejected + dropped + expired ==
    /// submitted`, plus the fault-window attribution recount.
    AccountingIdentity,
    /// The stall watchdog must not have aborted the run (flag and
    /// journal agree).
    NoStall,
}

/// A node reference inside a scripted fault spec, resolved against the
/// deployed chain's discovered fault targets at install time — so corpus
/// scenarios stay backend-agnostic data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeRef {
    /// The i-th ingress endpoint (`SimChain::ingress_nodes`).
    Ingress(usize),
    /// The i-th sealer endpoint (`SimChain::sealer_nodes`).
    Sealer(usize),
    /// A literal endpoint name (backend-specific).
    Named(String),
    /// Inside a partition group only: every discovered target not named
    /// by any other group.
    Rest,
}

impl NodeRef {
    /// Parses the spec syntax: `ingress:N`, `sealer:N`, `rest`, or a
    /// literal endpoint name.
    pub fn parse(s: &str) -> NodeRef {
        if s == "rest" {
            return NodeRef::Rest;
        }
        if let Some(i) = s.strip_prefix("ingress:").and_then(|n| n.parse().ok()) {
            return NodeRef::Ingress(i);
        }
        if let Some(i) = s.strip_prefix("sealer:").and_then(|n| n.parse().ok()) {
            return NodeRef::Sealer(i);
        }
        NodeRef::Named(s.to_owned())
    }

    fn resolve(&self, targets: &ChaosTargets) -> Result<String, ScenarioError> {
        match self {
            NodeRef::Ingress(i) => targets.ingress.get(*i).cloned().ok_or_else(|| {
                ScenarioError::Chaos(format!(
                    "ingress:{i} out of range (chain exposes {} ingress nodes)",
                    targets.ingress.len()
                ))
            }),
            NodeRef::Sealer(i) => targets.sealers.get(*i).cloned().ok_or_else(|| {
                ScenarioError::Chaos(format!(
                    "sealer:{i} out of range (chain exposes {} sealer nodes)",
                    targets.sealers.len()
                ))
            }),
            NodeRef::Named(n) => Ok(n.clone()),
            NodeRef::Rest => Err(ScenarioError::Chaos(
                "`rest` is only meaningful inside a partition group".to_owned(),
            )),
        }
    }
}

/// One scripted fault window, with placeholder node references.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// The node's process is down during the window.
    Crash {
        /// Which node.
        node: NodeRef,
        /// Window start (simulated time).
        start: Duration,
        /// Window end (exclusive).
        end: Duration,
    },
    /// The node runs but its traffic is dropped.
    Blackhole {
        /// Which node.
        node: NodeRef,
        /// Window start.
        start: Duration,
        /// Window end.
        end: Duration,
    },
    /// Extra latency on every link (or just links touching `node`).
    LatencySpike {
        /// Scoped to one node's links when set; global otherwise.
        node: Option<NodeRef>,
        /// Added one-way latency.
        extra: Duration,
        /// Window start.
        start: Duration,
        /// Window end.
        end: Duration,
    },
    /// Links between different groups are cut; `NodeRef::Rest` in a
    /// group soaks up every unnamed target.
    Partition {
        /// The groups (each a set of node references).
        groups: Vec<Vec<NodeRef>>,
        /// Window start.
        start: Duration,
        /// Window end.
        end: Duration,
    },
}

impl FaultSpec {
    fn window(&self) -> (Duration, Duration) {
        match self {
            FaultSpec::Crash { start, end, .. }
            | FaultSpec::Blackhole { start, end, .. }
            | FaultSpec::LatencySpike { start, end, .. }
            | FaultSpec::Partition { start, end, .. } => (*start, *end),
        }
    }

    fn apply(
        &self,
        plan: FaultPlan,
        targets: &ChaosTargets,
        endpoints: &[String],
    ) -> Result<FaultPlan, ScenarioError> {
        Ok(match self {
            FaultSpec::Crash { node, start, end } => {
                plan.crash(&node.resolve(targets)?, *start, *end)
            }
            FaultSpec::Blackhole { node, start, end } => {
                plan.blackhole(&node.resolve(targets)?, *start, *end)
            }
            FaultSpec::LatencySpike {
                node: None,
                extra,
                start,
                end,
            } => plan.latency_spike(*extra, *start, *end),
            FaultSpec::LatencySpike {
                node: Some(node),
                extra,
                start,
                end,
            } => plan.latency_spike_on(&node.resolve(targets)?, *extra, *start, *end),
            FaultSpec::Partition { groups, start, end } => {
                let resolved = resolve_partition(groups, targets, endpoints)?;
                let borrowed: Vec<Vec<&str>> = resolved
                    .iter()
                    .map(|g| g.iter().map(String::as_str).collect())
                    .collect();
                let slices: Vec<&[&str]> = borrowed.iter().map(Vec::as_slice).collect();
                plan.partition(&slices, *start, *end)
            }
        })
    }
}

fn resolve_partition(
    groups: &[Vec<NodeRef>],
    targets: &ChaosTargets,
    endpoints: &[String],
) -> Result<Vec<Vec<String>>, ScenarioError> {
    let mut named: Vec<String> = Vec::new();
    for group in groups {
        for node in group {
            if *node != NodeRef::Rest {
                named.push(node.resolve(targets)?);
            }
        }
    }
    let mut resolved = Vec::with_capacity(groups.len());
    for group in groups {
        let mut out = Vec::new();
        for node in group {
            if *node == NodeRef::Rest {
                // Every registered endpoint no other group claimed —
                // the full topology, not just the discovered fault
                // targets, so "isolate the sealer from the rest of the
                // network" is expressible even on chains whose only
                // discovered target is the sealer itself.
                for t in endpoints {
                    if !named.contains(t) && !out.contains(t) {
                        out.push(t.clone());
                    }
                }
                if out.is_empty() {
                    return Err(ScenarioError::Chaos(
                        "partition `rest` group resolved to no nodes".to_owned(),
                    ));
                }
            } else {
                let name = node.resolve(targets)?;
                if !out.contains(&name) {
                    out.push(name);
                }
            }
        }
        resolved.push(out);
    }
    Ok(resolved)
}

/// The fault side of a scenario: either a seeded generated schedule or a
/// scripted list of windows.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosSpec {
    /// Generate a [`ChaosSchedule`] from `(seed, discovered targets,
    /// config)`. A zero `config.horizon` defaults to the run window.
    Seeded {
        /// The schedule seed.
        seed: u64,
        /// Generator knobs.
        config: ChaosConfig,
    },
    /// Hand-scripted windows with placeholder node references.
    Scripted(Vec<FaultSpec>),
}

impl ChaosSpec {
    fn to_plan(
        &self,
        targets: &ChaosTargets,
        endpoints: &[String],
        run_window: Duration,
    ) -> Result<FaultPlan, ScenarioError> {
        match self {
            ChaosSpec::Seeded { seed, config } => {
                let mut config = config.clone();
                if config.horizon.is_zero() {
                    config.horizon = run_window;
                }
                Ok(ChaosSchedule::generate(*seed, targets, &config).into_plan())
            }
            ChaosSpec::Scripted(specs) => {
                let mut plan = FaultPlan::new();
                for spec in specs {
                    plan = spec.apply(plan, targets, endpoints)?;
                }
                plan.validate()
                    .map_err(|e: FaultPlanError| ScenarioError::Chaos(e.to_string()))?;
                Ok(plan)
            }
        }
    }
}

/// Crash-during-drain knobs: run through the checkpointing driver, kill
/// cooperatively at `kill_at` (simulated time), then resume from the
/// checkpoint store and let the resumed run finish the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoverySpec {
    /// Checkpoint cadence (simulated time).
    pub interval: Duration,
    /// When the driver kills itself (simulated time); kills land between
    /// submission attempts, so a kill during drain is exactly the
    /// crash-during-drain case.
    pub kill_at: Duration,
}

/// Why a scenario failed to build, parse, or run. Every variant is a
/// typed, non-panicking diagnosis.
#[derive(Debug)]
pub enum ScenarioError {
    /// The backend name is not registered.
    UnknownBackend {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name.
        known: Vec<String>,
    },
    /// The workload profile is invalid.
    Workload(String),
    /// The run window (control sequence) is empty or inconsistent with
    /// the retry policy.
    RunWindow(String),
    /// The chaos/fault spec is malformed or cannot resolve against the
    /// deployed topology.
    Chaos(String),
    /// An expectation's parameters are out of range.
    Expectation(String),
    /// The recovery spec is malformed.
    Recovery(String),
    /// A multi-process deployment failed (spawn, handshake, health
    /// check, or fault-plan forwarding).
    Deploy(String),
    /// A JSON scenario spec failed to parse.
    Spec(String),
    /// The compiled driver configuration was rejected, or the run failed.
    Config(EvalError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::UnknownBackend { name, known } => {
                write!(f, "unknown backend {name:?} (known: {})", known.join(", "))
            }
            ScenarioError::Workload(msg) => write!(f, "workload: {msg}"),
            ScenarioError::RunWindow(msg) => write!(f, "run window: {msg}"),
            ScenarioError::Chaos(msg) => write!(f, "chaos spec: {msg}"),
            ScenarioError::Expectation(msg) => write!(f, "expectation: {msg}"),
            ScenarioError::Recovery(msg) => write!(f, "recovery spec: {msg}"),
            ScenarioError::Deploy(msg) => write!(f, "deploy: {msg}"),
            ScenarioError::Spec(msg) => write!(f, "scenario spec: {msg}"),
            ScenarioError::Config(e) => write!(f, "driver config: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Config(e) => Some(e),
            _ => None,
        }
    }
}

/// Fluent scenario assembly; start from [`Scenario::builder`] and finish
/// with [`ScenarioBuilder::build`], which validates the composition and
/// pre-compiles the driver configuration.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    name: String,
    description: String,
    backend: String,
    speedup: f64,
    deploy_mode: DeployMode,
    options: BackendOptions,
    workload: WorkloadConfig,
    control: Option<ControlSequence>,
    chaos: Option<ChaosSpec>,
    retry: RetryPolicy,
    stall_budget: Duration,
    drain_timeout: Duration,
    poll_interval: Duration,
    tracker_shards: Option<usize>,
    recovery: Option<RecoverySpec>,
    expectations: Vec<Expectation>,
}

impl ScenarioBuilder {
    fn new(name: &str) -> Self {
        ScenarioBuilder {
            name: name.to_owned(),
            description: String::new(),
            backend: "neuchain-sim".to_owned(),
            speedup: 100.0,
            deploy_mode: DeployMode::default(),
            options: BackendOptions::default(),
            workload: WorkloadConfig {
                accounts: 200,
                ..WorkloadConfig::default()
            },
            control: None,
            chaos: None,
            retry: RetryPolicy::disabled(),
            // Clears the longest quiet gap of any builtin backend
            // (ethereum's 15 s blocks — see the chaos harness).
            stall_budget: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(60),
            poll_interval: Duration::from_millis(50),
            tracker_shards: None,
            recovery: None,
            expectations: Vec::new(),
        }
    }

    /// Human-readable description (shows up in verdict JSON).
    pub fn describe(mut self, description: &str) -> Self {
        self.description = description.to_owned();
        self
    }

    /// Target backend, by registry name.
    pub fn backend(mut self, name: &str) -> Self {
        self.backend = name.to_owned();
        self
    }

    /// Clock speedup (simulated seconds per wall second).
    pub fn speedup(mut self, speedup: f64) -> Self {
        self.speedup = speedup;
        self
    }

    /// How the SUT is deployed: in-process on the simulated network
    /// (default) or as a supervised `node-host` OS process behind real
    /// TCP, where crash-fault windows SIGKILL the actual process.
    pub fn deploy_mode(mut self, mode: DeployMode) -> Self {
        self.deploy_mode = mode;
        self
    }

    /// Backend topology knobs (mempool capacity, stalled sealing).
    pub fn backend_options(mut self, options: BackendOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the workload profile wholesale.
    pub fn workload(mut self, workload: WorkloadConfig) -> Self {
        self.workload = workload;
        self
    }

    /// Tweaks the workload profile in place.
    pub fn workload_with(mut self, f: impl FnOnce(&mut WorkloadConfig)) -> Self {
        f(&mut self.workload);
        self
    }

    /// The run window: an explicit control sequence.
    pub fn control(mut self, control: ControlSequence) -> Self {
        self.control = Some(control);
        self
    }

    /// Shorthand: a constant-rate run window of `rate` tx per one-second
    /// slice for `slices` slices.
    pub fn constant_load(self, rate: u32, slices: usize) -> Self {
        self.control(ControlSequence::constant(
            rate,
            slices,
            Duration::from_secs(1),
        ))
    }

    /// Shorthand: a paper-trace-shaped window (NFT/DeFi/Sandbox),
    /// resampled to `slices` one-second slices and scaled to `total`
    /// transactions.
    pub fn trace_load(self, kind: TraceKind, seed: u64, total: usize, slices: usize) -> Self {
        let shape = resample(&TraceSpec::paper(kind, seed).generate(), slices);
        self.control(ControlSequence::from_trace(
            &shape,
            total,
            Duration::from_secs(1),
        ))
    }

    /// Seeded chaos: generate the fault schedule from `(seed, discovered
    /// targets, config)` at deploy time.
    pub fn chaos_seeded(mut self, seed: u64, config: ChaosConfig) -> Self {
        self.chaos = Some(ChaosSpec::Seeded { seed, config });
        self
    }

    /// Appends one scripted fault window (placeholder node references
    /// resolve against the deployed topology).
    pub fn fault(mut self, spec: FaultSpec) -> Self {
        match &mut self.chaos {
            Some(ChaosSpec::Scripted(specs)) => specs.push(spec),
            _ => self.chaos = Some(ChaosSpec::Scripted(vec![spec])),
        }
        self
    }

    /// Retry policy for transient submission failures.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Stall watchdog budget (must exceed the SUT's longest quiet gap).
    pub fn stall_budget(mut self, budget: Duration) -> Self {
        self.stall_budget = budget;
        self
    }

    /// How long the driver waits for in-flight transactions after the
    /// last slice.
    pub fn drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Monitor poll interval.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// In-flight tracker shard count override.
    pub fn tracker_shards(mut self, shards: usize) -> Self {
        self.tracker_shards = Some(shards);
        self
    }

    /// Runs through the checkpointing driver and kills/resumes at
    /// `kill_at` (crash-during-drain when `kill_at` lands after the last
    /// slice).
    pub fn recover(mut self, interval: Duration, kill_at: Duration) -> Self {
        self.recovery = Some(RecoverySpec { interval, kill_at });
        self
    }

    /// Adds any expectation.
    pub fn expect(mut self, expectation: Expectation) -> Self {
        self.expectations.push(expectation);
        self
    }

    /// Expects at least `min_blocks` sealed blocks/epochs.
    pub fn expect_consensus_liveness(self, min_blocks: u64) -> Self {
        self.expect(Expectation::ConsensusLiveness { min_blocks })
    }

    /// Expects `committed / submitted >= ratio`.
    pub fn expect_min_inclusion(self, ratio: f64) -> Self {
        self.expect(Expectation::MinInclusionRatio {
            ratio,
            overrides: Vec::new(),
        })
    }

    /// Expects the commit-latency `quantile` at or under `bound`.
    pub fn expect_latency_slo(self, quantile: f64, bound: Duration) -> Self {
        self.expect(Expectation::LatencySlo {
            quantile,
            bound,
            overrides: Vec::new(),
        })
    }

    /// Expects the PR 5 report oracle (accounting identity +
    /// fault-window attribution) to pass.
    pub fn expect_accounting_identity(self) -> Self {
        self.expect(Expectation::AccountingIdentity)
    }

    /// Expects the stall watchdog not to fire.
    pub fn expect_no_stall(self) -> Self {
        self.expect(Expectation::NoStall)
    }

    /// Validates the composition against the builtin backend registry
    /// and compiles the driver configuration.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        self.build_for(&BackendRegistry::builtin())
    }

    /// [`ScenarioBuilder::build`] against a custom registry (e.g. one
    /// with extra backends registered).
    pub fn build_for(self, registry: &BackendRegistry) -> Result<Scenario, ScenarioError> {
        if !registry.names().contains(&self.backend.as_str()) {
            return Err(ScenarioError::UnknownBackend {
                name: self.backend,
                known: registry.names().iter().map(|s| (*s).to_owned()).collect(),
            });
        }
        if !(self.speedup.is_finite() && self.speedup > 0.0) {
            return Err(ScenarioError::Spec(format!(
                "speedup must be positive and finite, got {}",
                self.speedup
            )));
        }
        let mut workload = self.workload.clone();
        workload.chain_name = self.backend.clone();
        workload
            .validate()
            .map_err(|e| ScenarioError::Workload(e.to_string()))?;
        let control = self
            .control
            .clone()
            .ok_or_else(|| ScenarioError::RunWindow("no control sequence set".to_owned()))?;
        if control.is_empty() || control.total() == 0 {
            return Err(ScenarioError::RunWindow(
                "control sequence carries no transactions".to_owned(),
            ));
        }
        if let Some(deadline) = self.retry.deadline {
            if deadline > control.slice_duration() {
                return Err(ScenarioError::RunWindow(format!(
                    "retry deadline {deadline:?} exceeds the {:?} control slice",
                    control.slice_duration()
                )));
            }
        }
        if let Some(chaos) = &self.chaos {
            validate_chaos(chaos)?;
        }
        if let Some(recovery) = &self.recovery {
            if recovery.interval.is_zero() {
                return Err(ScenarioError::Recovery(
                    "checkpoint interval must be positive".to_owned(),
                ));
            }
            if recovery.kill_at.is_zero() {
                return Err(ScenarioError::Recovery(
                    "kill_at must be positive (simulated time)".to_owned(),
                ));
            }
        }
        for expectation in &self.expectations {
            validate_expectation(expectation)?;
        }
        // Compile eagerly: a driver-config rejection is a build-time
        // error, not a surprise at run time.
        let eval = compile_eval(&self)?;
        Ok(Scenario {
            eval,
            spec: self,
            workload,
            control,
        })
    }
}

fn validate_chaos(chaos: &ChaosSpec) -> Result<(), ScenarioError> {
    match chaos {
        ChaosSpec::Seeded { config, .. } => {
            if config.max_windows == 0 {
                return Err(ScenarioError::Chaos(
                    "seeded chaos with max_windows = 0 generates nothing".to_owned(),
                ));
            }
            if config.min_window > config.max_window || config.max_window.is_zero() {
                return Err(ScenarioError::Chaos(format!(
                    "window bounds inverted: min {:?} > max {:?}",
                    config.min_window, config.max_window
                )));
            }
            Ok(())
        }
        ChaosSpec::Scripted(specs) => {
            if specs.is_empty() {
                return Err(ScenarioError::Chaos(
                    "scripted chaos with no fault windows".to_owned(),
                ));
            }
            for spec in specs {
                let (start, end) = spec.window();
                if start >= end {
                    return Err(ScenarioError::Chaos(format!(
                        "empty fault window [{start:?}, {end:?})"
                    )));
                }
                if let FaultSpec::Partition { groups, .. } = spec {
                    if groups.len() < 2 {
                        return Err(ScenarioError::Chaos(
                            "a partition needs at least two groups".to_owned(),
                        ));
                    }
                    let rests = groups
                        .iter()
                        .flatten()
                        .filter(|n| **n == NodeRef::Rest)
                        .count();
                    if rests > 1 {
                        return Err(ScenarioError::Chaos(
                            "`rest` may appear in at most one partition group".to_owned(),
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

fn validate_expectation(expectation: &Expectation) -> Result<(), ScenarioError> {
    match expectation {
        Expectation::ConsensusLiveness { min_blocks } => {
            if *min_blocks == 0 {
                return Err(ScenarioError::Expectation(
                    "consensus liveness needs min_blocks >= 1".to_owned(),
                ));
            }
        }
        Expectation::MinInclusionRatio { ratio, overrides } => {
            for (scope, r) in std::iter::once((&String::new(), ratio))
                .chain(overrides.iter().map(|(b, r)| (b, r)))
            {
                if !(r.is_finite() && *r > 0.0 && *r <= 1.0) {
                    return Err(ScenarioError::Expectation(format!(
                        "inclusion ratio{} must be in (0, 1], got {r}",
                        if scope.is_empty() {
                            String::new()
                        } else {
                            format!(" for {scope}")
                        }
                    )));
                }
            }
        }
        Expectation::LatencySlo {
            quantile,
            bound,
            overrides,
        } => {
            if !(quantile.is_finite() && *quantile > 0.0 && *quantile < 1.0) {
                return Err(ScenarioError::Expectation(format!(
                    "latency SLO quantile must be in (0, 1), got {quantile}"
                )));
            }
            if bound.is_zero() || overrides.iter().any(|(_, b)| b.is_zero()) {
                return Err(ScenarioError::Expectation(
                    "latency SLO bound must be positive".to_owned(),
                ));
            }
        }
        Expectation::AccountingIdentity | Expectation::NoStall => {}
    }
    Ok(())
}

fn compile_eval(spec: &ScenarioBuilder) -> Result<EvalConfig, ScenarioError> {
    let mut builder = EvalConfig::builder()
        .poll_interval(spec.poll_interval)
        .drain_timeout(spec.drain_timeout)
        .retry(spec.retry)
        .stall_budget(spec.stall_budget);
    if let Some(shards) = spec.tracker_shards {
        builder = builder.tracker_shards(shards);
    }
    builder.build().map_err(ScenarioError::Config)
}

/// Chunk-averages a long trace shape into `slices` buckets, preserving
/// the shape's relative mass per bucket.
fn resample(shape: &[f64], slices: usize) -> Vec<f64> {
    if shape.is_empty() || slices == 0 {
        return Vec::new();
    }
    let chunk = shape.len().div_ceil(slices);
    shape
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// A validated, compiled scenario — build one with [`Scenario::builder`]
/// or parse one from JSON ([`Scenario::from_json`], [`corpus`]).
#[derive(Clone, Debug)]
pub struct Scenario {
    spec: ScenarioBuilder,
    /// Workload with `chain_name` pinned to the target backend.
    workload: WorkloadConfig,
    control: ControlSequence,
    eval: EvalConfig,
}

impl Scenario {
    /// Starts a fluent builder.
    pub fn builder(name: &str) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The scenario's description.
    pub fn description(&self) -> &str {
        &self.spec.description
    }

    /// The target backend's registry name.
    pub fn backend(&self) -> &str {
        &self.spec.backend
    }

    /// The clock speedup.
    pub fn speedup(&self) -> f64 {
        self.spec.speedup
    }

    /// The deploy mode.
    pub fn deploy_mode(&self) -> DeployMode {
        self.spec.deploy_mode
    }

    /// The validated run window.
    pub fn control(&self) -> &ControlSequence {
        &self.control
    }

    /// The stated expectations.
    pub fn expectations(&self) -> &[Expectation] {
        &self.spec.expectations
    }

    /// Whether the scenario runs through the checkpointing driver.
    pub fn recoverable(&self) -> bool {
        self.spec.recovery.is_some()
    }

    /// The compiled driver configuration (scenarios compile down to the
    /// existing machinery; nothing scenario-specific reaches the driver).
    pub fn eval_config(&self) -> &EvalConfig {
        &self.eval
    }

    /// Decompiles back into a builder (retargeting, tweaking).
    pub fn to_builder(&self) -> ScenarioBuilder {
        self.spec.clone()
    }

    /// Re-aims a scenario at another backend/operating point: swaps the
    /// backend and speedup, scales the run window's total by
    /// `load_scale` (shape preserved), and re-validates. Expectation
    /// overrides keyed by the new backend name take effect at check
    /// time.
    pub fn retarget(
        &self,
        backend: &str,
        speedup: f64,
        load_scale: f64,
    ) -> Result<Scenario, ScenarioError> {
        if !(load_scale.is_finite() && load_scale > 0.0) {
            return Err(ScenarioError::Spec(format!(
                "load scale must be positive and finite, got {load_scale}"
            )));
        }
        let mut spec = self.spec.clone();
        spec.backend = backend.to_owned();
        spec.speedup = speedup;
        let total = (self.control.total() as f64 * load_scale).round().max(1.0) as usize;
        spec.control = Some(self.control.scaled_to_total(total));
        spec.build()
    }

    /// Runs against the builtin registry.
    pub fn run(&self) -> Result<Verdict, ScenarioError> {
        self.run_on(&BackendRegistry::builtin())
    }

    /// Deploys the backend ([`DeployMode::InProcess`] on a fresh
    /// simulated network, [`DeployMode::MultiProcess`] as a supervised
    /// `node-host` OS process behind real TCP), installs the compiled
    /// fault plan, drives the unmodified driver (the checkpointing
    /// variant when a recovery spec is set — including the kill and the
    /// resume), and grades the expectations into a [`Verdict`].
    ///
    /// Teardown is deterministic: the deployment comes down and the
    /// simulated network's scheduler thread is joined before this
    /// returns, so callers can probe for leaked threads/processes
    /// immediately.
    pub fn run_on(&self, registry: &BackendRegistry) -> Result<Verdict, ScenarioError> {
        let clock = SimClock::with_speedup(self.spec.speedup);
        let net = SimNetwork::new(clock.clone(), LinkConfig::lan());
        net.install_obs(Obs::new());
        let deployment = match self.spec.deploy_mode {
            DeployMode::InProcess => registry
                .deploy_on(&self.spec.backend, &self.spec.options, clock, net.clone())
                .map_err(|e| ScenarioError::UnknownBackend {
                    name: e.name,
                    known: e.known,
                })?,
            DeployMode::MultiProcess => registry
                .deploy_multi(
                    &self.spec.backend,
                    &self.spec.options,
                    clock.clone(),
                    net.clone(),
                    SupervisorConfig::default(),
                    reconnect_policy_for(&self.spec.retry, &clock),
                )
                .map_err(|e| match e {
                    crate::deploy::DeployError::Unknown(u) => ScenarioError::UnknownBackend {
                        name: u.name,
                        known: u.known,
                    },
                    other => ScenarioError::Deploy(other.to_string()),
                })?,
        };
        let run = self.run_deployed(&deployment, &net);
        let process_faults = deployment.supervisor().map(|s| s.stats());
        // Deterministic teardown, success or error: Drop shuts the SUT
        // (and any node process) down, then the scheduler thread joins.
        drop(deployment);
        net.shutdown_and_join();
        let (report, checks) = run?;
        Ok(Verdict {
            scenario: self.spec.name.clone(),
            backend: self.spec.backend.clone(),
            stalled: report.stalled,
            process_faults,
            checks,
            report,
        })
    }

    /// The deploy-to-grade middle of [`Scenario::run_on`], factored out
    /// so teardown runs on every exit path.
    fn run_deployed(
        &self,
        deployment: &Deployment,
        net: &SimNetwork,
    ) -> Result<(EvalReport, Vec<InvariantCheck>), ScenarioError> {
        let targets = ChaosTargets::new(
            deployment.chain().ingress_nodes(),
            deployment.chain().sealer_nodes(),
        );
        let plan = match &self.spec.chaos {
            Some(chaos) => {
                let plan =
                    chaos.to_plan(&targets, &net.endpoint_names(), self.control.duration())?;
                deployment
                    .install_faults(plan.clone())
                    .map_err(ScenarioError::Chaos)?;
                Some(plan)
            }
            None => None,
        };

        let report = self.drive(deployment)?;

        let progress = deployment.chain().progress_mark();
        let obs = net.obs();
        let mut checks = Vec::new();
        for expectation in &self.spec.expectations {
            self.grade(
                expectation,
                &report,
                plan.as_ref(),
                progress,
                &obs,
                &mut checks,
            );
        }
        Ok((report, checks))
    }

    fn drive(&self, deployment: &Deployment) -> Result<EvalReport, ScenarioError> {
        let evaluation = Evaluation::new(self.eval.clone());
        match &self.spec.recovery {
            None => evaluation
                .run(deployment, &self.workload, &self.control)
                .map_err(ScenarioError::Config),
            Some(spec) => {
                let store = Arc::new(KvStore::new());
                let run_id = format!("scenario-{}", self.spec.name);
                let first = RecoveryConfig::new(Arc::clone(&store), &run_id, spec.interval)
                    .kill_at(spec.kill_at);
                match evaluation.run_recoverable(deployment, &self.workload, &self.control, &first)
                {
                    // The cooperative kill landed: resume from the
                    // checkpoint and let the resumed run finish.
                    Err(EvalError::Killed) => {
                        let resume = RecoveryConfig::new(store, &run_id, spec.interval);
                        evaluation
                            .run_recoverable(deployment, &self.workload, &self.control, &resume)
                            .map_err(ScenarioError::Config)
                    }
                    // `kill_at` can land after the run completed — still
                    // a valid (un-killed) recoverable run.
                    other => other.map_err(ScenarioError::Config),
                }
            }
        }
    }

    fn grade(
        &self,
        expectation: &Expectation,
        report: &EvalReport,
        plan: Option<&FaultPlan>,
        progress: u64,
        obs: &Obs,
        checks: &mut Vec<InvariantCheck>,
    ) {
        match expectation {
            Expectation::ConsensusLiveness { min_blocks } => {
                let detail = format!("sealed {progress} blocks/epochs (need >= {min_blocks})");
                checks.push(if progress >= *min_blocks {
                    InvariantCheck::pass("consensus_liveness", detail)
                } else {
                    InvariantCheck::fail("consensus_liveness", detail)
                });
            }
            Expectation::MinInclusionRatio { ratio, overrides } => {
                let floor = overrides
                    .iter()
                    .find(|(b, _)| *b == self.spec.backend)
                    .map(|(_, r)| *r)
                    .unwrap_or(*ratio);
                if report.submitted == 0 {
                    checks.push(InvariantCheck::fail(
                        "min_inclusion",
                        "no transactions were submitted",
                    ));
                    return;
                }
                let observed = report.committed as f64 / report.submitted as f64;
                let detail = format!(
                    "{}/{} committed = {observed:.3} (need >= {floor:.3})",
                    report.committed, report.submitted
                );
                checks.push(if observed >= floor {
                    InvariantCheck::pass("min_inclusion", detail)
                } else {
                    InvariantCheck::fail("min_inclusion", detail)
                });
            }
            Expectation::LatencySlo {
                quantile,
                bound,
                overrides,
            } => {
                let bound = overrides
                    .iter()
                    .find(|(b, _)| *b == self.spec.backend)
                    .map(|(_, d)| *d)
                    .unwrap_or(*bound);
                let histogram = obs.spans().histogram(Stage::InBlock);
                if histogram.count() == 0 {
                    checks.push(InvariantCheck::fail(
                        "latency_slo",
                        "no commit-latency samples in the InBlock histogram",
                    ));
                    return;
                }
                let observed = Duration::from_nanos(histogram.snapshot().quantile(*quantile));
                let detail = format!(
                    "p{:.0} = {:.3}s over {} samples (need <= {:.3}s, simulated time)",
                    quantile * 100.0,
                    observed.as_secs_f64(),
                    histogram.count(),
                    bound.as_secs_f64()
                );
                checks.push(if observed <= bound {
                    InvariantCheck::pass("latency_slo", detail)
                } else {
                    InvariantCheck::fail("latency_slo", detail)
                });
            }
            Expectation::AccountingIdentity => {
                checks.extend(check_report(report, plan));
            }
            Expectation::NoStall => {
                let journaled = obs.journal().count_of(EventKind::Stalled);
                checks.push(if report.stalled || journaled > 0 {
                    InvariantCheck::fail(
                        "no_stall",
                        format!(
                            "watchdog aborted (flag={}, {journaled} journal events), {} timed out",
                            report.stalled, report.timed_out
                        ),
                    )
                } else {
                    InvariantCheck::pass("no_stall", "run completed without a watchdog abort")
                });
            }
        }
    }

    /// Parses a scenario from its JSON spec (the corpus format) and
    /// validates it.
    pub fn from_json(spec: &str) -> Result<Scenario, ScenarioError> {
        Self::builder_from_json(spec)?.build()
    }

    /// Parses the JSON spec into a builder without validating — callers
    /// can tweak (retarget, rescale) before `build()`.
    pub fn builder_from_json(spec: &str) -> Result<ScenarioBuilder, ScenarioError> {
        let value =
            Value::parse(spec).map_err(|e| ScenarioError::Spec(format!("bad JSON: {e:?}")))?;
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ScenarioError::Spec("missing \"name\"".to_owned()))?;
        let mut builder = Scenario::builder(name);
        if let Some(d) = value.get("description").and_then(Value::as_str) {
            builder = builder.describe(d);
        }
        let backend = value
            .get("backend")
            .and_then(Value::as_str)
            .ok_or_else(|| ScenarioError::Spec("missing \"backend\"".to_owned()))?;
        builder = builder.backend(backend);
        if let Some(s) = value.get("speedup").and_then(Value::as_f64) {
            builder = builder.speedup(s);
        }
        if let Some(m) = value.get("deploy_mode").and_then(Value::as_str) {
            let mode = DeployMode::parse(m).ok_or_else(|| {
                ScenarioError::Spec(format!(
                    "unknown deploy_mode {m:?} (want \"in_process\" or \"multi_process\")"
                ))
            })?;
            builder = builder.deploy_mode(mode);
        }
        if let Some(w) = value.get("workload") {
            builder = builder.workload(parse_workload(w)?);
        }
        let control = value
            .get("control")
            .ok_or_else(|| ScenarioError::Spec("missing \"control\"".to_owned()))?;
        builder = builder.control(parse_control(control)?);
        if let Some(r) = value.get("retry") {
            builder = builder.retry(parse_retry(r)?);
        }
        if let Some(s) = value.get("stall_budget_s").and_then(Value::as_f64) {
            builder = builder.stall_budget(Duration::from_secs_f64(s));
        }
        if let Some(s) = value.get("drain_timeout_s").and_then(Value::as_f64) {
            builder = builder.drain_timeout(Duration::from_secs_f64(s));
        }
        if let Some(ms) = value.get("poll_interval_ms").and_then(Value::as_u64) {
            builder = builder.poll_interval(Duration::from_millis(ms));
        }
        if let Some(n) = value.get("tracker_shards").and_then(Value::as_u64) {
            builder = builder.tracker_shards(n as usize);
        }
        if let Some(c) = value.get("chaos") {
            builder.chaos = Some(parse_chaos(c)?);
        }
        if let Some(r) = value.get("recovery") {
            let interval = r
                .get("interval_ms")
                .and_then(Value::as_u64)
                .ok_or_else(|| ScenarioError::Spec("recovery needs interval_ms".to_owned()))?;
            let kill_at = r
                .get("kill_at_ms")
                .and_then(Value::as_u64)
                .ok_or_else(|| ScenarioError::Spec("recovery needs kill_at_ms".to_owned()))?;
            builder = builder.recover(
                Duration::from_millis(interval),
                Duration::from_millis(kill_at),
            );
        }
        if let Some(list) = value.get("expectations").and_then(Value::as_array) {
            for e in list {
                builder = builder.expect(parse_expectation(e)?);
            }
        }
        Ok(builder)
    }
}

fn parse_workload(value: &Value) -> Result<WorkloadConfig, ScenarioError> {
    let mut workload = WorkloadConfig {
        accounts: 200,
        ..WorkloadConfig::default()
    };
    if let Some(kind) = value.get("kind").and_then(Value::as_str) {
        workload.kind = match kind {
            "smallbank" => WorkloadKind::SmallBank,
            "ycsb" => WorkloadKind::Ycsb,
            other => {
                return Err(ScenarioError::Spec(format!(
                    "unknown workload kind {other:?}"
                )));
            }
        };
    }
    if let Some(n) = value.get("accounts").and_then(Value::as_u64) {
        workload.accounts = n as usize;
    }
    if let Some(r) = value.get("read_ratio").and_then(Value::as_f64) {
        workload.read_ratio = r;
    }
    if let Some(n) = value.get("clients").and_then(Value::as_u64) {
        workload.clients = n as u32;
    }
    if let Some(n) = value.get("threads_per_client").and_then(Value::as_u64) {
        workload.threads_per_client = n as u32;
    }
    if let Some(n) = value.get("seed").and_then(Value::as_u64) {
        workload.seed = n;
    }
    if let Some(d) = value.get("distribution") {
        workload.distribution = match d.get("type").and_then(Value::as_str) {
            Some("uniform") => AccessDistribution::Uniform,
            Some("zipfian") => AccessDistribution::Zipfian {
                theta: d.get("theta").and_then(Value::as_f64).unwrap_or(0.99),
            },
            other => {
                return Err(ScenarioError::Spec(format!(
                    "unknown access distribution {other:?}"
                )));
            }
        };
    }
    Ok(workload)
}

fn parse_control(value: &Value) -> Result<ControlSequence, ScenarioError> {
    let slice = Duration::from_millis(
        value
            .get("slice_ms")
            .and_then(Value::as_u64)
            .unwrap_or(1000),
    );
    if slice.is_zero() {
        return Err(ScenarioError::Spec("slice_ms must be positive".to_owned()));
    }
    let shape = value
        .get("shape")
        .and_then(Value::as_str)
        .ok_or_else(|| ScenarioError::Spec("control needs a \"shape\"".to_owned()))?;
    let slices = value.get("slices").and_then(Value::as_u64).unwrap_or(10) as usize;
    match shape {
        "constant" => {
            let rate = value
                .get("rate")
                .and_then(Value::as_u64)
                .ok_or_else(|| ScenarioError::Spec("constant control needs a rate".to_owned()))?;
            Ok(ControlSequence::constant(rate as u32, slices, slice))
        }
        "ramp" => {
            let from = value.get("from").and_then(Value::as_u64).unwrap_or(0) as u32;
            let to = value
                .get("to")
                .and_then(Value::as_u64)
                .ok_or_else(|| ScenarioError::Spec("ramp control needs \"to\"".to_owned()))?;
            if slices == 0 {
                return Err(ScenarioError::Spec(
                    "ramp needs at least one slice".to_owned(),
                ));
            }
            Ok(ControlSequence::ramp(from, to as u32, slices, slice))
        }
        "trace" => {
            let kind = match value.get("trace").and_then(Value::as_str) {
                Some("defi") => TraceKind::DeFi,
                Some("nft") => TraceKind::Nft,
                Some("sandbox") => TraceKind::Sandbox,
                other => {
                    return Err(ScenarioError::Spec(format!("unknown trace {other:?}")));
                }
            };
            let total = value
                .get("total")
                .and_then(Value::as_u64)
                .ok_or_else(|| ScenarioError::Spec("trace control needs a total".to_owned()))?;
            let seed = value.get("seed").and_then(Value::as_u64).unwrap_or(7);
            let shape = resample(&TraceSpec::paper(kind, seed).generate(), slices);
            Ok(ControlSequence::from_trace(&shape, total as usize, slice))
        }
        "budgets" => {
            let budgets = value
                .get("budgets")
                .and_then(Value::as_array)
                .ok_or_else(|| ScenarioError::Spec("budgets control needs a list".to_owned()))?
                .iter()
                .map(|v| v.as_u64().map(|b| b as u32))
                .collect::<Option<Vec<u32>>>()
                .ok_or_else(|| ScenarioError::Spec("budgets must be integers".to_owned()))?;
            Ok(ControlSequence::from_budgets(budgets, slice))
        }
        other => Err(ScenarioError::Spec(format!(
            "unknown control shape {other:?}"
        ))),
    }
}

fn parse_retry(value: &Value) -> Result<RetryPolicy, ScenarioError> {
    let preset = value
        .as_str()
        .or_else(|| value.get("preset").and_then(Value::as_str))
        .ok_or_else(|| {
            ScenarioError::Spec("retry must be \"standard\" or \"disabled\"".to_owned())
        })?;
    match preset {
        "standard" => Ok(RetryPolicy::standard()),
        "disabled" => Ok(RetryPolicy::disabled()),
        other => Err(ScenarioError::Spec(format!(
            "unknown retry preset {other:?}"
        ))),
    }
}

fn parse_chaos(value: &Value) -> Result<ChaosSpec, ScenarioError> {
    if let Some(faults) = value.get("faults").and_then(Value::as_array) {
        let mut specs = Vec::with_capacity(faults.len());
        for f in faults {
            specs.push(parse_fault(f)?);
        }
        return Ok(ChaosSpec::Scripted(specs));
    }
    let seed = value
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or_else(|| ScenarioError::Spec("chaos needs a seed or a faults list".to_owned()))?;
    let mut config = ChaosConfig::default();
    if let Some(s) = value.get("horizon_s").and_then(Value::as_f64) {
        config.horizon = Duration::from_secs_f64(s);
    } else {
        // Defaulted at deploy time to the run window.
        config.horizon = Duration::ZERO;
    }
    if let Some(n) = value.get("max_windows").and_then(Value::as_u64) {
        config.max_windows = n as usize;
    }
    if let Some(ms) = value.get("min_window_ms").and_then(Value::as_u64) {
        config.min_window = Duration::from_millis(ms);
    }
    if let Some(ms) = value.get("max_window_ms").and_then(Value::as_u64) {
        config.max_window = Duration::from_millis(ms);
    }
    if let Some(ms) = value.get("lead_in_ms").and_then(Value::as_u64) {
        config.lead_in = Duration::from_millis(ms);
    }
    if let Some(f) = value.get("settle_fraction").and_then(Value::as_f64) {
        config.settle_fraction = f;
    }
    if let Some(b) = value.get("allow_partitions").and_then(Value::as_bool) {
        config.allow_partitions = b;
    }
    if let Some(ms) = value.get("max_spike_ms").and_then(Value::as_u64) {
        config.max_spike = Duration::from_millis(ms);
    }
    Ok(ChaosSpec::Seeded { seed, config })
}

fn parse_fault(value: &Value) -> Result<FaultSpec, ScenarioError> {
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| ScenarioError::Spec("fault needs a kind".to_owned()))?;
    let window = |v: &Value| -> Result<(Duration, Duration), ScenarioError> {
        let start = v
            .get("start_ms")
            .and_then(Value::as_u64)
            .ok_or_else(|| ScenarioError::Spec("fault needs start_ms".to_owned()))?;
        let end = v
            .get("end_ms")
            .and_then(Value::as_u64)
            .ok_or_else(|| ScenarioError::Spec("fault needs end_ms".to_owned()))?;
        Ok((Duration::from_millis(start), Duration::from_millis(end)))
    };
    let node = |v: &Value| -> Result<NodeRef, ScenarioError> {
        v.get("node")
            .and_then(Value::as_str)
            .map(NodeRef::parse)
            .ok_or_else(|| ScenarioError::Spec(format!("{kind} fault needs a node")))
    };
    let (start, end) = window(value)?;
    match kind {
        "crash" => Ok(FaultSpec::Crash {
            node: node(value)?,
            start,
            end,
        }),
        "blackhole" => Ok(FaultSpec::Blackhole {
            node: node(value)?,
            start,
            end,
        }),
        "latency_spike" => {
            let extra = value
                .get("extra_ms")
                .and_then(Value::as_u64)
                .ok_or_else(|| ScenarioError::Spec("latency_spike needs extra_ms".to_owned()))?;
            Ok(FaultSpec::LatencySpike {
                node: value
                    .get("node")
                    .and_then(Value::as_str)
                    .map(NodeRef::parse),
                extra: Duration::from_millis(extra),
                start,
                end,
            })
        }
        "partition" => {
            let groups = value
                .get("groups")
                .and_then(Value::as_array)
                .ok_or_else(|| ScenarioError::Spec("partition needs groups".to_owned()))?
                .iter()
                .map(|g| {
                    g.as_array().map(|members| {
                        members
                            .iter()
                            .filter_map(Value::as_str)
                            .map(NodeRef::parse)
                            .collect::<Vec<NodeRef>>()
                    })
                })
                .collect::<Option<Vec<Vec<NodeRef>>>>()
                .ok_or_else(|| ScenarioError::Spec("partition groups must be lists".to_owned()))?;
            Ok(FaultSpec::Partition { groups, start, end })
        }
        other => Err(ScenarioError::Spec(format!("unknown fault kind {other:?}"))),
    }
}

fn parse_expectation(value: &Value) -> Result<Expectation, ScenarioError> {
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| ScenarioError::Spec("expectation needs a kind".to_owned()))?;
    match kind {
        "consensus_liveness" => Ok(Expectation::ConsensusLiveness {
            min_blocks: value.get("min_blocks").and_then(Value::as_u64).unwrap_or(1),
        }),
        "min_inclusion" => {
            let ratio = value
                .get("ratio")
                .and_then(Value::as_f64)
                .ok_or_else(|| ScenarioError::Spec("min_inclusion needs a ratio".to_owned()))?;
            let overrides = parse_overrides(value, Value::as_f64)?;
            Ok(Expectation::MinInclusionRatio { ratio, overrides })
        }
        "latency_slo" => {
            let quantile = value
                .get("quantile")
                .and_then(Value::as_f64)
                .ok_or_else(|| ScenarioError::Spec("latency_slo needs a quantile".to_owned()))?;
            let bound = value
                .get("max_ms")
                .and_then(Value::as_u64)
                .ok_or_else(|| ScenarioError::Spec("latency_slo needs max_ms".to_owned()))?;
            let overrides = parse_overrides(value, Value::as_u64)?
                .into_iter()
                .map(|(b, ms)| (b, Duration::from_millis(ms)))
                .collect();
            Ok(Expectation::LatencySlo {
                quantile,
                bound: Duration::from_millis(bound),
                overrides,
            })
        }
        "accounting_identity" => Ok(Expectation::AccountingIdentity),
        "no_stall" => Ok(Expectation::NoStall),
        other => Err(ScenarioError::Spec(format!(
            "unknown expectation kind {other:?}"
        ))),
    }
}

fn parse_overrides<T>(
    value: &Value,
    read: impl Fn(&Value) -> Option<T>,
) -> Result<Vec<(String, T)>, ScenarioError> {
    let Some(overrides) = value.get("overrides") else {
        return Ok(Vec::new());
    };
    let Value::Object(pairs) = overrides else {
        return Err(ScenarioError::Spec(
            "overrides must map backend names to values".to_owned(),
        ));
    };
    pairs
        .iter()
        .map(|(backend, v)| {
            read(v)
                .map(|t| (backend.clone(), t))
                .ok_or_else(|| ScenarioError::Spec(format!("bad override value for {backend:?}")))
        })
        .collect()
}

/// The graded outcome of one scenario run: per-expectation pass/fail
/// with evidence, plus the full driver report it was graded from.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The scenario's name.
    pub scenario: String,
    /// The backend it ran against.
    pub backend: String,
    /// Whether the stall watchdog aborted the run.
    pub stalled: bool,
    /// Node-process lifecycle stats (SIGKILLs delivered for crash
    /// windows, supervisor restarts); `None` for in-process runs.
    pub process_faults: Option<ProcessFaultStats>,
    /// One evidence row per graded expectation (the oracle-backed
    /// expectations contribute several).
    pub checks: Vec<InvariantCheck>,
    /// The driver report the grades were read from.
    pub report: EvalReport,
}

impl Verdict {
    /// Whether every expectation held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failing checks.
    pub fn violations(&self) -> Vec<&InvariantCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Serialises the verdict (checks + the record-free report) as one
    /// JSON object.
    pub fn to_json(&self) -> String {
        let checks: Vec<Value> = self
            .checks
            .iter()
            .map(|c| {
                Value::object([
                    ("name", Value::from(c.name)),
                    ("passed", Value::from(c.passed)),
                    ("detail", Value::from(c.detail.as_str())),
                ])
            })
            .collect();
        let mut fields = vec![
            ("scenario", Value::from(self.scenario.as_str())),
            ("backend", Value::from(self.backend.as_str())),
            ("passed", Value::from(self.passed())),
            ("stalled", Value::from(self.stalled)),
        ];
        if let Some(stats) = &self.process_faults {
            fields.push((
                "process_faults",
                Value::object([
                    ("kills", Value::from(stats.kills)),
                    ("restarts", Value::from(stats.restarts)),
                ]),
            ));
        }
        fields.push(("checks", Value::Array(checks)));
        let head = Value::object(fields);
        let head = head.to_json();
        // Splice the report in as a sibling field (it already serialises
        // itself).
        format!(
            "{},\"report\":{}}}",
            &head[..head.len() - 1],
            self.report.to_json()
        )
    }
}

/// The shipped scenario corpus — six JSON specs under `scenarios/` at
/// the repository root, embedded as data and runnable by name.
pub mod corpus {
    use super::{Scenario, ScenarioError};

    /// Name → embedded JSON spec.
    pub const SPECS: &[(&str, &str)] = &[
        (
            "nft-flash-crowd-mint",
            include_str!("../../../scenarios/nft_flash_crowd_mint.json"),
        ),
        (
            "defi-liquidation-cascade",
            include_str!("../../../scenarios/defi_liquidation_cascade.json"),
        ),
        (
            "partition-then-heal",
            include_str!("../../../scenarios/partition_then_heal.json"),
        ),
        (
            "cross-shard-hotspot",
            include_str!("../../../scenarios/cross_shard_hotspot.json"),
        ),
        (
            "slow-loris-ingress",
            include_str!("../../../scenarios/slow_loris_ingress.json"),
        ),
        (
            "crash-during-drain",
            include_str!("../../../scenarios/crash_during_drain.json"),
        ),
    ];

    /// Every corpus scenario name, in ship order.
    pub fn names() -> Vec<&'static str> {
        SPECS.iter().map(|(n, _)| *n).collect()
    }

    /// The raw JSON spec for `name`.
    pub fn spec(name: &str) -> Option<&'static str> {
        SPECS.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
    }

    /// Parses and validates the corpus scenario `name`.
    pub fn load(name: &str) -> Result<Scenario, ScenarioError> {
        let spec = spec(name).ok_or_else(|| {
            ScenarioError::Spec(format!(
                "unknown corpus scenario {name:?} (known: {})",
                names().join(", ")
            ))
        })?;
        Scenario::from_json(spec)
    }
}
