//! The evaluation driver: preparation → execution → report (Fig. 3).
//!
//! [`Evaluation::run`] takes a deployed SUT, a workload profile, and a
//! temporal control sequence, and produces an [`EvalReport`]:
//!
//! 1. **Preparation** — seed the account fixtures, generate the unsigned
//!    transactions, and sign them with the configured strategy
//!    ([`SigningStrategy`]). With [`SigningStrategy::Pipelined`] the
//!    execution phase starts while signing is still running (§III-D2).
//! 2. **Execution** — `clients × threads` submission workers drain the
//!    signed-transaction stream under the control sequence's per-slice
//!    budgets, each paying the modelled client-machine cost per
//!    submission. A monitor tracks commitment according to the
//!    [`TestingMode`]:
//!    * [`TestingMode::TaskProcessing`] — Hammer's Algorithm 1: poll for
//!      new blocks, take the *block timestamp* as the end time, and match
//!      via the Bloom-filtered dynamic hash index (O(1) per transaction).
//!    * [`TestingMode::BatchBaseline`] — Blockbench-style batch testing:
//!      same polling, but the end time is the *poll* time (the latency
//!      skew ξ1 of §II-C1) and matching linearly scans the unconfirmed
//!      queue (O(n·m)).
//!    * [`TestingMode::Interactive`] — Caliper-style: subscribe to
//!      per-transaction commit events; every event costs listener CPU on
//!      the client machine (the resource drain the paper blames for
//!      Caliper's lower reported TPS in Fig. 7).
//! 3. **Report** — statuses flush into the Performance table
//!    ([`hammer_store::TableStore`]) and aggregate into an [`EvalReport`].

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};
use hammer_chain::client::{BlockchainClient, ChainError, ErrorKind};
use hammer_chain::kernel::SimChain;
use hammer_chain::types::{SignedTransaction, Transaction, TxId, TxStatus};
use hammer_crypto::sig::SigParams;
use hammer_crypto::Keypair;
use hammer_net::FaultObserver;
use hammer_obs::{Obs, Stage};
use hammer_store::table::{LatencySummary, PerfRow, TableStore};
use hammer_store::KvStore;
use hammer_workload::{
    ControlSequence, SmallBankGenerator, WorkloadConfig, WorkloadKind, YcsbGenerator,
};
use parking_lot::Mutex;

use crate::baseline::BatchQueue;
use crate::checkpoint::{checkpoint_key, DriverCheckpoint, RecoveryConfig};
use crate::deploy::Deployment;
use crate::index::TxRecord;
use crate::machine::ClientMachine;
use crate::retry::{RetryDecision, RetryPolicy};
use crate::signer;
use crate::sync::{run_merger, StatusRecord, StatusSyncer};
use hammer_store::table::RowOutcome;

/// How commitment is observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestingMode {
    /// Hammer's asynchronous task processing (Algorithm 1).
    TaskProcessing,
    /// Blockbench-style batch testing (O(n·m) queue matching, poll-time
    /// end times).
    BatchBaseline,
    /// Caliper-style interactive testing (per-transaction event
    /// listening).
    Interactive,
}

/// How the workload is signed (§III-D, Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigningStrategy {
    /// One thread, then execute (Fig. 4a).
    Serial,
    /// Thread pool, wait for all, then execute (Fig. 4b).
    Async,
    /// Thread pool streaming into execution (Fig. 4c).
    Pipelined,
}

/// Driver configuration.
///
/// Construct with [`EvalConfig::builder`], the only way in: the builder
/// validates as it builds, so an invalid combination fails at
/// construction instead of deep inside [`Evaluation::run`]. The fields
/// are crate-private — the deprecation cycle that kept them public for
/// struct-literal construction is over.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Commitment-observation mode.
    pub(crate) mode: TestingMode,
    /// Signing strategy.
    pub(crate) signing: SigningStrategy,
    /// Signer thread-pool size for the async/pipelined strategies.
    pub(crate) signer_threads: usize,
    /// The modelled client machine.
    pub(crate) machine: ClientMachine,
    /// Signature scheme parameters (shared with the SUT).
    pub(crate) sig_params: SigParams,
    /// Block-polling interval in simulated time (ξ1: large intervals skew
    /// batch-baseline latency; small intervals burn CPU).
    pub(crate) poll_interval: Duration,
    /// How long (simulated) to keep monitoring after the last submission
    /// before declaring the stragglers timed out.
    pub(crate) drain_timeout: Duration,
    /// Interactive mode: listener CPU cost per commit event.
    pub(crate) listen_cost: Duration,
    /// Interactive mode: how many undelivered commit events the client
    /// SDK buffers before the transport drops them (the paper's "loss of
    /// response information ... under heavy load").
    pub(crate) event_buffer: usize,
    /// Route statuses through the Fig. 2 Redis→MySQL pipeline
    /// ([`crate::sync`]) instead of writing the Performance table
    /// directly at the end of the run.
    pub(crate) live_sync: bool,
    /// Resilient-submission policy: how workers retry transient failures
    /// (crashed/blackholed nodes, mempool backpressure). The default is
    /// [`RetryPolicy::disabled`], which reproduces the pre-fault driver
    /// exactly: one attempt per transaction.
    pub(crate) retry: RetryPolicy,
    /// Stall watchdog: abort the run gracefully when no progress (no
    /// submissions, retries, completions, or sealed blocks) is observed
    /// for this much simulated time while transactions are pending.
    /// `None` (the default) disables the watchdog.
    pub(crate) stall_budget: Option<Duration>,
    /// Shard count for the in-flight tracker (task-processing modes).
    /// `None` (the default) sizes it to the host's available parallelism;
    /// an explicit value is rounded up to a power of two. `1` reproduces
    /// the single-lock tracker exactly.
    pub(crate) tracker_shards: Option<usize>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            mode: TestingMode::TaskProcessing,
            signing: SigningStrategy::Pipelined,
            signer_threads: 4,
            machine: ClientMachine::paper_client(),
            sig_params: SigParams::fast(),
            poll_interval: Duration::from_millis(100),
            drain_timeout: Duration::from_secs(60),
            listen_cost: Duration::from_micros(400),
            event_buffer: 1_000,
            live_sync: false,
            retry: RetryPolicy::disabled(),
            stall_budget: None,
            tracker_shards: None,
        }
    }
}

impl EvalConfig {
    /// A validating builder seeded with the defaults.
    pub fn builder() -> EvalConfigBuilder {
        EvalConfigBuilder {
            config: EvalConfig::default(),
        }
    }
}

/// Builder for [`EvalConfig`]. Every setter takes and returns `self`;
/// [`EvalConfigBuilder::build`] validates the combination (non-zero signer
/// threads and poll interval, a sane client machine, a coherent retry
/// policy) so an invalid configuration fails at construction instead of
/// deep inside [`Evaluation::run`]. Cross-argument checks that need the
/// control sequence (non-empty budget, retry deadline within the slice
/// length) still happen in `run`.
#[derive(Clone, Debug)]
pub struct EvalConfigBuilder {
    config: EvalConfig,
}

impl EvalConfigBuilder {
    /// Commitment-observation mode.
    pub fn mode(mut self, mode: TestingMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Signing strategy.
    pub fn signing(mut self, signing: SigningStrategy) -> Self {
        self.config.signing = signing;
        self
    }

    /// Signer thread-pool size (must be non-zero).
    pub fn signer_threads(mut self, threads: usize) -> Self {
        self.config.signer_threads = threads;
        self
    }

    /// The modelled client machine.
    pub fn machine(mut self, machine: ClientMachine) -> Self {
        self.config.machine = machine;
        self
    }

    /// Signature scheme parameters (shared with the SUT).
    pub fn sig_params(mut self, params: SigParams) -> Self {
        self.config.sig_params = params;
        self
    }

    /// Block-polling interval in simulated time (must be non-zero).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.config.poll_interval = interval;
        self
    }

    /// Post-submission monitoring window before stragglers time out.
    pub fn drain_timeout(mut self, timeout: Duration) -> Self {
        self.config.drain_timeout = timeout;
        self
    }

    /// Interactive mode: listener CPU cost per commit event.
    pub fn listen_cost(mut self, cost: Duration) -> Self {
        self.config.listen_cost = cost;
        self
    }

    /// Interactive mode: SDK event-buffer depth.
    pub fn event_buffer(mut self, depth: usize) -> Self {
        self.config.event_buffer = depth;
        self
    }

    /// Route statuses through the Fig. 2 KV→table pipeline.
    pub fn live_sync(mut self, enabled: bool) -> Self {
        self.config.live_sync = enabled;
        self
    }

    /// Resilient-submission retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = policy;
        self
    }

    /// Enables the stall watchdog: the run aborts gracefully (with a
    /// complete report, `stalled` set) when no progress is observed for
    /// `budget` of simulated time while transactions are pending. Size
    /// the budget comfortably above the chain's block interval and the
    /// longest scripted fault window, or healthy-but-slow runs will be
    /// declared stalled.
    pub fn stall_budget(mut self, budget: Duration) -> Self {
        self.config.stall_budget = Some(budget);
        self
    }

    /// Shard count for the in-flight tracker (must be in `1..=4096`;
    /// rounded up to a power of two). The default sizes the tracker to
    /// the host's available parallelism; `1` pins the single-lock
    /// tracker, which is the baseline arm of the `driver_ceiling` bench.
    pub fn tracker_shards(mut self, shards: usize) -> Self {
        self.config.tracker_shards = Some(shards);
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<EvalConfig, EvalError> {
        let config = self.config;
        if config.signer_threads == 0 {
            return Err(EvalError::InvalidConfig(
                "signer_threads must be non-zero".to_owned(),
            ));
        }
        if config.poll_interval.is_zero() {
            return Err(EvalError::InvalidConfig(
                "poll_interval must be positive".to_owned(),
            ));
        }
        if config.stall_budget.is_some_and(|b| b.is_zero()) {
            return Err(EvalError::InvalidConfig(
                "stall_budget must be positive".to_owned(),
            ));
        }
        if config
            .tracker_shards
            .is_some_and(|n| !(1..=4096).contains(&n))
        {
            return Err(EvalError::InvalidConfig(
                "tracker_shards must be in 1..=4096".to_owned(),
            ));
        }
        config
            .machine
            .validate()
            .map_err(EvalError::InvalidConfig)?;
        config.retry.validate().map_err(EvalError::InvalidConfig)?;
        Ok(config)
    }
}

/// Driver failure.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A configuration did not validate.
    InvalidConfig(String),
    /// The SUT failed.
    Chain(ChainError),
    /// The driver was killed mid-run by [`RecoveryConfig::kill_at`]. The
    /// last periodic checkpoint survives in the recovery store; calling
    /// [`Evaluation::run_recoverable`] again with the same run id resumes
    /// from it.
    Killed,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EvalError::Chain(e) => write!(f, "chain error: {e}"),
            EvalError::Killed => write!(f, "driver killed mid-run (checkpoint retained)"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Per-fault-window committed-throughput breakdown (plus one `nominal`
/// entry covering the run time outside every window). Lets a fault sweep
/// show *when* throughput degraded, not just that it did.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultWindowStats {
    /// The fault window's label (`"nominal"` for the outside-all-windows
    /// entry).
    pub label: String,
    /// Window start (simulated time).
    pub start: Duration,
    /// Window end (simulated time, exclusive).
    pub end: Duration,
    /// Transactions whose commit time fell inside the window.
    pub committed: usize,
    /// Committed throughput over the window.
    pub tps: f64,
}

/// The result of one evaluation run.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// The evaluated chain's name.
    pub chain: String,
    /// Transactions attempted against the SUT (every transaction pulled
    /// from the signed stream, whatever its eventual fate — so
    /// `committed + failed + timed_out + dropped + expired + rejected`
    /// accounts for all of them).
    pub submitted: u64,
    /// Submissions the SUT terminally rejected (non-retryable errors, or
    /// any error when retrying is disabled).
    pub rejected: u64,
    /// Extra submission attempts made by the retry policy (0 unless
    /// [`EvalConfigBuilder::retry`] is set and transient faults occurred).
    pub retried: u64,
    /// Abandoned after exhausting the retry budget, never accepted.
    pub dropped: usize,
    /// Abandoned after the per-slice retry deadline passed.
    pub expired: usize,
    /// Committed successfully.
    pub committed: usize,
    /// Included on-chain but invalid (execution/MVCC failure).
    pub failed: usize,
    /// Never observed before the drain deadline.
    pub timed_out: usize,
    /// Committed transactions per second over the run span.
    pub overall_tps: f64,
    /// Latency distribution of committed transactions.
    pub latency: LatencySummary,
    /// Committed transactions per simulated second (time series).
    pub tps_series: Vec<usize>,
    /// Per-client committed counts.
    pub per_client_committed: Vec<(u32, usize)>,
    /// Per-shard committed counts (shard-aware load report; a single
    /// entry for non-sharded chains).
    pub per_shard_committed: Vec<(u32, usize)>,
    /// Simulated duration from first submission to last commit.
    pub sim_duration: Duration,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Rows that travelled the Fig. 2 KV→table pipeline (0 unless
    /// [`EvalConfigBuilder::live_sync`] is on).
    pub synced_rows: usize,
    /// Task-processing index statistics (Bloom rejections, probe steps);
    /// `None` for the batch baseline.
    pub index_stats: Option<crate::index::IndexStats>,
    /// Per-fault-window TPS breakdown; empty when the deployment's
    /// network has no fault plan installed.
    pub fault_windows: Vec<FaultWindowStats>,
    /// Whether the stall watchdog aborted the run: no progress for
    /// [`EvalConfigBuilder::stall_budget`] of simulated time while
    /// transactions were pending. The report is still complete — the
    /// in-flight stragglers are accounted as timed out.
    pub stalled: bool,
    /// The raw per-transaction records (for audits, §V-C).
    pub records: Vec<TxRecord>,
}

impl EvalReport {
    /// Serialises the report (minus the raw per-transaction records) as a
    /// single JSON object, suitable for experiment bins that aggregate
    /// many runs into one machine-readable file.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_str_field(&mut out, "chain", &self.chain);
        push_u64_field(&mut out, "submitted", self.submitted);
        push_u64_field(&mut out, "rejected", self.rejected);
        push_u64_field(&mut out, "retried", self.retried);
        push_u64_field(&mut out, "dropped", self.dropped as u64);
        push_u64_field(&mut out, "expired", self.expired as u64);
        push_u64_field(&mut out, "committed", self.committed as u64);
        push_u64_field(&mut out, "failed", self.failed as u64);
        push_u64_field(&mut out, "timed_out", self.timed_out as u64);
        push_f64_field(&mut out, "overall_tps", self.overall_tps);
        out.push_str("\"latency\":{");
        push_u64_field(&mut out, "count", self.latency.count as u64);
        push_f64_field(&mut out, "mean_s", self.latency.mean_s);
        push_f64_field(&mut out, "p50_s", self.latency.p50_s);
        push_f64_field(&mut out, "p95_s", self.latency.p95_s);
        push_f64_field(&mut out, "p99_s", self.latency.p99_s);
        push_f64_field(&mut out, "max_s", self.latency.max_s);
        close_object(&mut out);
        out.push(',');
        out.push_str("\"tps_series\":[");
        for (i, n) in self.tps_series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&n.to_string());
        }
        out.push_str("],");
        push_pairs_field(&mut out, "per_client_committed", &self.per_client_committed);
        push_pairs_field(&mut out, "per_shard_committed", &self.per_shard_committed);
        push_f64_field(&mut out, "sim_duration_s", self.sim_duration.as_secs_f64());
        push_f64_field(&mut out, "wall_time_s", self.wall_time.as_secs_f64());
        push_u64_field(&mut out, "synced_rows", self.synced_rows as u64);
        match &self.index_stats {
            Some(stats) => {
                out.push_str("\"index_stats\":{");
                push_u64_field(&mut out, "probe_steps", stats.probe_steps);
                push_u64_field(&mut out, "expansions", stats.expansions);
                push_u64_field(&mut out, "bloom_rejections", stats.bloom_rejections);
                push_u64_field(&mut out, "misses", stats.misses);
                push_u64_field(&mut out, "bloom_rebuilds", stats.bloom_rebuilds);
                close_object(&mut out);
                out.push(',');
            }
            None => out.push_str("\"index_stats\":null,"),
        }
        out.push_str("\"fault_windows\":[");
        for (i, w) in self.fault_windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_str_field(&mut out, "label", &w.label);
            push_f64_field(&mut out, "start_s", w.start.as_secs_f64());
            push_f64_field(&mut out, "end_s", w.end.as_secs_f64());
            push_u64_field(&mut out, "committed", w.committed as u64);
            push_f64_field(&mut out, "tps", w.tps);
            close_object(&mut out);
        }
        out.push_str("],");
        out.push_str("\"stalled\":");
        out.push_str(if self.stalled { "true" } else { "false" });
        out.push('}');
        out
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\",");
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
    out.push(',');
}

fn push_f64_field(out: &mut String, key: &str, value: f64) {
    let value = if value.is_finite() { value } else { 0.0 };
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&format!("{value:.6}"));
    out.push(',');
}

fn push_pairs_field(out: &mut String, key: &str, pairs: &[(u32, usize)]) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, (id, n)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{id},{n}]"));
    }
    out.push_str("],");
}

/// Replaces a trailing comma (if any) with the closing brace.
fn close_object(out: &mut String) {
    if out.ends_with(',') {
        out.pop();
    }
    out.push('}');
}

/// Internal: driver-side observability bundle. The metric handles are
/// resolved once per run; with a disabled registry they are detached
/// no-ops, so the submission and matching hot paths pay one predictable
/// branch per event.
#[derive(Clone)]
struct DriverObs {
    obs: Obs,
    submitted: hammer_obs::Counter,
    retried: hammer_obs::Counter,
    pending: hammer_obs::Gauge,
}

impl DriverObs {
    fn new(obs: Obs) -> Self {
        DriverObs {
            submitted: obs.registry().counter("hammer_driver_submitted_total"),
            retried: obs.registry().counter("hammer_driver_retried_total"),
            pending: obs.registry().gauge("hammer_driver_pending"),
            obs,
        }
    }

    #[inline]
    fn on(&self) -> bool {
        self.obs.enabled()
    }
}

/// Internal: one interface over the two status-tracking structures.
/// Locking is *internal* to the implementation — the sharded task tracker
/// takes one shard lock per call (and one per shard per block for
/// [`Tracker::complete_block`]) while the batch baseline keeps its single
/// queue lock — so callers never serialise on a global tracker mutex.
/// `complete` returns the finished record so callers (the live-sync
/// pipeline) can publish it without a second lookup.
trait Tracker: Send + Sync {
    fn insert(&self, id: TxId, client: u32, server: u32, start: Duration);
    fn complete(&self, id: &TxId, end: Duration, ok: bool) -> Option<TxRecord>;
    /// Matches a whole sealed block, appending every record that
    /// completed to `out`. The sharded tracker groups the entries by
    /// shard and locks each shard once per block.
    fn complete_block(&self, entries: &[(TxId, bool)], end: Duration, out: &mut Vec<TxRecord>);
    /// Submission-side abandonment: the retry loop gave up on a
    /// transaction ([`TxStatus::Dropped`] / [`TxStatus::Expired`]) that
    /// therefore never reached the chain.
    fn abandon(&self, id: &TxId, end: Duration, status: TxStatus) -> bool;
    /// Terminal rejection: the record completes as failed *and* the id
    /// joins the rejected set under one lock (the pre-sharding driver
    /// took two global locks here).
    fn reject(&self, id: &TxId, end: Duration);
    fn pending(&self) -> usize;
    fn index_stats(&self) -> Option<crate::index::IndexStats> {
        None
    }
    /// A consistent point-in-time copy of every record (pending included)
    /// plus the rejected-id set, for checkpointing. The sharded tracker
    /// holds all shard locks while copying, so the view is identical to a
    /// single-table snapshot.
    fn snapshot(&self) -> (Vec<TxRecord>, Vec<TxId>);
    /// Resume path: replays a checkpointed rejected-id set.
    fn restore_rejected(&self, ids: &[TxId]);
    /// Drains the tracker at end of run: every record plus the combined
    /// rejected-id set.
    fn finish(&self) -> (Vec<TxRecord>, HashSet<TxId>);
}

impl Tracker for crate::shard::ShardedTxTable {
    fn insert(&self, id: TxId, client: u32, server: u32, start: Duration) {
        crate::shard::ShardedTxTable::insert(self, id, client, server, start);
    }
    fn complete(&self, id: &TxId, end: Duration, ok: bool) -> Option<TxRecord> {
        crate::shard::ShardedTxTable::complete(self, id, end, ok)
    }
    fn complete_block(&self, entries: &[(TxId, bool)], end: Duration, out: &mut Vec<TxRecord>) {
        crate::shard::ShardedTxTable::complete_block(self, entries, end, out);
    }
    fn abandon(&self, id: &TxId, end: Duration, status: TxStatus) -> bool {
        crate::shard::ShardedTxTable::abandon(self, id, end, status)
    }
    fn reject(&self, id: &TxId, end: Duration) {
        crate::shard::ShardedTxTable::reject(self, id, end);
    }
    fn pending(&self) -> usize {
        crate::shard::ShardedTxTable::pending(self)
    }
    fn index_stats(&self) -> Option<crate::index::IndexStats> {
        Some(self.stats())
    }
    fn snapshot(&self) -> (Vec<TxRecord>, Vec<TxId>) {
        crate::shard::ShardedTxTable::snapshot(self)
    }
    fn restore_rejected(&self, ids: &[TxId]) {
        crate::shard::ShardedTxTable::restore_rejected(self, ids);
    }
    fn finish(&self) -> (Vec<TxRecord>, HashSet<TxId>) {
        self.drain()
    }
}

/// The Blockbench-style baseline behind the same internally-locked
/// interface: one mutex around the unconfirmed queue (the O(n·m) scan is
/// the point of the baseline) plus its rejected-id set.
struct BatchTracker {
    queue: Mutex<BatchQueue>,
    rejected: Mutex<HashSet<TxId>>,
}

impl BatchTracker {
    fn new() -> Self {
        BatchTracker {
            queue: Mutex::new(BatchQueue::new()),
            rejected: Mutex::new(HashSet::new()),
        }
    }
}

impl Tracker for BatchTracker {
    fn insert(&self, id: TxId, client: u32, server: u32, start: Duration) {
        self.queue.lock().insert(id, client, server, start);
    }
    fn complete(&self, id: &TxId, end: Duration, ok: bool) -> Option<TxRecord> {
        let mut queue = self.queue.lock();
        if queue.complete(id, end, ok) {
            queue.records().last().cloned()
        } else {
            None
        }
    }
    fn complete_block(&self, entries: &[(TxId, bool)], end: Duration, out: &mut Vec<TxRecord>) {
        let mut queue = self.queue.lock();
        for (id, ok) in entries {
            if queue.complete(id, end, *ok) {
                out.extend(queue.records().last().cloned());
            }
        }
    }
    fn abandon(&self, id: &TxId, end: Duration, status: TxStatus) -> bool {
        self.queue.lock().abandon(id, end, status)
    }
    fn reject(&self, id: &TxId, end: Duration) {
        let mut queue = self.queue.lock();
        let _ = queue.complete(id, end, false);
        self.rejected.lock().insert(*id);
    }
    fn pending(&self) -> usize {
        self.queue.lock().pending()
    }
    /// Completed records only: the unconfirmed queue is not included, so
    /// the batch baseline does not support checkpoint/resume (recoverable
    /// runs are restricted to task processing).
    fn snapshot(&self) -> (Vec<TxRecord>, Vec<TxId>) {
        (
            self.queue.lock().records().to_vec(),
            self.rejected.lock().iter().copied().collect(),
        )
    }
    fn restore_rejected(&self, ids: &[TxId]) {
        self.rejected.lock().extend(ids.iter().copied());
    }
    fn finish(&self) -> (Vec<TxRecord>, HashSet<TxId>) {
        let mut queue = self.queue.lock();
        queue.timeout_pending();
        (
            queue.records().to_vec(),
            std::mem::take(&mut self.rejected.lock()),
        )
    }
}

/// Internal: the stall watchdog the monitors consult once per cycle. A
/// run is stalled when its activity signature — submissions, retries,
/// pending count, and the chain's sealed-block progress mark — has not
/// changed for the configured budget of simulated time while work is
/// still pending. On detection it journals a [`hammer_obs::EventKind::Stalled`]
/// event and raises the abort flag so the whole run winds down with a
/// complete report instead of hanging until the drain deadline.
struct StallWatchdog<'a> {
    budget: Duration,
    probe: Arc<dyn SimChain>,
    submitted: &'a AtomicU64,
    retried: &'a AtomicU64,
    abort: &'a AtomicBool,
    stalled: &'a AtomicBool,
    last_sig: (u64, u64, u64, u64),
    last_change: Duration,
}

impl StallWatchdog<'_> {
    /// Returns `true` when the run is stalled and the monitor must exit.
    fn check(&mut self, now: Duration, pending: usize, journal: &hammer_obs::Journal) -> bool {
        let sig = (
            self.submitted.load(Ordering::Relaxed),
            self.retried.load(Ordering::Relaxed),
            pending as u64,
            self.probe.progress_mark(),
        );
        if sig != self.last_sig || pending == 0 {
            self.last_sig = sig;
            self.last_change = now;
            return false;
        }
        if now.saturating_sub(self.last_change) < self.budget {
            return false;
        }
        journal.stalled(now, "driver", self.budget, pending as u64);
        self.stalled.store(true, Ordering::Release);
        self.abort.store(true, Ordering::Release);
        true
    }
}

/// Internal: periodic checkpointing plus the cooperative kill switch,
/// owned by the polling monitor of a recoverable run.
struct CheckpointCtx<'a> {
    store: Arc<KvStore>,
    key: String,
    interval: Duration,
    next_at: Duration,
    kill_at: Option<Duration>,
    killed: &'a AtomicBool,
    abort: &'a AtomicBool,
    retried: &'a AtomicU64,
    workload_seed: u64,
    total: u64,
}

impl CheckpointCtx<'_> {
    /// Returns `true` when the kill switch fired: the monitor must exit
    /// *without* writing a further checkpoint — everything after the last
    /// periodic snapshot is lost, exactly as in a real crash.
    fn observe(
        &mut self,
        now: Duration,
        tracker: &dyn Tracker,
        last_seen: &[u64],
        shard_commits: &Mutex<std::collections::BTreeMap<u32, usize>>,
    ) -> bool {
        if let Some(kill_at) = self.kill_at {
            if now >= kill_at {
                self.killed.store(true, Ordering::Release);
                self.abort.store(true, Ordering::Release);
                return true;
            }
        }
        if now < self.next_at {
            return false;
        }
        while self.next_at <= now {
            self.next_at += self.interval;
        }
        // One call snapshots records *and* rejected ids: the tracker
        // updates both under the same shard lock on rejection and holds
        // every shard lock while copying, so the pair is consistent —
        // a rejection visible in the records always has its id here.
        let (records, rejected_ids) = tracker.snapshot();
        let checkpoint = DriverCheckpoint {
            workload_seed: self.workload_seed,
            total: self.total,
            retried: self.retried.load(Ordering::Relaxed),
            last_seen: last_seen.to_vec(),
            shard_commits: shard_commits
                .lock()
                .iter()
                .map(|(shard, n)| (*shard, *n as u64))
                .collect(),
            rejected_ids,
            records,
        };
        self.store.set(&self.key, checkpoint.to_bytes());
        false
    }
}

/// The evaluation orchestrator.
#[derive(Clone, Debug)]
pub struct Evaluation {
    config: EvalConfig,
}

impl Evaluation {
    /// Creates an evaluation with the given driver configuration.
    pub fn new(config: EvalConfig) -> Self {
        Evaluation { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Runs the full preparation → execution → report flow.
    pub fn run(
        &self,
        deployment: &Deployment,
        workload: &WorkloadConfig,
        control: &ControlSequence,
    ) -> Result<EvalReport, EvalError> {
        self.run_inner(deployment, workload, control, None)
    }

    /// Runs like [`Evaluation::run`], but periodically snapshots the
    /// driver's state (tracker records, counters, monitor heights) into
    /// `recovery.store`. If a checkpoint for `recovery.run_id` already
    /// exists there, the run *resumes* from it instead of starting over:
    /// checkpointed transactions are filtered out of the signed stream,
    /// the tracker and counters are restored, and the monitor rescans the
    /// chain from the checkpointed block heights — so a driver killed
    /// mid-run picks up where its last snapshot left off and the final
    /// report accounts for every transaction exactly once. The checkpoint
    /// is deleted when the run completes.
    ///
    /// Restricted to [`TestingMode::TaskProcessing`] without live sync:
    /// the batch baseline's unconfirmed queue and the interactive mode's
    /// event subscription are not snapshot-able, and the KV→table
    /// pipeline would double-publish restored rows.
    pub fn run_recoverable(
        &self,
        deployment: &Deployment,
        workload: &WorkloadConfig,
        control: &ControlSequence,
        recovery: &RecoveryConfig,
    ) -> Result<EvalReport, EvalError> {
        if self.config.mode != TestingMode::TaskProcessing {
            return Err(EvalError::InvalidConfig(
                "recoverable runs require TestingMode::TaskProcessing".to_owned(),
            ));
        }
        if self.config.live_sync {
            return Err(EvalError::InvalidConfig(
                "recoverable runs cannot use live_sync".to_owned(),
            ));
        }
        if recovery.interval.is_zero() {
            return Err(EvalError::InvalidConfig(
                "checkpoint interval must be positive".to_owned(),
            ));
        }
        self.run_inner(deployment, workload, control, Some(recovery))
    }

    fn run_inner(
        &self,
        deployment: &Deployment,
        workload: &WorkloadConfig,
        control: &ControlSequence,
        recovery: Option<&RecoveryConfig>,
    ) -> Result<EvalReport, EvalError> {
        let wall_start = std::time::Instant::now();
        self.config
            .machine
            .validate()
            .map_err(EvalError::InvalidConfig)?;
        workload
            .validate()
            .map_err(|e| EvalError::InvalidConfig(e.to_string()))?;
        if control.is_empty() || control.total() == 0 {
            return Err(EvalError::InvalidConfig(
                "control sequence has no budget".to_owned(),
            ));
        }
        if self.config.poll_interval.is_zero() {
            return Err(EvalError::InvalidConfig(
                "poll_interval must be positive".to_owned(),
            ));
        }
        if self.config.stall_budget.is_some_and(|b| b.is_zero()) {
            return Err(EvalError::InvalidConfig(
                "stall_budget must be positive".to_owned(),
            ));
        }
        self.config
            .retry
            .validate()
            .map_err(EvalError::InvalidConfig)?;
        if self.config.retry.enabled() {
            // A transaction's retry budget may not outlive the slice that
            // paid for it: a deadline beyond the slice length would let
            // stragglers steal the next slice's budget.
            let deadline = self
                .config
                .retry
                .deadline
                .unwrap_or_else(|| control.slice_duration());
            if deadline > control.slice_duration() {
                return Err(EvalError::InvalidConfig(format!(
                    "retry deadline ({deadline:?}) exceeds the control slice length ({:?})",
                    control.slice_duration()
                )));
            }
        }

        let chain = deployment.client();
        let clock = deployment.clock().clone();
        let dobs = DriverObs::new(deployment.net().obs());

        // Crash recovery: adopt any prior checkpoint for this run id. A
        // checkpoint taken under a different workload or control sequence
        // would resume into a different run — refuse it.
        let checkpoint = recovery.and_then(|r| DriverCheckpoint::load(&r.store, &r.run_id));
        if let Some(cp) = &checkpoint {
            if cp.workload_seed != workload.seed || cp.total != control.total() {
                return Err(EvalError::InvalidConfig(format!(
                    "checkpoint was taken under a different run (seed {} total {}, \
                     this run has seed {} total {})",
                    cp.workload_seed,
                    cp.total,
                    workload.seed,
                    control.total()
                )));
            }
            if cp.last_seen.len() != chain.architecture().shard_count() as usize {
                return Err(EvalError::InvalidConfig(
                    "checkpoint was taken against a chain with a different shard count".to_owned(),
                ));
            }
        }

        // ---- Preparation (Fig. 3, steps 1-3) ----
        let total = control.total() as usize;
        let mut generation_config = workload.clone();
        generation_config.total_txs = total;

        let gen_start = clock.now();
        let unsigned: Vec<Transaction> = match workload.kind {
            WorkloadKind::SmallBank => {
                let mut generator = SmallBankGenerator::new(generation_config);
                for account in generator.accounts() {
                    deployment.seed_account(
                        *account,
                        workload.initial_checking,
                        workload.initial_savings,
                    );
                }
                generator.generate_all()
            }
            WorkloadKind::Ycsb => YcsbGenerator::new(generation_config).generate_all(),
        };
        if dobs.on() && !unsigned.is_empty() {
            // Generation is a batch phase; attribute its cost evenly so the
            // span count matches the transaction count.
            let per_tx = clock.now().saturating_sub(gen_start) / unsigned.len().max(1) as u32;
            for _ in 0..unsigned.len() {
                dobs.obs.spans().record(Stage::Generated, per_tx);
            }
        }

        let keypair = Keypair::from_seed(workload.seed);
        let sign_obs = signer::SignObs::new(&dobs.obs, &clock);
        let signed_rx: Receiver<SignedTransaction> = match self.config.signing {
            SigningStrategy::Pipelined => signer::sign_pipelined_obs(
                unsigned,
                keypair,
                self.config.sig_params,
                self.config.signer_threads,
                sign_obs,
            ),
            SigningStrategy::Serial | SigningStrategy::Async => {
                let signed = match self.config.signing {
                    SigningStrategy::Serial => signer::sign_serial_obs(
                        unsigned,
                        &keypair,
                        &self.config.sig_params,
                        &sign_obs,
                    ),
                    _ => signer::sign_async_obs(
                        unsigned,
                        &keypair,
                        &self.config.sig_params,
                        self.config.signer_threads,
                        &sign_obs,
                    ),
                };
                let (tx_side, rx) = bounded(signed.len().max(1));
                for tx in signed {
                    tx_side.send(tx).expect("channel sized for batch");
                }
                rx
            }
        };

        // ---- Execution (Fig. 3, steps 4-6) ----
        let workers = (workload.clients * workload.threads_per_client).max(1);
        // Contention is per client machine: each client's threads share
        // that client's vCPUs (the paper's clients are separate 2-vCPU
        // instances). Caliper-style interactive testing runs an event
        // listener in every client process, adding one contender.
        let active_threads = match self.config.mode {
            TestingMode::Interactive => workload.threads_per_client + 1,
            _ => workload.threads_per_client,
        };
        // Auto shard count: one per available core, capped — more shards
        // than threads only shrinks the per-shard index.
        let shards = self.config.tracker_shards.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(256)
        });
        let tracker: Arc<dyn Tracker> = match self.config.mode {
            TestingMode::BatchBaseline => Arc::new(BatchTracker::new()),
            _ => Arc::new(crate::shard::ShardedTxTable::new(shards, total)),
        };
        let submitted = AtomicU64::new(0);
        let rejected = AtomicU64::new(0);
        let retried = AtomicU64::new(0);
        let done_submitting = AtomicBool::new(false);
        let drain_deadline: Mutex<Option<Duration>> = Mutex::new(None);
        // Graceful-abort plumbing: the stall watchdog and the kill switch
        // raise `abort`; the pacer and the workers poll it and wind down,
        // leaving in-flight transactions to be reported as timed out.
        let abort = AtomicBool::new(false);
        let stalled = AtomicBool::new(false);
        let killed = AtomicBool::new(false);

        // Interactive mode must subscribe before anything commits.
        let events_rx = match self.config.mode {
            TestingMode::Interactive => Some(chain.subscribe_commits()),
            _ => None,
        };

        // Fig. 2 Redis→MySQL pipeline (steps 4-6), when enabled: statuses
        // flow through per-server KV lists into the Performance table via
        // a background merger.
        let chain_name_for_sync = chain.chain_name().to_owned();
        let kv = Arc::new(KvStore::new());
        let live_table = Arc::new(TableStore::new());
        let merger_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let server_ids: Vec<u32> = (0..workload.threads_per_client.max(1)).collect();
        let merger = if self.config.live_sync {
            let kv = Arc::clone(&kv);
            let table = Arc::clone(&live_table);
            let stop = Arc::clone(&merger_stop);
            let ids = server_ids.clone();
            let name = chain_name_for_sync.clone();
            Some(
                std::thread::Builder::new()
                    .name("hammer-merger".to_owned())
                    .spawn(move || {
                        run_merger(&kv, &table, &name, &ids, Duration::from_millis(5), &stop)
                    })
                    .expect("spawn merger"),
            )
        } else {
            None
        };
        let syncer = self
            .config
            .live_sync
            .then(|| StatusSyncer::new(Arc::clone(&kv), 0));
        let shard_commits: Arc<Mutex<std::collections::BTreeMap<u32, usize>>> =
            Arc::new(Mutex::new(std::collections::BTreeMap::new()));

        // Resume: replay the checkpointed records into the fresh tracker
        // and restore the counters. Terminal records are settled as they
        // were; pending ones stay pending — workers are never interrupted
        // mid-transaction, so every checkpointed record was already handed
        // to the chain, and the monitor's rescan (from the checkpointed
        // heights) re-observes their commits. `submitted` is derived from
        // the record count rather than checkpointed separately: the two
        // are updated by workers without a common lock, so only the
        // records are authoritative.
        let mut initial_last_seen: Option<Vec<u64>> = None;
        let mut known_ids: HashSet<TxId> = HashSet::new();
        if let Some(cp) = &checkpoint {
            let tracker = &*tracker;
            let restored_rejected: HashSet<TxId> = cp.rejected_ids.iter().copied().collect();
            for record in &cp.records {
                known_ids.insert(record.tx_id);
                tracker.insert(
                    record.tx_id,
                    record.client_id,
                    record.server_id,
                    record.start,
                );
                let end = record.end.unwrap_or(record.start);
                match record.status {
                    TxStatus::Pending if restored_rejected.contains(&record.tx_id) => {
                        // The rejection landed in the id set but its
                        // record completion was lost to the crash.
                        let _ = tracker.complete(&record.tx_id, record.start, false);
                    }
                    TxStatus::Pending => {}
                    TxStatus::Committed => {
                        let _ = tracker.complete(&record.tx_id, end, true);
                    }
                    TxStatus::Failed => {
                        let _ = tracker.complete(&record.tx_id, end, false);
                    }
                    status @ (TxStatus::TimedOut | TxStatus::Dropped | TxStatus::Expired) => {
                        let _ = tracker.abandon(&record.tx_id, end, status);
                    }
                }
            }
            submitted.store(cp.records.len() as u64, Ordering::Relaxed);
            rejected.store(cp.rejected_ids.len() as u64, Ordering::Relaxed);
            retried.store(cp.retried, Ordering::Relaxed);
            tracker.restore_rejected(&cp.rejected_ids);
            *shard_commits.lock() = cp
                .shard_commits
                .iter()
                .map(|(shard, n)| (*shard, *n as usize))
                .collect();
            initial_last_seen = Some(cp.last_seen.clone());
        }
        // Transactions the checkpoint already owns are filtered out of
        // the signed stream so the resumed workers only process the rest.
        let signed_rx = if checkpoint.is_some() {
            let known = std::mem::take(&mut known_ids);
            let upstream = signed_rx;
            let (filtered_tx, filtered_rx) = bounded(1024);
            std::thread::Builder::new()
                .name("hammer-resume-filter".to_owned())
                .spawn(move || {
                    for tx in upstream.iter() {
                        if known.contains(&tx.id) {
                            continue;
                        }
                        if filtered_tx.send(tx).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn resume filter");
            filtered_rx
        } else {
            signed_rx
        };

        // Per-slice budget tokens.
        let (token_tx, token_rx) = bounded::<()>((control.peak() as usize).max(1) * 2 + 16);

        std::thread::scope(|scope| {
            // Pacer: releases each slice's budget on the simulated clock.
            let pacer_clock = clock.clone();
            let pacer_control = control.clone();
            let pacer_abort = &abort;
            scope.spawn(move || {
                for i in 0..pacer_control.len() {
                    // On abort, returning drops the sender, which wakes
                    // any worker blocked on the token stream.
                    if pacer_abort.load(Ordering::Acquire) {
                        return;
                    }
                    for _ in 0..pacer_control.budget(i) {
                        if token_tx.send(()).is_err() {
                            return;
                        }
                    }
                    pacer_clock.sleep(pacer_control.slice_duration());
                }
                // Dropping the sender ends the token stream.
            });

            // Submission workers.
            let retry = self.config.retry;
            let retry_deadline = retry.deadline.unwrap_or_else(|| control.slice_duration());
            let mut worker_handles = Vec::new();
            for _ in 0..workers {
                let token_rx = token_rx.clone();
                let signed_rx = signed_rx.clone();
                let chain = Arc::clone(&chain);
                let clock = clock.clone();
                let tracker = Arc::clone(&tracker);
                let submitted = &submitted;
                let rejected = &rejected;
                let retried = &retried;
                let machine = self.config.machine;
                let dobs = dobs.clone();
                let abort = &abort;
                worker_handles.push(scope.spawn(move || {
                    // Pace by absolute schedule: each worker may submit at
                    // most once per submit_delay of simulated time. An
                    // absolute deadline self-corrects when the host
                    // deschedules the thread (single-core hosts).
                    let mut next_allowed = clock.now();
                    loop {
                        if abort.load(Ordering::Acquire) {
                            return; // stall watchdog or kill switch fired
                        }
                        if token_rx.recv().is_err() {
                            return; // control sequence exhausted
                        }
                        let tx = match signed_rx.recv() {
                            Ok(tx) => tx,
                            Err(_) => return, // workload exhausted
                        };
                        // Client-machine cost of preparing this submission.
                        clock.sleep_until(next_allowed);
                        next_allowed =
                            clock.now().max(next_allowed) + machine.submit_delay(active_threads);
                        let id = tx.id;
                        let client_id = tx.tx.client_id;
                        let server_id = tx.tx.server_id;
                        let start = clock.now();
                        // Register before submitting so a fast commit can
                        // never race past the tracker.
                        tracker.insert(id, client_id, server_id, start);
                        submitted.fetch_add(1, Ordering::Relaxed);
                        dobs.submitted.inc();
                        if !retry.enabled() {
                            // One-shot path, identical to the pre-fault
                            // driver (no clone, no policy consultation).
                            if let Err(e) = chain.submit(tx) {
                                reject_submission(&*tracker, rejected, &id, start, &e);
                            } else if dobs.on() {
                                dobs.obs
                                    .spans()
                                    .record(Stage::Submitted, clock.now().saturating_sub(start));
                            }
                            continue;
                        }
                        // Resilient path: retry transient failures under
                        // the attempt budget and the per-slice deadline.
                        // All decisions go through the error taxonomy
                        // (ErrorKind via is_retryable), never variants.
                        let give_up_at = start + retry_deadline;
                        let mut attempt = 0u32;
                        loop {
                            if abort.load(Ordering::Acquire) {
                                // Graceful abort mid-retry: the record
                                // stays pending and reports as timed out.
                                return;
                            }
                            match chain.submit(tx.clone()) {
                                Ok(_) => {
                                    if dobs.on() {
                                        dobs.obs.spans().record(
                                            Stage::Submitted,
                                            clock.now().saturating_sub(start),
                                        );
                                    }
                                    break;
                                }
                                Err(e) if e.is_retryable() => {
                                    if dobs.on()
                                        && attempt == 0
                                        && e.kind() == ErrorKind::Backpressure
                                    {
                                        // Journal each backpressure episode
                                        // once (at its first attempt), not
                                        // once per retry.
                                        dobs.obs.journal().backpressure(
                                            clock.now(),
                                            &format!("client-{client_id}"),
                                            &e.to_string(),
                                        );
                                    }
                                    // All retry arithmetic goes through
                                    // the policy's pure decision function,
                                    // so tests can replay the exact worker
                                    // behaviour without a chain.
                                    match retry.decide(
                                        attempt,
                                        id.fingerprint(),
                                        clock.now(),
                                        give_up_at,
                                    ) {
                                        RetryDecision::Drop => {
                                            let _ = tracker.abandon(
                                                &id,
                                                clock.now(),
                                                TxStatus::Dropped,
                                            );
                                            dobs.obs.journal().retry_exhausted(
                                                clock.now(),
                                                &format!("client-{client_id}"),
                                                "dropped",
                                                attempt as u64,
                                            );
                                            break;
                                        }
                                        RetryDecision::Expire => {
                                            let _ = tracker.abandon(
                                                &id,
                                                clock.now(),
                                                TxStatus::Expired,
                                            );
                                            dobs.obs.journal().retry_exhausted(
                                                clock.now(),
                                                &format!("client-{client_id}"),
                                                "expired",
                                                attempt as u64,
                                            );
                                            break;
                                        }
                                        RetryDecision::Retry(pause) => {
                                            clock.sleep(pause);
                                            attempt += 1;
                                            retried.fetch_add(1, Ordering::Relaxed);
                                            dobs.retried.inc();
                                            if dobs.on() {
                                                dobs.obs.spans().record(Stage::Retried, pause);
                                            }
                                        }
                                    }
                                }
                                Err(e) => {
                                    reject_submission(&*tracker, rejected, &id, start, &e);
                                    break;
                                }
                            }
                        }
                    }
                }));
            }
            drop(token_rx);
            drop(signed_rx);

            // Monitor.
            let monitor_chain = Arc::clone(&chain);
            let monitor_clock = clock.clone();
            let monitor_tracker = Arc::clone(&tracker);
            let done = &done_submitting;
            let deadline = &drain_deadline;
            let mode = self.config.mode;
            let poll_interval = self.config.poll_interval;
            let listen_cost = self.config.listen_cost;
            let event_buffer = self.config.event_buffer;
            let machine = self.config.machine;
            let monitor_syncer = syncer.clone();
            let monitor_shards = Arc::clone(&shard_commits);
            let monitor_dobs = dobs.clone();
            // The monitor owns fault-transition journaling: it polls the
            // network's fault plan each cycle and journals enter/exit edges.
            let fault_observer = dobs.on().then(|| FaultObserver::new(deployment.net()));
            let watchdog = self.config.stall_budget.map(|budget| StallWatchdog {
                budget,
                probe: Arc::clone(deployment.chain()),
                submitted: &submitted,
                retried: &retried,
                abort: &abort,
                stalled: &stalled,
                last_sig: (0, 0, 0, 0),
                last_change: clock.now(),
            });
            let checkpoint_ctx = recovery.map(|r| CheckpointCtx {
                store: Arc::clone(&r.store),
                key: checkpoint_key(&r.run_id),
                interval: r.interval,
                next_at: clock.now() + r.interval,
                kill_at: r.kill_at,
                killed: &killed,
                abort: &abort,
                retried: &retried,
                workload_seed: workload.seed,
                total: control.total(),
            });
            let monitor_last_seen = initial_last_seen.take();
            let monitor = scope.spawn(move || match mode {
                TestingMode::Interactive => {
                    let rx = events_rx.expect("subscribed above");
                    interactive_monitor(
                        rx,
                        monitor_clock,
                        monitor_tracker,
                        done,
                        deadline,
                        listen_cost,
                        event_buffer,
                        machine,
                        active_threads,
                        monitor_syncer,
                        monitor_shards,
                        monitor_dobs,
                        fault_observer,
                        watchdog,
                    );
                }
                _ => {
                    polling_monitor(
                        monitor_chain,
                        monitor_clock,
                        monitor_tracker,
                        done,
                        deadline,
                        poll_interval,
                        mode,
                        monitor_syncer,
                        monitor_shards,
                        monitor_dobs,
                        fault_observer,
                        watchdog,
                        checkpoint_ctx,
                        monitor_last_seen,
                    );
                }
            });

            for handle in worker_handles {
                handle.join().expect("submission worker panicked");
            }
            *drain_deadline.lock() = Some(clock.now() + self.config.drain_timeout);
            done_submitting.store(true, Ordering::Release);
            monitor.join().expect("monitor panicked");
        });

        if killed.load(Ordering::Acquire) {
            // Simulated crash: no report. The last periodic checkpoint
            // stays in the store for the next run_recoverable call.
            return Err(EvalError::Killed);
        }

        // ---- Report (Fig. 3, step 7) ----
        let index_stats = tracker.index_stats();
        let (mut records, rejected_ids) = tracker.finish();
        // Anything still pending after the drain deadline timed out.
        for record in &mut records {
            if record.status == TxStatus::Pending {
                record.status = TxStatus::TimedOut;
            }
        }

        let chain_name = chain.chain_name().to_owned();
        let mut synced_rows = 0usize;
        let table = if self.config.live_sync {
            // Flush the stragglers (timed-out / rejected-adjacent records
            // never produced a completion event) through the same
            // pipeline, then stop the merger and adopt its table.
            if let Some(syncer) = &syncer {
                for r in records
                    .iter()
                    .filter(|r| !rejected_ids.contains(&r.tx_id))
                    .filter(|r| {
                        matches!(
                            r.status,
                            TxStatus::TimedOut | TxStatus::Dropped | TxStatus::Expired
                        )
                    })
                {
                    syncer.publish(&record_to_status(r));
                }
            }
            merger_stop.store(true, Ordering::Release);
            if let Some(handle) = merger {
                synced_rows = handle.join().expect("merger panicked");
            }
            Arc::try_unwrap(live_table).unwrap_or_else(|arc| {
                // The merger has exited; any remaining Arc clones are gone.
                TableStore::new_from_rows(arc.all_rows())
            })
        } else {
            merger_stop.store(true, Ordering::Release);
            if let Some(handle) = merger {
                handle.join().expect("merger panicked");
            }
            let table = TableStore::new();
            table.insert_batch(
                records
                    .iter()
                    .filter(|r| !rejected_ids.contains(&r.tx_id))
                    .map(|r| PerfRow {
                        tx_id: r.tx_id.fingerprint(),
                        client_id: r.client_id,
                        server_id: r.server_id,
                        chain: chain_name.clone(),
                        start_time: r.start,
                        end_time: r.end,
                        outcome: status_to_outcome(r.status),
                    })
                    .collect(),
            );
            table
        };

        let committed = records
            .iter()
            .filter(|r| r.status == TxStatus::Committed)
            .count();
        let failed = records
            .iter()
            .filter(|r| r.status == TxStatus::Failed && !rejected_ids.contains(&r.tx_id))
            .count();
        let timed_out = records
            .iter()
            .filter(|r| r.status == TxStatus::TimedOut)
            .count();
        let dropped = records
            .iter()
            .filter(|r| r.status == TxStatus::Dropped)
            .count();
        let expired = records
            .iter()
            .filter(|r| r.status == TxStatus::Expired)
            .count();

        let per_shard_committed: Vec<(u32, usize)> = shard_commits
            .lock()
            .iter()
            .map(|(shard, count)| (*shard, *count))
            .collect();
        let first_start = records.iter().map(|r| r.start).min().unwrap_or_default();
        let last_end = records
            .iter()
            .filter_map(|r| r.end)
            .max()
            .unwrap_or(first_start);
        let fault_windows = fault_window_stats(
            deployment.net().fault_plan().as_deref(),
            &records,
            first_start,
            last_end,
        );

        // A recoverable run that reached its report is finished: a later
        // run under the same id starts fresh.
        if let Some(r) = recovery {
            r.store.del(&checkpoint_key(&r.run_id));
        }

        Ok(EvalReport {
            chain: chain_name,
            submitted: submitted.load(Ordering::Relaxed),
            rejected: rejected.load(Ordering::Relaxed),
            retried: retried.load(Ordering::Relaxed),
            dropped,
            expired,
            committed,
            failed,
            timed_out,
            overall_tps: table.overall_tps(),
            latency: table.latency_summary(),
            tps_series: table.tps_series(Duration::from_secs(1)),
            per_client_committed: table.per_client_committed(),
            per_shard_committed,
            sim_duration: last_end.saturating_sub(first_start),
            wall_time: wall_start.elapsed(),
            synced_rows,
            index_stats,
            fault_windows,
            stalled: stalled.load(Ordering::Acquire),
            records,
        })
    }
}

/// Canonical mapping from the submission-error taxonomy to the terminal
/// row outcome the driver records for a transaction the SUT refused.
///
/// This is the one place a [`ChainError`] becomes a [`RowOutcome`]: both
/// submit paths (the one-shot fast path and the resilient path's
/// non-retryable arm) route through it via their shared rejection site,
/// and scenario-layer evidence strings use it to label refusals. The
/// match is exhaustive over [`ErrorKind`] so a new kind forces a mapping
/// decision here instead of at scattered call sites.
pub fn outcome_of(err: &ChainError) -> RowOutcome {
    match err.kind() {
        // The SUT says the transaction can never succeed (bad signature,
        // duplicate, unknown shard): an invalid-transaction failure.
        ErrorKind::Fatal => RowOutcome::Failed,
        // Retryable kinds reach a terminal mapping only when no retry
        // budget applies (retries disabled, or the policy already spent
        // its attempts); the refusal is recorded as a failure, not a
        // timeout — the SUT answered, it just said no.
        ErrorKind::Transient | ErrorKind::Backpressure => RowOutcome::Failed,
        // `ErrorKind` is non-exhaustive: unknown future kinds fall back
        // to the failure row rather than silently vanishing.
        _ => RowOutcome::Failed,
    }
}

/// The single terminal-rejection site shared by both submit paths:
/// counts the rejection and records the row under [`outcome_of`]'s
/// canonical mapping.
fn reject_submission(
    tracker: &dyn Tracker,
    rejected: &AtomicU64,
    id: &TxId,
    start: Duration,
    err: &ChainError,
) {
    rejected.fetch_add(1, Ordering::Relaxed);
    // `Tracker::reject` completes the record as a failed row and retires
    // the id in one shard-lock acquisition — exactly what `outcome_of`
    // prescribes today. Extend the tracker before extending the mapping.
    debug_assert!(
        matches!(outcome_of(err), RowOutcome::Failed),
        "Tracker::reject records Failed; outcome_of now maps {:?} elsewhere",
        err.kind()
    );
    tracker.reject(id, start);
}

/// Maps a tracker status to a Performance-table outcome. `Pending` is
/// defensively mapped to `TimedOut`: the report path converts all pending
/// records before rows are built.
fn status_to_outcome(status: TxStatus) -> RowOutcome {
    match status {
        TxStatus::Committed => RowOutcome::Committed,
        TxStatus::Failed => RowOutcome::Failed,
        TxStatus::Dropped => RowOutcome::Dropped,
        TxStatus::Expired => RowOutcome::Expired,
        TxStatus::TimedOut | TxStatus::Pending => RowOutcome::TimedOut,
    }
}

/// Computes the per-fault-window TPS breakdown: one entry per window of
/// the installed plan, plus a `nominal` entry over the run time outside
/// every window. Empty when no plan is installed (so fault-free reports
/// are unchanged). Overlapping windows each count commits independently;
/// the nominal entry subtracts each window's overlap with the run span,
/// so heavily-overlapping plans can undercount its duration.
fn fault_window_stats(
    plan: Option<&hammer_net::FaultPlan>,
    records: &[TxRecord],
    first_start: Duration,
    last_end: Duration,
) -> Vec<FaultWindowStats> {
    let Some(plan) = plan else {
        return Vec::new();
    };
    if plan.is_empty() {
        return Vec::new();
    }
    let commits: Vec<Duration> = records
        .iter()
        .filter(|r| r.status == TxStatus::Committed)
        .filter_map(|r| r.end)
        .collect();
    let mut stats: Vec<FaultWindowStats> = plan
        .windows()
        .iter()
        .map(|w| {
            let committed = commits
                .iter()
                .filter(|&&end| end >= w.start && end < w.end)
                .count();
            let secs = w.duration().as_secs_f64();
            FaultWindowStats {
                label: w.label.clone(),
                start: w.start,
                end: w.end,
                committed,
                tps: if secs > 0.0 {
                    committed as f64 / secs
                } else {
                    0.0
                },
            }
        })
        .collect();
    let outside = commits
        .iter()
        .filter(|&&end| !plan.windows().iter().any(|w| end >= w.start && end < w.end))
        .count();
    let span = last_end.saturating_sub(first_start);
    let covered: Duration = plan
        .windows()
        .iter()
        .map(|w| w.end.min(last_end).saturating_sub(w.start.max(first_start)))
        .sum();
    let nominal = span.saturating_sub(covered).as_secs_f64();
    stats.push(FaultWindowStats {
        label: "nominal".to_owned(),
        start: first_start,
        end: last_end,
        committed: outside,
        tps: if nominal > 0.0 {
            outside as f64 / nominal
        } else {
            0.0
        },
    });
    stats
}

/// Converts a finished tracker record into a publishable status record.
fn record_to_status(record: &TxRecord) -> StatusRecord {
    StatusRecord {
        tx_fingerprint: record.tx_id.fingerprint(),
        client_id: record.client_id,
        server_id: record.server_id,
        start_ns: record.start.as_nanos() as u64,
        end_ns: record.end.map(|e| e.as_nanos() as u64).unwrap_or(u64::MAX),
        outcome: status_to_outcome(record.status),
    }
}

/// Batch-testing monitor shared by Hammer task processing and the
/// Blockbench baseline. The difference is the end-time source: Algorithm 1
/// records the *block* time; the baseline only knows the *poll* time.
#[allow(clippy::too_many_arguments)]
fn polling_monitor(
    chain: Arc<dyn BlockchainClient>,
    clock: hammer_net::SimClock,
    tracker: Arc<dyn Tracker>,
    done: &AtomicBool,
    deadline: &Mutex<Option<Duration>>,
    poll_interval: Duration,
    mode: TestingMode,
    syncer: Option<StatusSyncer>,
    shard_commits: Arc<Mutex<std::collections::BTreeMap<u32, usize>>>,
    dobs: DriverObs,
    mut fault_observer: Option<FaultObserver>,
    mut watchdog: Option<StallWatchdog<'_>>,
    mut checkpoint: Option<CheckpointCtx<'_>>,
    initial_last_seen: Option<Vec<u64>>,
) {
    let shards = chain.architecture().shard_count();
    let mut last_seen = initial_last_seen.unwrap_or_else(|| vec![0u64; shards as usize]);
    // Set once the drain deadline has passed: one last full scan runs so
    // blocks committed during the final poll window still match before
    // the stragglers are declared timed out.
    let mut final_pass = false;
    // Reused per-block scratch: the block's entries, and the records that
    // completed against them.
    let mut entries: Vec<(TxId, bool)> = Vec::new();
    let mut matched: Vec<TxRecord> = Vec::new();
    loop {
        for shard in 0..shards {
            let height = match chain.latest_height(shard) {
                Ok(h) => h,
                Err(_) => return,
            };
            while last_seen[shard as usize] < height {
                let next = last_seen[shard as usize] + 1;
                last_seen[shard as usize] = next;
                let block = match chain.block_at(shard, next) {
                    Ok(Some(b)) => b,
                    Ok(None) => continue,
                    Err(_) => return,
                };
                let end = match mode {
                    // Algorithm 1: block creation time is the end time.
                    TestingMode::TaskProcessing => block.header.timestamp,
                    // Batch baseline: the poll time stands in (ξ1 skew).
                    _ => clock.now(),
                };
                // Batched fan-out: collect the block's entries once, let
                // the tracker group them by shard and take each shard
                // lock once per block, then post-process the completed
                // records without holding any tracker lock.
                entries.clear();
                entries.extend(block.entries());
                matched.clear();
                tracker.complete_block(&entries, end, &mut matched);
                let mut committed_here = 0usize;
                for record in &matched {
                    if record.status == TxStatus::Committed {
                        committed_here += 1;
                    }
                    if dobs.on() {
                        dobs.obs
                            .spans()
                            .record(Stage::InBlock, end.saturating_sub(record.start));
                        dobs.obs
                            .spans()
                            .record(Stage::Matched, clock.now().saturating_sub(end));
                    }
                    if let Some(syncer) = &syncer {
                        syncer.publish(&record_to_status(record));
                        if dobs.on() {
                            dobs.obs
                                .spans()
                                .record(Stage::Recorded, clock.now().saturating_sub(record.start));
                        }
                    }
                }
                if committed_here > 0 {
                    *shard_commits.lock().entry(shard).or_insert(0) += committed_here;
                }
            }
        }
        if let Some(observer) = fault_observer.as_mut() {
            observer.poll();
        }
        if dobs.on() {
            dobs.pending.set(tracker.pending() as u64);
        }
        if let Some(ctx) = checkpoint.as_mut() {
            if ctx.observe(clock.now(), &*tracker, &last_seen, &shard_commits) {
                return; // killed: exit without a further snapshot
            }
        }
        if let Some(dog) = watchdog.as_mut() {
            // `pending()` sums across shards; the watchdog's activity
            // signature only needs the aggregate to detect a freeze.
            let pending = tracker.pending();
            if dog.check(clock.now(), pending, dobs.obs.journal()) {
                return; // stalled: the abort flag winds the run down
            }
        }
        if done.load(Ordering::Acquire) {
            let pending = tracker.pending();
            if pending == 0 {
                return;
            }
            if final_pass {
                return;
            }
            if let Some(d) = *deadline.lock() {
                if clock.now() >= d {
                    final_pass = true;
                    continue;
                }
            }
        }
        clock.sleep(poll_interval);
    }
}

/// Caliper-style per-event listener.
#[allow(clippy::too_many_arguments)]
fn interactive_monitor(
    rx: Receiver<hammer_chain::client::CommitEvent>,
    clock: hammer_net::SimClock,
    tracker: Arc<dyn Tracker>,
    done: &AtomicBool,
    deadline: &Mutex<Option<Duration>>,
    listen_cost: Duration,
    event_buffer: usize,
    machine: ClientMachine,
    active_threads: u32,
    syncer: Option<StatusSyncer>,
    shard_commits: Arc<Mutex<std::collections::BTreeMap<u32, usize>>>,
    dobs: DriverObs,
    mut fault_observer: Option<FaultObserver>,
    mut watchdog: Option<StallWatchdog<'_>>,
) {
    // The listener time-shares the client machine with the submitters.
    let share = (active_threads.max(1) as f64 / machine.vcpus.max(1) as f64).max(1.0);
    let per_event = listen_cost.mul_f64(share);
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(event) => {
                // A listener that has fallen behind by more than the SDK
                // buffer loses responses — transactions that actually
                // committed never get counted, which is exactly why
                // interactive frameworks under-report under heavy load
                // (paper §V-A).
                if rx.len() > event_buffer {
                    continue;
                }
                // Parsing/handling the response costs client CPU — the
                // resource wastage the paper attributes to interactive
                // testing under heavy load.
                clock.sleep(per_event);
                let record = tracker.complete(&event.tx_id, event.committed_at, event.success);
                if let Some(record) = record {
                    if event.success {
                        *shard_commits.lock().entry(event.shard).or_insert(0) += 1;
                    }
                    if dobs.on() {
                        dobs.obs.spans().record(
                            Stage::InBlock,
                            event.committed_at.saturating_sub(record.start),
                        );
                        dobs.obs.spans().record(
                            Stage::Matched,
                            clock.now().saturating_sub(event.committed_at),
                        );
                    }
                    if let Some(syncer) = &syncer {
                        syncer.publish(&record_to_status(&record));
                        if dobs.on() {
                            dobs.obs
                                .spans()
                                .record(Stage::Recorded, clock.now().saturating_sub(record.start));
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if let Some(observer) = fault_observer.as_mut() {
            observer.poll();
        }
        if dobs.on() {
            dobs.pending.set(tracker.pending() as u64);
        }
        if let Some(dog) = watchdog.as_mut() {
            let pending = tracker.pending();
            if dog.check(clock.now(), pending, dobs.obs.journal()) {
                return; // stalled: the abort flag winds the run down
            }
        }
        if done.load(Ordering::Acquire) {
            let pending = tracker.pending();
            if pending == 0 {
                return;
            }
            if let Some(d) = *deadline.lock() {
                if clock.now() >= d {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ChainSpec;
    use hammer_neuchain::NeuchainConfig;

    fn small_workload(total: usize) -> WorkloadConfig {
        WorkloadConfig {
            accounts: 50,
            total_txs: total,
            clients: 2,
            threads_per_client: 2,
            ..WorkloadConfig::default()
        }
    }

    fn fast_builder() -> EvalConfigBuilder {
        EvalConfig::builder()
            .poll_interval(Duration::from_millis(20))
            .drain_timeout(Duration::from_secs(30))
    }

    fn fast_config() -> EvalConfig {
        fast_builder().build().expect("fast test config is valid")
    }

    #[test]
    fn evaluates_neuchain_end_to_end() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::constant(100, 3, Duration::from_secs(1));
        let report = Evaluation::new(fast_config())
            .run(&deployment, &small_workload(300), &control)
            .unwrap();
        assert_eq!(report.chain, "neuchain-sim");
        assert_eq!(report.submitted, 300);
        assert_eq!(report.committed + report.failed + report.timed_out, 300);
        assert!(report.committed > 250, "committed = {}", report.committed);
        assert!(report.overall_tps > 0.0);
        assert!(report.latency.count > 0);
    }

    #[test]
    fn batch_baseline_also_completes() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::constant(50, 2, Duration::from_secs(1));
        let report = Evaluation::new(
            fast_builder()
                .mode(TestingMode::BatchBaseline)
                .build()
                .unwrap(),
        )
        .run(&deployment, &small_workload(100), &control)
        .unwrap();
        assert!(report.committed > 80, "committed = {}", report.committed);
    }

    #[test]
    fn interactive_mode_tracks_events() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::constant(50, 2, Duration::from_secs(1));
        let report = Evaluation::new(
            fast_builder()
                .mode(TestingMode::Interactive)
                .build()
                .unwrap(),
        )
        .run(&deployment, &small_workload(100), &control)
        .unwrap();
        assert!(report.committed > 80, "committed = {}", report.committed);
    }

    #[test]
    fn sharded_chain_evaluated_through_same_driver() {
        let deployment = Deployment::up(ChainSpec::meepo_default(), 1000.0);
        let control = ControlSequence::constant(60, 3, Duration::from_secs(1));
        let report = Evaluation::new(fast_config())
            .run(&deployment, &small_workload(180), &control)
            .unwrap();
        assert_eq!(report.chain, "meepo-sim");
        assert!(report.committed > 100, "committed = {}", report.committed);
        // Shard-aware load report: both shards carried traffic, and the
        // per-shard counts sum to the committed total.
        assert_eq!(
            report.per_shard_committed.len(),
            2,
            "{:?}",
            report.per_shard_committed
        );
        let total: usize = report.per_shard_committed.iter().map(|(_, n)| n).sum();
        assert_eq!(total, report.committed);
    }

    #[test]
    fn builder_validates_and_builds() {
        let config = EvalConfig::builder()
            .mode(TestingMode::BatchBaseline)
            .signing(SigningStrategy::Async)
            .signer_threads(2)
            .poll_interval(Duration::from_millis(50))
            .retry(RetryPolicy::standard())
            .build()
            .unwrap();
        assert_eq!(config.mode, TestingMode::BatchBaseline);
        assert_eq!(config.signing, SigningStrategy::Async);
        assert_eq!(config.signer_threads, 2);
        assert_eq!(config.retry, RetryPolicy::standard());

        for bad in [
            EvalConfig::builder().signer_threads(0).build(),
            EvalConfig::builder().poll_interval(Duration::ZERO).build(),
            EvalConfig::builder()
                .retry(RetryPolicy {
                    multiplier: 0.5,
                    ..RetryPolicy::standard()
                })
                .build(),
        ] {
            assert!(matches!(bad, Err(EvalError::InvalidConfig(_))), "{bad:?}");
        }
    }

    #[test]
    fn enabled_retry_is_inert_without_faults() {
        // With no fault plan installed the retry policy must never fire:
        // the report carries zero retried/dropped/expired and no
        // fault-window breakdown.
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::constant(50, 2, Duration::from_secs(1));
        let report = Evaluation::new(
            fast_builder()
                .retry(RetryPolicy::standard())
                .build()
                .unwrap(),
        )
        .run(&deployment, &small_workload(100), &control)
        .unwrap();
        assert_eq!(report.retried, 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.expired, 0);
        assert!(report.fault_windows.is_empty());
        assert!(report.committed > 80, "committed = {}", report.committed);
    }

    #[test]
    fn retry_deadline_longer_than_slice_rejected() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::constant(50, 2, Duration::from_secs(1));
        let err = Evaluation::new(
            fast_builder()
                .retry(RetryPolicy {
                    deadline: Some(Duration::from_secs(5)),
                    ..RetryPolicy::standard()
                })
                .build()
                .unwrap(),
        )
        .run(&deployment, &small_workload(100), &control)
        .unwrap_err();
        assert!(matches!(err, EvalError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn invalid_retry_policy_rejected() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::constant(50, 2, Duration::from_secs(1));
        // The builder is the only public entry and rejects this policy at
        // build time; mutate a built config directly (pub(crate) fields)
        // to prove the run path re-validates as a second line of defense.
        let mut config = fast_config();
        config.retry = RetryPolicy {
            multiplier: 0.0,
            ..RetryPolicy::standard()
        };
        let err = Evaluation::new(config)
            .run(&deployment, &small_workload(100), &control)
            .unwrap_err();
        assert!(matches!(err, EvalError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn empty_control_sequence_rejected() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::from_budgets(vec![], Duration::from_secs(1));
        let err = Evaluation::new(fast_config())
            .run(&deployment, &small_workload(10), &control)
            .unwrap_err();
        assert!(matches!(err, EvalError::InvalidConfig(_)));
    }

    #[test]
    fn serial_and_pipelined_signing_agree_on_outcomes() {
        for signing in [
            SigningStrategy::Serial,
            SigningStrategy::Async,
            SigningStrategy::Pipelined,
        ] {
            let deployment = Deployment::up(ChainSpec::Neuchain(NeuchainConfig::default()), 1000.0);
            let control = ControlSequence::constant(40, 2, Duration::from_secs(1));
            let report = Evaluation::new(fast_builder().signing(signing).build().unwrap())
                .run(&deployment, &small_workload(80), &control)
                .unwrap();
            assert!(
                report.committed > 60,
                "{signing:?}: committed = {}",
                report.committed
            );
        }
    }

    #[test]
    fn live_sync_pipeline_matches_direct_path() {
        let control = ControlSequence::constant(60, 3, Duration::from_secs(1));
        let run = |live_sync: bool| {
            let deployment = Deployment::up(ChainSpec::neuchain_default(), 500.0);
            Evaluation::new(fast_builder().live_sync(live_sync).build().unwrap())
                .run(&deployment, &small_workload(180), &control)
                .unwrap()
        };
        let direct = run(false);
        let synced = run(true);
        assert_eq!(direct.synced_rows, 0);
        // Every non-rejected record travelled the KV pipeline.
        assert_eq!(
            synced.synced_rows as u64,
            180 - synced.rejected,
            "pipeline dropped rows"
        );
        // Both paths agree on the totals (timing-sensitive metrics like
        // TPS are compared loosely; the runs are separate executions).
        assert_eq!(
            direct.committed + direct.failed + direct.timed_out,
            synced.committed + synced.failed + synced.timed_out
        );
        assert!(synced.committed > 150, "committed = {}", synced.committed);
        assert!(synced.overall_tps > 0.0);
        assert!(synced.latency.count > 0);
    }

    #[test]
    fn ycsb_workload_runs() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::constant(50, 2, Duration::from_secs(1));
        let workload = WorkloadConfig {
            kind: WorkloadKind::Ycsb,
            accounts: 100,
            read_ratio: 0.5,
            ..small_workload(100)
        };
        let report = Evaluation::new(fast_config())
            .run(&deployment, &workload, &control)
            .unwrap();
        assert!(report.committed > 80, "committed = {}", report.committed);
    }

    #[test]
    fn report_to_json_is_well_formed() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::constant(40, 2, Duration::from_secs(1));
        let report = Evaluation::new(fast_config())
            .run(&deployment, &small_workload(80), &control)
            .unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        // Balanced braces/brackets (no strings in the payload contain
        // either, so a flat count suffices).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"chain\":\"neuchain-sim\"",
            &format!("\"submitted\":{}", report.submitted),
            &format!("\"committed\":{}", report.committed),
            "\"latency\":{",
            "\"tps_series\":[",
            "\"per_shard_committed\":[",
            "\"index_stats\":{",
            "\"fault_windows\":[]",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains(",}") && !json.contains(",]"), "{json}");
    }

    #[test]
    fn fault_window_stats_attributes_commits_exactly() {
        use hammer_net::FaultPlan;
        // Two scripted windows: [2s, 4s) and [6s, 8s). Commit end times are
        // chosen so the attribution is exact: 3 in the first window, 2 in
        // the second, 4 outside both.
        let plan = FaultPlan::new()
            .crash("n0", Duration::from_secs(2), Duration::from_secs(4))
            .latency_spike(
                Duration::from_millis(10),
                Duration::from_secs(6),
                Duration::from_secs(8),
            );
        let rec = |i: u8, end_ms: u64, status: TxStatus| TxRecord {
            tx_id: TxId([i; 32]),
            client_id: 0,
            server_id: 0,
            start: Duration::ZERO,
            end: (status != TxStatus::Pending).then(|| Duration::from_millis(end_ms)),
            status,
        };
        let records = vec![
            // First window: boundary inclusion at the start, exclusion at
            // the end (half-open [start, end)).
            rec(1, 2_000, TxStatus::Committed),
            rec(2, 3_000, TxStatus::Committed),
            rec(3, 3_999, TxStatus::Committed),
            rec(4, 4_000, TxStatus::Committed), // == w1 end: outside
            // Second window.
            rec(5, 6_500, TxStatus::Committed),
            rec(6, 7_000, TxStatus::Committed),
            // Outside both.
            rec(7, 500, TxStatus::Committed),
            rec(8, 1_000, TxStatus::Committed),
            rec(9, 9_000, TxStatus::Committed),
            // Non-committed records never count.
            rec(10, 2_500, TxStatus::Failed),
            rec(11, 0, TxStatus::Pending),
        ];
        let stats = fault_window_stats(
            Some(&plan),
            &records,
            Duration::ZERO,
            Duration::from_secs(9),
        );
        assert_eq!(stats.len(), 3, "{stats:?}");
        assert_eq!(stats[0].label, plan.windows()[0].label);
        assert_eq!(stats[0].committed, 3);
        assert!((stats[0].tps - 1.5).abs() < 1e-9, "{stats:?}");
        assert_eq!(stats[1].label, plan.windows()[1].label);
        assert_eq!(stats[1].committed, 2);
        assert!((stats[1].tps - 1.0).abs() < 1e-9, "{stats:?}");
        // Nominal: 4 commits over the 9s span minus the 4s covered by
        // windows = 5s outside-window time.
        assert_eq!(stats[2].label, "nominal");
        assert_eq!(stats[2].committed, 4);
        assert!((stats[2].tps - 0.8).abs() < 1e-9, "{stats:?}");
        // Every committed record is attributed exactly once.
        let attributed: usize = stats.iter().map(|s| s.committed).sum();
        assert_eq!(attributed, 9);
    }

    #[test]
    fn obs_installed_run_emits_spans_metrics_and_journal() {
        use hammer_obs::EventKind;
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        deployment.net().install_obs(Obs::new());
        let control = ControlSequence::constant(50, 2, Duration::from_secs(1));
        let report = Evaluation::new(fast_config())
            .run(&deployment, &small_workload(100), &control)
            .unwrap();
        let obs = deployment.net().obs();
        let spans = obs.spans();
        assert_eq!(spans.histogram(Stage::Generated).count(), 100);
        assert_eq!(spans.histogram(Stage::Signed).count(), 100);
        assert!(spans.histogram(Stage::Submitted).count() > 0);
        assert!(spans.histogram(Stage::InBlock).count() >= report.committed as u64);
        assert_eq!(
            spans.histogram(Stage::Matched).count(),
            spans.histogram(Stage::InBlock).count()
        );
        assert_eq!(
            obs.registry()
                .counter("hammer_driver_submitted_total")
                .value(),
            report.submitted
        );
        assert!(
            obs.journal().count_of(EventKind::BlockSeal) > 0,
            "sims should journal block seals"
        );
    }

    #[test]
    fn default_run_keeps_obs_disabled() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
        let control = ControlSequence::constant(40, 2, Duration::from_secs(1));
        Evaluation::new(fast_config())
            .run(&deployment, &small_workload(80), &control)
            .unwrap();
        let obs = deployment.net().obs();
        assert!(!obs.enabled());
        assert_eq!(obs.spans().histogram(Stage::Signed).count(), 0);
        assert!(obs.journal().is_empty());
    }

    #[test]
    fn control_sequence_paces_submission() {
        // A bursty control sequence should shape the tps series: the
        // burst slice dominates. Run at a modest speed-up so scheduling
        // noise on loaded single-core hosts cannot smear the burst.
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 200.0);
        let control = ControlSequence::from_budgets(vec![10, 200, 10], Duration::from_secs(1));
        let report = Evaluation::new(fast_config())
            .run(&deployment, &small_workload(220), &control)
            .unwrap();
        assert!(report.committed > 150);
        let peak = report.tps_series.iter().max().copied().unwrap_or(0);
        let sum: usize = report.tps_series.iter().sum();
        assert!(
            peak * 5 > sum * 2,
            "no burst visible in series {:?}",
            report.tps_series
        );
    }
}
