//! The Blockbench-style batch-testing baseline.
//!
//! §II-C1: "the driver maintains an unconfirmed and incomplete transaction
//! queue ... extracts the transaction list from the contents of the
//! acknowledgment block and removes the matching transaction list from
//! the local queue". Matching one block of `m` transactions against a
//! queue of length `n` scans the queue per transaction — `O(n·m)` — which
//! Eq. 1–2 formalise and Fig. 9 measures against Hammer's O(1) algorithm.
//!
//! This module implements that baseline faithfully (linear scan + remove),
//! so the comparison in the Fig. 9 bench measures real work on both sides.

use std::time::Duration;

use hammer_chain::types::{TxId, TxStatus};

use crate::index::TxRecord;

/// The unconfirmed-transaction queue of batch testing.
#[derive(Clone, Debug, Default)]
pub struct BatchQueue {
    /// Pending transactions, in submission order.
    queue: Vec<TxRecord>,
    /// Completed transactions (moved out of the queue on match).
    done: Vec<TxRecord>,
}

impl BatchQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unconfirmed transactions.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of matched transactions.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Records a submitted transaction.
    pub fn insert(&mut self, tx_id: TxId, client_id: u32, server_id: u32, start: Duration) {
        self.queue.push(TxRecord {
            tx_id,
            client_id,
            server_id,
            start,
            end: None,
            status: TxStatus::Pending,
        });
    }

    /// Matches one transaction from a confirmed block: linearly scans the
    /// queue and removes the entry (the O(n) inner step of batch testing).
    /// Returns `true` when a pending transaction was matched.
    pub fn complete(&mut self, tx_id: &TxId, end: Duration, success: bool) -> bool {
        // Deliberately a linear scan with positional remove — this is the
        // baseline algorithm whose cost the paper measures; do not
        // "optimise" it.
        for i in 0..self.queue.len() {
            if self.queue[i].tx_id == *tx_id {
                let mut record = self.queue.remove(i);
                record.end = Some(end);
                record.status = if success {
                    TxStatus::Committed
                } else {
                    TxStatus::Failed
                };
                self.done.push(record);
                return true;
            }
        }
        false
    }

    /// Matches a whole block of transactions (the O(n·m) outer loop).
    /// Returns the number matched.
    pub fn complete_block(&mut self, tx_ids: &[TxId], end: Duration) -> usize {
        let mut matched = 0;
        for tx_id in tx_ids {
            if self.complete(tx_id, end, true) {
                matched += 1;
            }
        }
        matched
    }

    /// Marks a still-pending transaction as abandoned by the submission
    /// path (`Dropped` / `Expired`): removes it from the unconfirmed
    /// queue with the given terminal status. Returns `true` when the
    /// transaction was pending.
    pub fn abandon(&mut self, tx_id: &TxId, end: Duration, status: TxStatus) -> bool {
        debug_assert!(
            matches!(status, TxStatus::Dropped | TxStatus::Expired),
            "abandon is for submission-side terminal statuses"
        );
        for i in 0..self.queue.len() {
            if self.queue[i].tx_id == *tx_id {
                let mut record = self.queue.remove(i);
                record.end = Some(end);
                record.status = status;
                self.done.push(record);
                return true;
            }
        }
        false
    }

    /// Marks all still-pending transactions as timed out and returns how
    /// many there were.
    pub fn timeout_pending(&mut self) -> usize {
        let n = self.queue.len();
        for mut record in self.queue.drain(..) {
            record.status = TxStatus::TimedOut;
            self.done.push(record);
        }
        n
    }

    /// All completed/timed-out records.
    pub fn records(&self) -> &[TxRecord] {
        &self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::smallbank::Op;
    use hammer_chain::types::Transaction;

    fn tx_id(n: u64) -> TxId {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce: n,
            op: Op::KvGet { key: n },
            chain_name: "t".to_owned(),
            contract_name: "k".to_owned(),
        }
        .id()
    }

    #[test]
    fn insert_match_remove() {
        let mut queue = BatchQueue::new();
        queue.insert(tx_id(1), 0, 0, Duration::ZERO);
        queue.insert(tx_id(2), 0, 0, Duration::ZERO);
        assert!(queue.complete(&tx_id(1), Duration::from_secs(1), true));
        assert_eq!(queue.pending(), 1);
        assert_eq!(queue.completed(), 1);
        assert_eq!(queue.records()[0].status, TxStatus::Committed);
    }

    #[test]
    fn unknown_tx_not_matched() {
        let mut queue = BatchQueue::new();
        queue.insert(tx_id(1), 0, 0, Duration::ZERO);
        assert!(!queue.complete(&tx_id(9), Duration::from_secs(1), true));
        assert_eq!(queue.pending(), 1);
    }

    #[test]
    fn block_matching_counts() {
        let mut queue = BatchQueue::new();
        for i in 0..10 {
            queue.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        let block: Vec<TxId> = (5..15).map(tx_id).collect();
        let matched = queue.complete_block(&block, Duration::from_secs(1));
        assert_eq!(matched, 5);
        assert_eq!(queue.pending(), 5);
    }

    #[test]
    fn timeout_drains_queue() {
        let mut queue = BatchQueue::new();
        for i in 0..4 {
            queue.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        assert_eq!(queue.timeout_pending(), 4);
        assert_eq!(queue.pending(), 0);
        assert!(queue
            .records()
            .iter()
            .all(|r| r.status == TxStatus::TimedOut));
    }

    #[test]
    fn matches_agree_with_tx_table() {
        // Differential test: batch queue and TxTable must classify
        // identically on the same event stream.
        use crate::index::TxTable;
        let mut queue = BatchQueue::new();
        let mut table = TxTable::with_capacity(64);
        for i in 0..200 {
            queue.insert(tx_id(i), 0, 0, Duration::ZERO);
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        for i in (0..300).step_by(3) {
            let a = queue.complete(&tx_id(i), Duration::from_secs(1), true);
            let b = table.complete(&tx_id(i), Duration::from_secs(1), true);
            assert_eq!(a, b, "divergence at {i}");
        }
        assert_eq!(queue.pending(), table.pending());
    }
}
