//! The Redis→MySQL status pipeline of Fig. 2 (steps ④–⑥).
//!
//! The paper's driver does not write the Performance table directly:
//! transaction statuses accumulate in per-server vector lists, the driver
//! pushes them to **Redis**, and Redis periodically transfers merged
//! batches into **MySQL**, from which the visualisation layer reads. This
//! module reproduces that pipeline over the in-process stand-ins
//! ([`hammer_store::KvStore`] and [`hammer_store::TableStore`]):
//!
//! * [`StatusSyncer`] — the driver-side half: completion records are
//!   encoded and `RPUSH`ed onto a per-server list key.
//! * [`run_merger`] — the Redis→MySQL half: a background thread `LTAKE`s
//!   every status list on a period and inserts the decoded rows into the
//!   Performance table.
//!
//! Records use a fixed-width binary encoding (44 bytes) so the KV store
//! carries realistic payloads rather than references.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hammer_store::table::{PerfRow, RowOutcome};
use hammer_store::{KvStore, TableStore};

/// One completed (or finally-failed) transaction status record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StatusRecord {
    /// 64-bit fingerprint of the transaction id.
    pub tx_fingerprint: u64,
    /// Generating client.
    pub client_id: u32,
    /// Submitting server.
    pub server_id: u32,
    /// Submission time (simulated, nanoseconds).
    pub start_ns: u64,
    /// Completion time (simulated, nanoseconds); `u64::MAX` = never.
    pub end_ns: u64,
    /// Terminal outcome.
    pub outcome: RowOutcome,
}

impl StatusRecord {
    /// Encoded size in bytes.
    pub const ENCODED_LEN: usize = 8 + 4 + 4 + 8 + 8 + 1;

    /// Fixed-width binary encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        out.extend_from_slice(&self.tx_fingerprint.to_be_bytes());
        out.extend_from_slice(&self.client_id.to_be_bytes());
        out.extend_from_slice(&self.server_id.to_be_bytes());
        out.extend_from_slice(&self.start_ns.to_be_bytes());
        out.extend_from_slice(&self.end_ns.to_be_bytes());
        out.push(self.outcome.code());
        out
    }

    /// Decodes a record; `None` on length or flag corruption.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let outcome = RowOutcome::from_code(bytes[32])?;
        Some(StatusRecord {
            tx_fingerprint: u64::from_be_bytes(bytes[0..8].try_into().ok()?),
            client_id: u32::from_be_bytes(bytes[8..12].try_into().ok()?),
            server_id: u32::from_be_bytes(bytes[12..16].try_into().ok()?),
            start_ns: u64::from_be_bytes(bytes[16..24].try_into().ok()?),
            end_ns: u64::from_be_bytes(bytes[24..32].try_into().ok()?),
            outcome,
        })
    }

    /// Converts into a Performance-table row for `chain`.
    pub fn into_row(self, chain: &str) -> PerfRow {
        PerfRow {
            tx_id: self.tx_fingerprint,
            client_id: self.client_id,
            server_id: self.server_id,
            chain: chain.to_owned(),
            start_time: Duration::from_nanos(self.start_ns),
            end_time: (self.end_ns != u64::MAX).then(|| Duration::from_nanos(self.end_ns)),
            outcome: self.outcome,
        }
    }
}

/// The per-server list key.
pub fn list_key(server_id: u32) -> String {
    format!("hammer:status:{server_id}")
}

/// Driver-side status publisher: pushes encoded records to the KV store.
#[derive(Clone)]
pub struct StatusSyncer {
    kv: Arc<KvStore>,
    server_id: u32,
}

impl StatusSyncer {
    /// A syncer publishing under `server_id`'s list.
    pub fn new(kv: Arc<KvStore>, server_id: u32) -> Self {
        StatusSyncer { kv, server_id }
    }

    /// Publishes one record.
    pub fn publish(&self, record: &StatusRecord) {
        self.kv.rpush(&list_key(self.server_id), record.encode());
    }
}

/// Runs the Redis→MySQL merger until `stop` is set *and* the lists are
/// empty; returns the number of rows transferred. Decodes every record and
/// inserts batches into the Performance table.
pub fn run_merger(
    kv: &KvStore,
    table: &TableStore,
    chain: &str,
    server_ids: &[u32],
    period: Duration,
    stop: &AtomicBool,
) -> usize {
    let mut transferred = 0usize;
    loop {
        let mut drained_any = false;
        for &server in server_ids {
            let items = kv.ltake(&list_key(server));
            if items.is_empty() {
                continue;
            }
            drained_any = true;
            let rows: Vec<PerfRow> = items
                .iter()
                .filter_map(|bytes| StatusRecord::decode(bytes))
                .map(|record| record.into_row(chain))
                .collect();
            transferred += rows.len();
            table.insert_batch(rows);
        }
        if stop.load(Ordering::Acquire) && !drained_any {
            return transferred;
        }
        std::thread::sleep(period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn record(n: u64) -> StatusRecord {
        StatusRecord {
            tx_fingerprint: n.wrapping_mul(0x9e3779b97f4a7c15),
            client_id: (n % 5) as u32,
            server_id: (n % 3) as u32,
            start_ns: n * 1000,
            end_ns: n * 1000 + 500,
            outcome: if n.is_multiple_of(7) {
                RowOutcome::Failed
            } else {
                RowOutcome::Committed
            },
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for n in 0..50 {
            let r = record(n);
            assert_eq!(StatusRecord::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(StatusRecord::decode(&[]), None);
        assert_eq!(StatusRecord::decode(&[0u8; 10]), None);
        let mut bytes = record(1).encode();
        bytes[32] = 9; // bad outcome code
        assert_eq!(StatusRecord::decode(&bytes), None);
    }

    #[test]
    fn pending_record_maps_to_no_end_time() {
        let r = StatusRecord {
            end_ns: u64::MAX,
            ..record(1)
        };
        let row = r.into_row("c");
        assert!(row.end_time.is_none());
    }

    #[test]
    fn syncer_and_merger_transfer_everything() {
        let kv = Arc::new(KvStore::new());
        let table = TableStore::new();
        let s0 = StatusSyncer::new(Arc::clone(&kv), 0);
        let s1 = StatusSyncer::new(Arc::clone(&kv), 1);
        for n in 0..200 {
            if n % 2 == 0 {
                s0.publish(&record(n));
            } else {
                s1.publish(&record(n));
            }
        }
        let stop = AtomicBool::new(true); // stop after draining
        let transferred = run_merger(
            &kv,
            &table,
            "test-chain",
            &[0, 1],
            Duration::from_millis(1),
            &stop,
        );
        assert_eq!(transferred, 200);
        assert_eq!(table.len(), 200);
        assert!(kv.lrange(&list_key(0), 0, 10).is_empty());
        // Row content carried through.
        let rows = table.all_rows();
        assert!(rows.iter().all(|r| r.chain == "test-chain"));
    }

    #[test]
    fn merger_drains_concurrent_publishers() {
        let kv = Arc::new(KvStore::new());
        let table = Arc::new(TableStore::new());
        let stop = Arc::new(AtomicBool::new(false));
        let merger = {
            let kv = Arc::clone(&kv);
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                run_merger(&kv, &table, "c", &[0], Duration::from_millis(2), &stop)
            })
        };
        let syncer = StatusSyncer::new(Arc::clone(&kv), 0);
        for n in 0..500 {
            syncer.publish(&record(n));
            if n % 100 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        stop.store(true, Ordering::Release);
        let transferred = merger.join().unwrap();
        assert_eq!(transferred, 500);
        assert_eq!(table.len(), 500);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(fp in any::<u64>(), c in any::<u32>(), s in any::<u32>(),
                          start in any::<u64>(), end in any::<u64>(), code in 0u8..=4) {
            let r = StatusRecord {
                tx_fingerprint: fp,
                client_id: c,
                server_id: s,
                start_ns: start,
                end_ns: end,
                outcome: RowOutcome::from_code(code).unwrap(),
            };
            prop_assert_eq!(StatusRecord::decode(&r.encode()), Some(r));
        }
    }
}
