//! A Bloom filter over transaction ids.
//!
//! Algorithm 1 (lines 14–17) uses a Bloom filter for "rapid exclusion of
//! transactions not in the index": in distributed testing a block may
//! contain transactions submitted by *other* driver servers, and the
//! filter rejects those without touching the hash index.
//!
//! Standard construction: `m = -n ln p / (ln 2)^2` bits and
//! `k = (m / n) ln 2` hash functions, with double hashing
//! (`h_i = h1 + i * h2`) over a 64-bit fingerprint.

/// A fixed-size Bloom filter keyed by 64-bit fingerprints.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    k: u32,
    inserted: usize,
    capacity: usize,
}

/// splitmix64: a fast, well-distributed 64-bit mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl BloomFilter {
    /// Builds a filter sized for `capacity` items at the given
    /// false-positive rate.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero or `fp_rate` is outside `(0, 1)`.
    pub fn new(capacity: usize, fp_rate: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            fp_rate > 0.0 && fp_rate < 1.0,
            "fp_rate must be in (0, 1), got {fp_rate}"
        );
        let ln2 = std::f64::consts::LN_2;
        let m = (-(capacity as f64) * fp_rate.ln() / (ln2 * ln2)).ceil() as u64;
        let m = m.max(64);
        let k = ((m as f64 / capacity as f64) * ln2).round().max(1.0) as u32;
        BloomFilter {
            bits: vec![0u64; m.div_ceil(64) as usize],
            n_bits: m,
            k,
            inserted: 0,
            capacity,
        }
    }

    /// Number of hash functions in use.
    pub fn hash_count(&self) -> u32 {
        self.k
    }

    /// Number of bits in the filter.
    pub fn bit_count(&self) -> u64 {
        self.n_bits
    }

    /// Items inserted so far.
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// The design capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn probes(&self, fingerprint: u64) -> impl Iterator<Item = u64> + '_ {
        let h1 = splitmix64(fingerprint);
        let h2 = splitmix64(h1) | 1; // odd stride
        (0..self.k).map(move |i| h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.n_bits)
    }

    /// Inserts a fingerprint.
    pub fn insert(&mut self, fingerprint: u64) {
        let probes: Vec<u64> = self.probes(fingerprint).collect();
        for bit in probes {
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Whether the fingerprint *may* have been inserted (no false
    /// negatives; false positives at roughly the design rate).
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.probes(fingerprint)
            .all(|bit| self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Measures the actual false-positive rate against `samples` random
    /// fingerprints that were never inserted (diagnostics).
    pub fn measured_fp_rate(&self, samples: u64) -> f64 {
        let mut hits = 0u64;
        for i in 0..samples {
            // Derive probe values far away from sequential inserts.
            let probe = splitmix64(0xdead_0000_0000_0000 ^ i);
            if self.contains(probe) {
                hits += 1;
            }
        }
        hits as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_false_negatives() {
        let mut bloom = BloomFilter::new(10_000, 0.01);
        for i in 0..10_000u64 {
            bloom.insert(i);
        }
        for i in 0..10_000u64 {
            assert!(bloom.contains(i), "false negative at {i}");
        }
    }

    #[test]
    fn fp_rate_near_design_point() {
        let mut bloom = BloomFilter::new(10_000, 0.01);
        for i in 0..10_000u64 {
            bloom.insert(i);
        }
        let rate = bloom.measured_fp_rate(50_000);
        assert!(rate < 0.03, "fp rate {rate} too high");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bloom = BloomFilter::new(100, 0.01);
        assert!(!bloom.contains(42));
        assert!(bloom.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut bloom = BloomFilter::new(100, 0.01);
        bloom.insert(1);
        assert!(bloom.contains(1));
        bloom.clear();
        assert!(!bloom.contains(1));
        assert_eq!(bloom.len(), 0);
    }

    #[test]
    fn sizing_follows_formula() {
        let bloom = BloomFilter::new(1000, 0.01);
        // m ~ 9.58 bits/item, k ~ 7 for p=0.01.
        assert!(bloom.bit_count() >= 9000 && bloom.bit_count() <= 10_500);
        assert_eq!(bloom.hash_count(), 7);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BloomFilter::new(0, 0.01);
    }

    #[test]
    #[should_panic(expected = "fp_rate must be in (0, 1)")]
    fn bad_fp_rate_panics() {
        let _ = BloomFilter::new(10, 1.5);
    }

    proptest! {
        #[test]
        fn prop_inserted_always_found(items in proptest::collection::hash_set(any::<u64>(), 1..500)) {
            let mut bloom = BloomFilter::new(items.len().max(1), 0.01);
            for item in &items {
                bloom.insert(*item);
            }
            for item in &items {
                prop_assert!(bloom.contains(*item));
            }
        }
    }
}
