//! The vector list + dynamic hash index of Algorithm 1.
//!
//! The paper replaces Blockbench's unconfirmed-transaction *queue* with a
//! **vector list** (append-only `Vec` of transaction records — "due to the
//! high overhead associated with enqueue and dequeue operations in
//! queues") plus a **dynamically created hash index** from transaction id
//! to vector position. A Bloom filter sits in front of the index to
//! exclude foreign transactions cheaply. On hash-table pressure the table
//! *expands its length* to keep collisions rare, so both insert and match
//! stay O(1).
//!
//! The paper's stated limitation — the table only ever grows, inflating
//! storage on long runs — is addressed by [`TxTable::compact`]
//! (future-work feature; see DESIGN.md §6 and the `taskproc_compaction`
//! ablation bench).

use std::time::Duration;

use hammer_chain::types::{TxId, TxStatus};

use crate::bloom::BloomFilter;

/// One entry of the vector list (Algorithm 1's `transaction_info`
/// structure: start/end time, ids, names, status).
#[derive(Clone, Debug, PartialEq)]
pub struct TxRecord {
    /// The transaction id.
    pub tx_id: TxId,
    /// Generating client (`c_id`).
    pub client_id: u32,
    /// Submitting server (`s_id`).
    pub server_id: u32,
    /// Submission time (`S_t`).
    pub start: Duration,
    /// Commit time (`E_t`), set on match.
    pub end: Option<Duration>,
    /// Lifecycle status.
    pub status: TxStatus,
}

/// Counters describing index behaviour (for the Fig. 9 analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Total probe steps beyond the home slot (collision walking).
    pub probe_steps: u64,
    /// Times the hash table expanded.
    pub expansions: u64,
    /// Lookups short-circuited by the Bloom filter.
    pub bloom_rejections: u64,
    /// Lookups that passed the Bloom filter but were not in the index
    /// (Bloom false positives or already-completed duplicates).
    pub misses: u64,
    /// Times the Bloom filter was rebuilt: rotations forced by
    /// saturation (insertions past the design capacity would silently
    /// degrade the false-positive rate) plus compactions.
    pub bloom_rebuilds: u64,
}

impl IndexStats {
    /// Accumulates another table's counters into this one — how a
    /// sharded tracker presents a single-table view of its shards.
    pub fn merge(&mut self, other: &IndexStats) {
        self.probe_steps += other.probe_steps;
        self.expansions += other.expansions;
        self.bloom_rejections += other.bloom_rejections;
        self.misses += other.misses;
        self.bloom_rebuilds += other.bloom_rebuilds;
    }
}

const EMPTY: u64 = u64::MAX;

/// The vector list with its dynamic hash index and Bloom filter.
#[derive(Clone, Debug)]
pub struct TxTable {
    records: Vec<TxRecord>,
    /// Open-addressing slots holding indices into `records` (EMPTY = free).
    slots: Vec<u64>,
    bloom: BloomFilter,
    /// Consult the Bloom filter before the hash index (Algorithm 1's
    /// default; disable only for the ablation bench).
    use_bloom: bool,
    stats: IndexStats,
    live: usize,
}

impl TxTable {
    /// Creates a table sized for an expected number of in-flight
    /// transactions (it grows beyond this transparently).
    pub fn with_capacity(expected: usize) -> Self {
        Self::with_capacity_and_bloom(expected, true)
    }

    /// Like [`TxTable::with_capacity`], optionally without the Bloom
    /// filter front (the ablation in DESIGN.md §6).
    pub fn with_capacity_and_bloom(expected: usize, use_bloom: bool) -> Self {
        let expected = expected.max(16);
        let slot_count = (expected * 2).next_power_of_two();
        TxTable {
            records: Vec::with_capacity(expected),
            slots: vec![EMPTY; slot_count],
            bloom: BloomFilter::new(expected.max(1024), 0.01),
            use_bloom,
            stats: IndexStats::default(),
            live: 0,
        }
    }

    /// Number of records in the vector list (including completed ones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the vector list is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of still-pending records.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Index behaviour counters.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Current slot-array length (storage diagnostics).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn home_slot(&self, tx_id: &TxId) -> usize {
        (tx_id.fingerprint() % self.slots.len() as u64) as usize
    }

    /// Algorithm 1, lines 4–8: records a sent transaction and indexes it.
    pub fn insert(&mut self, tx_id: TxId, client_id: u32, server_id: u32, start: Duration) {
        // Expand before the load factor hurts ("we attempt to minimize the
        // occurrence of hash collisions by expanding the length of the
        // hash table").
        if (self.records.len() + 1) * 10 > self.slots.len() * 7 {
            self.expand();
        }
        // Rotate a saturated Bloom filter: past its design capacity the
        // false-positive rate degrades silently, so rebuild it over the
        // current records with doubled headroom.
        if self.bloom.len() >= self.bloom.capacity() {
            self.rotate_bloom();
        }
        let idx = self.records.len() as u64;
        self.records.push(TxRecord {
            tx_id,
            client_id,
            server_id,
            start,
            end: None,
            status: TxStatus::Pending,
        });
        self.live += 1;
        self.bloom.insert(tx_id.fingerprint());
        let mut slot = self.home_slot(&tx_id);
        loop {
            if self.slots[slot] == EMPTY {
                self.slots[slot] = idx;
                return;
            }
            self.stats.probe_steps += 1;
            slot = (slot + 1) % self.slots.len();
        }
    }

    fn expand(&mut self) {
        let new_len = (self.slots.len() * 2).max(32);
        self.slots = vec![EMPTY; new_len];
        self.stats.expansions += 1;
        for (idx, record) in self.records.iter().enumerate() {
            let mut slot = (record.tx_id.fingerprint() % new_len as u64) as usize;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) % new_len;
            }
            self.slots[slot] = idx as u64;
        }
    }

    /// Rebuilds the Bloom filter over every current record (completed
    /// ones included — duplicate block sightings must still pass the
    /// filter and resolve through the index) with capacity doubled, so
    /// the false-positive rate returns to the design point.
    fn rotate_bloom(&mut self) {
        self.bloom = BloomFilter::new(self.records.len().max(512) * 2, 0.01);
        for record in &self.records {
            self.bloom.insert(record.tx_id.fingerprint());
        }
        self.stats.bloom_rebuilds += 1;
    }

    /// Looks up a record index by id (Bloom filter first, then the hash
    /// index; collisions walk the probe chain — Algorithm 1 lines 14–19).
    fn find(&mut self, tx_id: &TxId) -> Option<usize> {
        if self.use_bloom && !self.bloom.contains(tx_id.fingerprint()) {
            self.stats.bloom_rejections += 1;
            return None;
        }
        let mut slot = self.home_slot(tx_id);
        let mut walked = 0usize;
        loop {
            match self.slots[slot] {
                s if s == EMPTY => {
                    self.stats.misses += 1;
                    return None;
                }
                s => {
                    if self.records[s as usize].tx_id == *tx_id {
                        return Some(s as usize);
                    }
                    self.stats.probe_steps += 1;
                }
            }
            walked += 1;
            if walked >= self.slots.len() {
                self.stats.misses += 1;
                return None;
            }
            slot = (slot + 1) % self.slots.len();
        }
    }

    /// Algorithm 1, lines 10–19: marks a transaction complete with the
    /// block time as its end time. Returns `true` when the transaction was
    /// pending in this table.
    pub fn complete(&mut self, tx_id: &TxId, end: Duration, success: bool) -> bool {
        self.complete_record(tx_id, end, success).is_some()
    }

    /// Like [`TxTable::complete`], but returns the finished record so
    /// callers (the driver's live-sync pipeline) can publish it without a
    /// second index lookup. `None` when the transaction was not pending
    /// here (foreign, unknown, or a duplicate sighting).
    pub fn complete_record(
        &mut self,
        tx_id: &TxId,
        end: Duration,
        success: bool,
    ) -> Option<&TxRecord> {
        match self.find(tx_id) {
            Some(idx) => {
                let record = &mut self.records[idx];
                if record.status != TxStatus::Pending {
                    return None; // duplicate block sighting
                }
                record.end = Some(end);
                record.status = if success {
                    TxStatus::Committed
                } else {
                    TxStatus::Failed
                };
                self.live -= 1;
                Some(&self.records[idx])
            }
            None => None,
        }
    }

    /// Marks a still-pending transaction as abandoned by the submission
    /// path — `Dropped` (retry budget exhausted) or `Expired` (per-slice
    /// retry deadline passed) — without it ever reaching the chain.
    /// Returns `true` when the transaction was pending in this table.
    pub fn abandon(&mut self, tx_id: &TxId, end: Duration, status: TxStatus) -> bool {
        debug_assert!(
            matches!(status, TxStatus::Dropped | TxStatus::Expired),
            "abandon is for submission-side terminal statuses"
        );
        match self.find(tx_id) {
            Some(idx) => {
                let record = &mut self.records[idx];
                if record.status != TxStatus::Pending {
                    return false;
                }
                record.end = Some(end);
                record.status = status;
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    /// Marks every still-pending transaction as timed out.
    pub fn timeout_pending(&mut self) -> usize {
        let mut n = 0;
        for record in &mut self.records {
            if record.status == TxStatus::Pending {
                record.status = TxStatus::TimedOut;
                n += 1;
            }
        }
        self.live = 0;
        n
    }

    /// Reads a record by id (diagnostics).
    pub fn get(&mut self, tx_id: &TxId) -> Option<&TxRecord> {
        self.find(tx_id).map(|idx| &self.records[idx])
    }

    /// All records (the final flush into the Performance table).
    pub fn records(&self) -> &[TxRecord] {
        &self.records
    }

    /// The future-work compaction: drops completed records and rebuilds
    /// the index over the survivors, bounding storage on long runs.
    /// Returns the number of dropped records.
    pub fn compact(&mut self) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.status == TxStatus::Pending);
        let dropped = before - self.records.len();
        if dropped == 0 {
            return 0;
        }
        // Rebuild slots and Bloom filter over the survivors.
        let slot_count = (self.records.len().max(16) * 2).next_power_of_two();
        self.slots = vec![EMPTY; slot_count];
        self.bloom = BloomFilter::new(self.records.len().max(1024), 0.01);
        self.stats.bloom_rebuilds += 1;
        for (idx, record) in self.records.iter().enumerate() {
            self.bloom.insert(record.tx_id.fingerprint());
            let mut slot = (record.tx_id.fingerprint() % slot_count as u64) as usize;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) % slot_count;
            }
            self.slots[slot] = idx as u64;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::smallbank::Op;
    use hammer_chain::types::Transaction;
    use proptest::prelude::*;

    fn tx_id(n: u64) -> TxId {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce: n,
            op: Op::KvGet { key: n },
            chain_name: "t".to_owned(),
            contract_name: "k".to_owned(),
        }
        .id()
    }

    #[test]
    fn insert_and_complete() {
        let mut table = TxTable::with_capacity(16);
        let id = tx_id(1);
        table.insert(id, 3, 1, Duration::from_millis(10));
        assert_eq!(table.pending(), 1);
        assert!(table.complete(&id, Duration::from_millis(50), true));
        assert_eq!(table.pending(), 0);
        let record = table.get(&id).unwrap();
        assert_eq!(record.status, TxStatus::Committed);
        assert_eq!(record.end, Some(Duration::from_millis(50)));
        assert_eq!(record.client_id, 3);
    }

    #[test]
    fn complete_unknown_returns_false() {
        let mut table = TxTable::with_capacity(16);
        table.insert(tx_id(1), 0, 0, Duration::ZERO);
        assert!(!table.complete(&tx_id(2), Duration::from_secs(1), true));
    }

    #[test]
    fn duplicate_completion_rejected() {
        let mut table = TxTable::with_capacity(16);
        let id = tx_id(1);
        table.insert(id, 0, 0, Duration::ZERO);
        assert!(table.complete(&id, Duration::from_secs(1), true));
        assert!(!table.complete(&id, Duration::from_secs(2), true));
        // End time keeps the first sighting.
        assert_eq!(table.get(&id).unwrap().end, Some(Duration::from_secs(1)));
    }

    #[test]
    fn failure_recorded() {
        let mut table = TxTable::with_capacity(16);
        let id = tx_id(1);
        table.insert(id, 0, 0, Duration::ZERO);
        table.complete(&id, Duration::from_secs(1), false);
        assert_eq!(table.get(&id).unwrap().status, TxStatus::Failed);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut table = TxTable::with_capacity(4);
        for i in 0..10_000 {
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        assert!(table.stats().expansions > 0);
        // Every one still findable after expansion.
        for i in 0..10_000 {
            assert!(
                table.complete(&tx_id(i), Duration::from_secs(1), true),
                "{i}"
            );
        }
    }

    #[test]
    fn bloom_rejects_foreign_txs() {
        let mut table = TxTable::with_capacity(1024);
        for i in 0..1000 {
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        let mut rejected = 0;
        for i in 10_000..11_000 {
            if !table.complete(&tx_id(i), Duration::from_secs(1), true) {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 1000);
        // Most were bloom-rejected without touching the index.
        assert!(table.stats().bloom_rejections > 900, "{:?}", table.stats());
    }

    #[test]
    fn timeout_pending_marks_remaining() {
        let mut table = TxTable::with_capacity(16);
        for i in 0..5 {
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        table.complete(&tx_id(0), Duration::from_secs(1), true);
        assert_eq!(table.timeout_pending(), 4);
        assert_eq!(table.get(&tx_id(1)).unwrap().status, TxStatus::TimedOut);
        assert_eq!(table.get(&tx_id(0)).unwrap().status, TxStatus::Committed);
    }

    #[test]
    fn compact_drops_completed_and_keeps_pending_findable() {
        let mut table = TxTable::with_capacity(16);
        for i in 0..100 {
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        for i in 0..60 {
            table.complete(&tx_id(i), Duration::from_secs(1), true);
        }
        let dropped = table.compact();
        assert_eq!(dropped, 60);
        assert_eq!(table.len(), 40);
        // Pending survivors still findable and completable.
        for i in 60..100 {
            assert!(
                table.complete(&tx_id(i), Duration::from_secs(2), true),
                "{i}"
            );
        }
        // Completed ones are gone.
        assert!(table.get(&tx_id(0)).is_none());
    }

    #[test]
    fn compact_noop_when_all_pending() {
        let mut table = TxTable::with_capacity(16);
        for i in 0..10 {
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        assert_eq!(table.compact(), 0);
        assert_eq!(table.len(), 10);
    }

    #[test]
    fn saturated_bloom_rotates_and_recovers_fp_rate() {
        // Capacity 100 floors the Bloom at 1024; pushing well past that
        // must trigger at least one rotation instead of letting the
        // false-positive rate degrade silently.
        let mut table = TxTable::with_capacity(100);
        for i in 0..8_000 {
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        assert!(table.stats().bloom_rebuilds >= 1, "{:?}", table.stats());
        // Every insert is still findable through the rotated filter (no
        // false negatives across the rebuild)...
        for i in 0..8_000 {
            assert!(
                table.complete(&tx_id(i), Duration::from_secs(1), true),
                "{i}"
            );
        }
        // ...and foreign ids are still overwhelmingly rejected by it: a
        // saturated un-rotated filter would pass nearly everything.
        let stats_before = table.stats();
        for i in 100_000..101_000 {
            assert!(!table.complete(&tx_id(i), Duration::from_secs(1), true));
        }
        let rejected = table.stats().bloom_rejections - stats_before.bloom_rejections;
        assert!(rejected > 900, "only {rejected}/1000 foreign ids rejected");
    }

    #[test]
    fn stats_merge_sums_fields() {
        let a = IndexStats {
            probe_steps: 1,
            expansions: 2,
            bloom_rejections: 3,
            misses: 4,
            bloom_rebuilds: 5,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            IndexStats {
                probe_steps: 2,
                expansions: 4,
                bloom_rejections: 6,
                misses: 8,
                bloom_rebuilds: 10,
            }
        );
    }

    #[test]
    fn bloomless_table_still_correct() {
        let mut table = TxTable::with_capacity_and_bloom(64, false);
        for i in 0..500 {
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        for i in 0..500 {
            assert!(table.complete(&tx_id(i), Duration::from_secs(1), true));
        }
        // Foreign lookups miss via the probe chain, not the filter.
        assert!(!table.complete(&tx_id(9999), Duration::from_secs(1), true));
        assert_eq!(table.stats().bloom_rejections, 0);
        assert!(table.stats().misses >= 1);
    }

    proptest! {
        /// Inserting any set of ids and completing a subset leaves exactly
        /// the complement pending.
        #[test]
        fn prop_insert_complete_consistency(
            n in 1usize..300,
            complete_mask in proptest::collection::vec(any::<bool>(), 300),
        ) {
            let mut table = TxTable::with_capacity(8);
            for i in 0..n {
                table.insert(tx_id(i as u64), 0, 0, Duration::ZERO);
            }
            let mut completed = 0;
            for (i, &done) in complete_mask.iter().enumerate().take(n) {
                if done {
                    prop_assert!(table.complete(&tx_id(i as u64), Duration::from_secs(1), true));
                    completed += 1;
                }
            }
            prop_assert_eq!(table.pending(), n - completed);
            for (i, &done) in complete_mask.iter().enumerate().take(n) {
                let status = table.get(&tx_id(i as u64)).unwrap().status;
                if done {
                    prop_assert_eq!(status, TxStatus::Committed);
                } else {
                    prop_assert_eq!(status, TxStatus::Pending);
                }
            }
        }
    }
}
