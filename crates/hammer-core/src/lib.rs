//! **Hammer** — a general blockchain evaluation framework.
//!
//! This crate is the paper's primary contribution: a driver that evaluates
//! sharded and non-sharded blockchains through one generic interface, with
//! two key components:
//!
//! 1. **Asynchronous task processing** (§III-C, Algorithm 1) — in-flight
//!    transactions live in a *vector list* ([`index::TxTable`]) indexed by
//!    a dynamically grown hash table behind a Bloom filter
//!    ([`bloom::BloomFilter`]), so matching the transactions of a new
//!    block costs O(1) each instead of the O(n·m) queue scan of
//!    Blockbench-style batch testing ([`baseline::BatchQueue`]).
//! 2. **Asynchronous signatures + pipelined preparation/execution**
//!    (§III-D, Fig. 4) — workload signing is parallelised
//!    ([`signer::sign_async`]) and overlapped with execution
//!    ([`signer::sign_pipelined`]), removing the serial preparation
//!    bottleneck (Fig. 8's ≈6.9× speed-up).
//!
//! The [`driver`] module orchestrates a full evaluation — preparation,
//! execution, and reporting (Fig. 3) — against any
//! [`hammer_chain::client::BlockchainClient`]. [`deploy`] brings up a
//! simulated system under test with one call (the paper's Ansible role),
//! and [`machine`] models the evaluation client's limited vCPUs, which is
//! what makes thread/client scaling behave like the paper's Fig. 10.
//!
//! # Quickstart
//!
//! ```
//! use std::time::Duration;
//! use hammer_core::deploy::{ChainSpec, Deployment};
//! use hammer_core::driver::{EvalConfig, Evaluation};
//! use hammer_workload::{ControlSequence, WorkloadConfig};
//!
//! // 1. Deploy a simulated SUT (1000x accelerated clock).
//! let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
//! // 2. Describe the workload and control sequence.
//! let workload = WorkloadConfig {
//!     accounts: 100,
//!     total_txs: 200,
//!     ..WorkloadConfig::default()
//! };
//! let control = ControlSequence::constant(100, 2, Duration::from_secs(1));
//! // 3. Run.
//! let config = EvalConfig::builder().build().unwrap();
//! let report = Evaluation::new(config)
//!     .run(&deployment, &workload, &control)
//!     .unwrap();
//! assert!(report.committed > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod bloom;
pub mod chaos;
pub mod checkpoint;
pub mod deploy;
pub mod driver;
pub mod index;
pub mod machine;
pub mod multi;
pub mod retry;
pub mod scenario;
pub mod shard;
pub mod signer;
pub mod sync;

pub use baseline::BatchQueue;
pub use bloom::BloomFilter;
pub use chaos::{ChaosCase, ChaosVerdict, InvariantCheck};
pub use checkpoint::{DriverCheckpoint, RecoveryConfig};
pub use deploy::{
    BackendOptions, BackendRegistry, ChainSpec, DeployError, DeployMode, Deployment,
    ProcessFaultStats, Supervisor, SupervisorConfig, UnknownBackend,
};
pub use driver::{
    EvalConfig, EvalConfigBuilder, EvalReport, Evaluation, FaultWindowStats, TestingMode,
};
pub use index::{TxRecord, TxTable};
pub use machine::ClientMachine;
pub use multi::{run_distributed, MultiDriverReport};
pub use retry::RetryPolicy;
pub use scenario::{Expectation, Scenario, ScenarioBuilder, ScenarioError, Verdict};
pub use shard::ShardedTxTable;
