//! The sharded in-flight tracker: Algorithm 1's vector list, hash index,
//! and Bloom filter ([`TxTable`]), partitioned across N independently
//! locked shards so the driver's submit, monitor, and match threads
//! contend only per shard instead of on one global tracker lock.
//!
//! * **Fingerprint → shard mapping.** A transaction lands in shard
//!   `(fingerprint × φ64) >> 33 & (N−1)` — a multiply-shift over the
//!   64-bit id fingerprint. The mapping deliberately consumes *different*
//!   bits than [`TxTable`]'s home-slot computation (`fingerprint mod
//!   slot_count`, the low bits): deriving both from the same bits would
//!   leave each shard's slot array systematically underpopulated.
//! * **Batched block fan-out.** [`ShardedTxTable::complete_block`] groups
//!   a sealed block's transaction ids by shard first and then takes each
//!   shard's lock exactly once per block — not once per transaction — so
//!   a 10k-transaction block costs N lock acquisitions, and blocks
//!   touching disjoint shards match fully in parallel.
//! * **Per-shard rejection state.** Each shard also owns its slice of the
//!   rejected-id set, so a terminal rejection updates the record *and*
//!   the set under one shard lock (the old driver took two global locks).
//! * **Aggregate view.** [`ShardedTxTable::snapshot`] locks every shard
//!   at once and concatenates, so checkpointing, the invariant oracle,
//!   and the final report see the same single-table view a one-lock
//!   tracker would produce; [`ShardedTxTable::stats`] sums per-shard
//!   [`IndexStats`].
//!
//! With `shards = 1` this *is* the single-lock tracker, which is what the
//! `driver_ceiling` bench uses as its baseline arm.

use std::collections::HashSet;
use std::time::Duration;

use hammer_chain::types::{TxId, TxStatus};
use parking_lot::{Mutex, MutexGuard};

use crate::index::{IndexStats, TxRecord, TxTable};

/// One shard: a vector-list segment with its own hash index and Bloom
/// filter, plus this shard's slice of the rejected-id set.
#[derive(Debug)]
struct Shard {
    table: TxTable,
    rejected: HashSet<TxId>,
}

/// The sharded tracker. All methods take `&self`; locking is internal and
/// per shard. See the module docs for the layout.
#[derive(Debug)]
pub struct ShardedTxTable {
    shards: Box<[Mutex<Shard>]>,
    /// `shards.len() - 1`; the length is always a power of two.
    mask: usize,
}

impl ShardedTxTable {
    /// Creates a tracker with `shards` shards (rounded up to the next
    /// power of two, floored at 1 and capped at 4096) sized for an
    /// expected total of `expected` in-flight transactions.
    pub fn new(shards: usize, expected: usize) -> Self {
        let shards = shards.clamp(1, 4096).next_power_of_two();
        let per_shard = (expected / shards).max(16);
        let shards: Vec<Mutex<Shard>> = (0..shards)
            .map(|_| {
                Mutex::new(Shard {
                    table: TxTable::with_capacity(per_shard),
                    rejected: HashSet::new(),
                })
            })
            .collect();
        ShardedTxTable {
            mask: shards.len() - 1,
            shards: shards.into_boxed_slice(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a transaction id maps to.
    #[inline]
    pub fn shard_of(&self, tx_id: &TxId) -> usize {
        // Multiply-shift over the fingerprint: bits 33.. of fp·φ64 are
        // well mixed and independent of the low bits the per-shard home
        // slot consumes (fingerprint mod slot_count).
        ((tx_id.fingerprint().wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) as usize) & self.mask
    }

    #[inline]
    fn shard(&self, tx_id: &TxId) -> MutexGuard<'_, Shard> {
        self.shards[self.shard_of(tx_id)].lock()
    }

    /// Records a submitted transaction (Algorithm 1, lines 4–8) in its
    /// shard.
    pub fn insert(&self, tx_id: TxId, client_id: u32, server_id: u32, start: Duration) {
        self.shard(&tx_id)
            .table
            .insert(tx_id, client_id, server_id, start);
    }

    /// Completes a single transaction, returning the finished record when
    /// it was pending here.
    pub fn complete(&self, tx_id: &TxId, end: Duration, success: bool) -> Option<TxRecord> {
        self.shard(tx_id)
            .table
            .complete_record(tx_id, end, success)
            .cloned()
    }

    /// Matches a whole sealed block: groups the entries by shard, takes
    /// each touched shard's lock exactly once, and appends every record
    /// that completed (transitioned out of `Pending`) to `out`.
    pub fn complete_block(&self, entries: &[(TxId, bool)], end: Duration, out: &mut Vec<TxRecord>) {
        if self.shards.len() == 1 {
            let mut shard = self.shards[0].lock();
            for (tx_id, ok) in entries {
                if let Some(record) = shard.table.complete_record(tx_id, end, *ok) {
                    out.push(record.clone());
                }
            }
            return;
        }
        // Group-by-shard scratch: one pass to bucket the entry indices,
        // then one lock acquisition per touched shard.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (tx_id, _)) in entries.iter().enumerate() {
            buckets[self.shard_of(tx_id)].push(i);
        }
        for (shard_idx, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut shard = self.shards[shard_idx].lock();
            for &i in bucket {
                let (tx_id, ok) = &entries[i];
                if let Some(record) = shard.table.complete_record(tx_id, end, *ok) {
                    out.push(record.clone());
                }
            }
        }
    }

    /// Marks a still-pending transaction abandoned by the submission path
    /// (`Dropped` / `Expired`). Returns `true` when it was pending here.
    pub fn abandon(&self, tx_id: &TxId, end: Duration, status: TxStatus) -> bool {
        self.shard(tx_id).table.abandon(tx_id, end, status)
    }

    /// Terminal rejection: completes the record as failed *and* adds the
    /// id to this shard's rejected set, atomically under one shard lock.
    pub fn reject(&self, tx_id: &TxId, end: Duration) {
        let mut shard = self.shard(tx_id);
        let _ = shard.table.complete_record(tx_id, end, false);
        shard.rejected.insert(*tx_id);
    }

    /// Replays a checkpointed rejected-id set into the per-shard state
    /// (resume path). Ids are routed to their shards; records are not
    /// touched.
    pub fn restore_rejected(&self, ids: &[TxId]) {
        for id in ids {
            self.shard(id).rejected.insert(*id);
        }
    }

    /// Still-pending records, summed across shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.lock().table.pending()).sum()
    }

    /// Total records across shards, completed included.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().table.len()).sum()
    }

    /// Whether no transaction was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate index statistics: the per-shard [`IndexStats`] summed
    /// into the single-table view the report expects.
    pub fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for shard in self.shards.iter() {
            total.merge(&shard.lock().table.stats());
        }
        total
    }

    /// A consistent point-in-time copy of every record (pending included,
    /// concatenated in shard order) plus the rejected-id set. All shard
    /// locks are held simultaneously while copying, so the view is
    /// exactly what a single-lock tracker would have snapshotted.
    pub fn snapshot(&self) -> (Vec<TxRecord>, Vec<TxId>) {
        let guards: Vec<MutexGuard<'_, Shard>> = self.shards.iter().map(|s| s.lock()).collect();
        let mut records = Vec::with_capacity(guards.iter().map(|g| g.table.len()).sum());
        let mut rejected = Vec::new();
        for guard in &guards {
            records.extend_from_slice(guard.table.records());
            rejected.extend(guard.rejected.iter().copied());
        }
        (records, rejected)
    }

    /// Drains the tracker at end of run: every record (in shard order)
    /// and the combined rejected-id set. The tracker is left empty.
    pub fn drain(&self) -> (Vec<TxRecord>, HashSet<TxId>) {
        let mut records = Vec::new();
        let mut rejected = HashSet::new();
        for shard in self.shards.iter() {
            let mut guard = shard.lock();
            let table = std::mem::replace(&mut guard.table, TxTable::with_capacity(16));
            records.extend_from_slice(table.records());
            rejected.extend(std::mem::take(&mut guard.rejected));
        }
        (records, rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::smallbank::Op;
    use hammer_chain::types::Transaction;
    use proptest::prelude::*;

    fn tx_id(n: u64) -> TxId {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce: n,
            op: Op::KvGet { key: n },
            chain_name: "t".to_owned(),
            contract_name: "k".to_owned(),
        }
        .id()
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedTxTable::new(0, 100).shard_count(), 1);
        assert_eq!(ShardedTxTable::new(1, 100).shard_count(), 1);
        assert_eq!(ShardedTxTable::new(3, 100).shard_count(), 4);
        assert_eq!(ShardedTxTable::new(8, 100).shard_count(), 8);
        assert_eq!(ShardedTxTable::new(5000, 100).shard_count(), 4096);
    }

    #[test]
    fn ids_spread_across_shards() {
        let table = ShardedTxTable::new(8, 1024);
        let mut per_shard = vec![0usize; table.shard_count()];
        for i in 0..8_000 {
            per_shard[table.shard_of(&tx_id(i))] += 1;
        }
        for (shard, n) in per_shard.iter().enumerate() {
            // 1000 expected per shard; a grossly skewed mapping would
            // put the whole load back on one lock.
            assert!(
                (500..1500).contains(n),
                "shard {shard} holds {n} of 8000: {per_shard:?}"
            );
        }
    }

    #[test]
    fn insert_complete_reject_roundtrip() {
        let table = ShardedTxTable::new(4, 64);
        for i in 0..100 {
            table.insert(tx_id(i), i as u32, 0, Duration::ZERO);
        }
        assert_eq!(table.pending(), 100);
        assert_eq!(table.len(), 100);

        let record = table
            .complete(&tx_id(7), Duration::from_secs(1), true)
            .expect("pending");
        assert_eq!(record.status, TxStatus::Committed);
        assert_eq!(record.client_id, 7);
        assert!(table
            .complete(&tx_id(7), Duration::from_secs(2), true)
            .is_none());

        table.reject(&tx_id(8), Duration::from_millis(5));
        assert!(table.abandon(&tx_id(9), Duration::from_secs(1), TxStatus::Dropped));
        assert_eq!(table.pending(), 97);

        let (records, rejected) = table.snapshot();
        assert_eq!(records.len(), 100);
        assert_eq!(rejected, vec![tx_id(8)]);
        let failed = records
            .iter()
            .filter(|r| r.status == TxStatus::Failed)
            .count();
        assert_eq!(failed, 1);
    }

    #[test]
    fn complete_block_matches_exactly_once_per_entry() {
        let table = ShardedTxTable::new(8, 1024);
        for i in 0..5_000 {
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        // A block mixing known ids (every other one failed), duplicates,
        // and foreign ids.
        let mut entries: Vec<(TxId, bool)> = (0..1_000).map(|i| (tx_id(i), i % 2 == 0)).collect();
        entries.push((tx_id(0), true)); // duplicate sighting
        entries.extend((100_000..100_050).map(|i| (tx_id(i), true))); // foreign
        let mut matched = Vec::new();
        table.complete_block(&entries, Duration::from_secs(3), &mut matched);
        assert_eq!(matched.len(), 1_000);
        let committed = matched
            .iter()
            .filter(|r| r.status == TxStatus::Committed)
            .count();
        assert_eq!(committed, 500);
        assert_eq!(table.pending(), 4_000);
        // A second sighting of the same block matches nothing.
        matched.clear();
        table.complete_block(&entries, Duration::from_secs(4), &mut matched);
        assert!(matched.is_empty());
    }

    #[test]
    fn drain_empties_and_returns_everything() {
        let table = ShardedTxTable::new(4, 64);
        for i in 0..50 {
            table.insert(tx_id(i), 0, 0, Duration::ZERO);
        }
        table.reject(&tx_id(3), Duration::ZERO);
        let (records, rejected) = table.drain();
        assert_eq!(records.len(), 50);
        assert_eq!(rejected.len(), 1);
        assert!(rejected.contains(&tx_id(3)));
        assert_eq!(table.len(), 0);
        assert_eq!(table.pending(), 0);
    }

    #[test]
    fn concurrent_submit_and_match_account_for_everything() {
        // 4 submit threads × 4 match threads against 8 shards; every
        // inserted id is completed exactly once and the totals add up.
        let table = std::sync::Arc::new(ShardedTxTable::new(8, 40_000));
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let table = std::sync::Arc::clone(&table);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let id = tx_id(t * per_thread + i);
                        table.insert(id, t as u32, 0, Duration::ZERO);
                        if i % 1000 == 999 {
                            table.reject(&id, Duration::from_millis(1));
                        }
                    }
                });
            }
        });
        let inserted = 4 * per_thread as usize;
        assert_eq!(table.len(), inserted);
        let matched: usize = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let table = std::sync::Arc::clone(&table);
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let entries: Vec<(TxId, bool)> = (0..per_thread)
                        .map(|i| (tx_id(t * per_thread + i), true))
                        .collect();
                    for chunk in entries.chunks(500) {
                        table.complete_block(chunk, Duration::from_secs(1), &mut out);
                    }
                    out.len()
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let (records, rejected) = table.drain();
        assert_eq!(records.len(), inserted);
        assert_eq!(rejected.len(), 4 * 10); // every 1000th per thread
        assert_eq!(matched, inserted - rejected.len());
        assert_eq!(
            records
                .iter()
                .filter(|r| r.status == TxStatus::Pending)
                .count(),
            0
        );
    }

    /// A deterministic single-table reference: the same op sequence
    /// applied to one `TxTable` + one rejected set.
    #[derive(Clone, Debug)]
    enum TrackOp {
        Insert(u64),
        Complete(u64, bool),
        Abandon(u64),
        Reject(u64),
    }

    fn op_strategy() -> impl Strategy<Value = TrackOp> {
        prop_oneof![
            (0u64..200).prop_map(TrackOp::Insert),
            ((0u64..200), any::<bool>()).prop_map(|(n, ok)| TrackOp::Complete(n, ok)),
            (0u64..200).prop_map(TrackOp::Abandon),
            (0u64..200).prop_map(TrackOp::Reject),
        ]
    }

    proptest! {
        /// For any interleaving of tracker operations, the sharded
        /// tracker and a single-lock tracker expose identical record
        /// sets, pending counts, and rejected sets. (Layout-dependent
        /// stats — probe steps, expansions, Bloom counters — are *not*
        /// compared: partitioning legitimately changes them; the
        /// aggregate is exercised via `stats()` summing per-shard.)
        #[test]
        fn prop_sharded_matches_single_lock(
            ops in proptest::collection::vec(op_strategy(), 1..250),
            shards in 1usize..16,
        ) {
            let sharded = ShardedTxTable::new(shards, 64);
            let single = ShardedTxTable::new(1, 64);
            let mut inserted: HashSet<u64> = HashSet::new();
            for op in &ops {
                match *op {
                    TrackOp::Insert(n) => {
                        // Double-inserting the same id is not a driver
                        // behaviour; skip (ids are unique per run).
                        if inserted.insert(n) {
                            sharded.insert(tx_id(n), n as u32, 0, Duration::ZERO);
                            single.insert(tx_id(n), n as u32, 0, Duration::ZERO);
                        }
                    }
                    TrackOp::Complete(n, ok) => {
                        let a = sharded.complete(&tx_id(n), Duration::from_secs(1), ok);
                        let b = single.complete(&tx_id(n), Duration::from_secs(1), ok);
                        prop_assert_eq!(a, b);
                    }
                    TrackOp::Abandon(n) => {
                        let a = sharded.abandon(&tx_id(n), Duration::from_secs(1), TxStatus::Dropped);
                        let b = single.abandon(&tx_id(n), Duration::from_secs(1), TxStatus::Dropped);
                        prop_assert_eq!(a, b);
                    }
                    TrackOp::Reject(n) => {
                        sharded.reject(&tx_id(n), Duration::from_secs(1));
                        single.reject(&tx_id(n), Duration::from_secs(1));
                    }
                }
            }
            prop_assert_eq!(sharded.pending(), single.pending());
            prop_assert_eq!(sharded.len(), single.len());
            let (mut rec_a, mut rej_a) = sharded.snapshot();
            let (mut rec_b, mut rej_b) = single.snapshot();
            rec_a.sort_by_key(|r| r.tx_id);
            rec_b.sort_by_key(|r| r.tx_id);
            prop_assert_eq!(rec_a, rec_b);
            rej_a.sort();
            rej_b.sort();
            prop_assert_eq!(rej_a, rej_b);
            // The aggregate stats view stays a plain sum of shards.
            let total = sharded.stats();
            prop_assert!(total.probe_steps < u64::MAX);
        }
    }
}
