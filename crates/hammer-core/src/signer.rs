//! Workload signing: serial, asynchronous, and pipelined (paper §III-D,
//! Fig. 4).
//!
//! Each blockchain workload item carries a client signature, and "the
//! signature of a transaction does not depend on any previous result", so
//! signing parallelises perfectly:
//!
//! * [`sign_serial`] — the Caliper-style baseline (Fig. 4a): one thread
//!   signs everything before execution begins.
//! * [`sign_async`] — asynchronous signatures (Fig. 4b): a thread pool
//!   signs in parallel, but execution still waits for the whole batch.
//! * [`sign_pipelined`] — asynchronous signatures **plus** pipelined
//!   preparation/execution (Fig. 4c): signed transactions stream into a
//!   channel the moment they are ready, so the execution phase overlaps
//!   the preparation phase. This combination is Fig. 8's
//!   "Asynchronous Pipeline" (~6.9× over serial on multi-core clients).

use crossbeam::channel::{bounded, Receiver};
use hammer_chain::types::{SignedTransaction, Transaction};
use hammer_crypto::sig::SigParams;
use hammer_crypto::Keypair;
use hammer_net::SimClock;
use hammer_obs::{Histogram, Obs, Stage};

/// Per-transaction timing context for the signing pool: records each
/// signing duration (in simulated time) into the lifecycle `signed`
/// stage histogram. Cheap to clone into worker threads. A disabled
/// context skips timestamp capture entirely, so the plain entry points
/// pay one predictable branch per transaction.
#[derive(Clone)]
pub struct SignObs {
    hist: Histogram,
    clock: SimClock,
    enabled: bool,
}

impl SignObs {
    /// Context recording into `obs`'s `signed` span on `clock`.
    pub fn new(obs: &Obs, clock: &SimClock) -> Self {
        SignObs {
            hist: obs.spans().histogram(Stage::Signed).clone(),
            clock: clock.clone(),
            enabled: obs.enabled(),
        }
    }

    /// Context that records nothing.
    pub fn disabled() -> Self {
        SignObs {
            hist: Histogram::disabled(),
            clock: SimClock::realtime(),
            enabled: false,
        }
    }

    /// Whether signing durations are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn sign_one(
        &self,
        tx: Transaction,
        keypair: &Keypair,
        params: &SigParams,
        buf: &mut Vec<u8>,
    ) -> SignedTransaction {
        if self.enabled {
            let start = self.clock.now();
            let signed = tx.sign_with_buf(keypair, params, buf);
            self.hist
                .record_duration(self.clock.now().saturating_sub(start));
            signed
        } else {
            tx.sign_with_buf(keypair, params, buf)
        }
    }
}

/// Signs the batch on the calling thread (the serial baseline).
///
/// One scratch buffer serves the whole batch, so steady-state signing does
/// no per-transaction allocations for the signable encoding.
pub fn sign_serial(
    txs: Vec<Transaction>,
    keypair: &Keypair,
    params: &SigParams,
) -> Vec<SignedTransaction> {
    sign_serial_obs(txs, keypair, params, &SignObs::disabled())
}

/// [`sign_serial`] with per-transaction span recording.
pub fn sign_serial_obs(
    txs: Vec<Transaction>,
    keypair: &Keypair,
    params: &SigParams,
    obs: &SignObs,
) -> Vec<SignedTransaction> {
    let mut buf = Vec::with_capacity(64);
    txs.into_iter()
        .map(|tx| obs.sign_one(tx, keypair, params, &mut buf))
        .collect()
}

/// Signs the batch on `threads` worker threads and waits for all of them
/// (asynchronous signatures without pipelining).
///
/// The output preserves the input order.
pub fn sign_async(
    txs: Vec<Transaction>,
    keypair: &Keypair,
    params: &SigParams,
    threads: usize,
) -> Vec<SignedTransaction> {
    sign_async_obs(txs, keypair, params, threads, &SignObs::disabled())
}

/// [`sign_async`] with per-transaction span recording on every worker.
pub fn sign_async_obs(
    txs: Vec<Transaction>,
    keypair: &Keypair,
    params: &SigParams,
    threads: usize,
    obs: &SignObs,
) -> Vec<SignedTransaction> {
    let threads = threads.max(1);
    if txs.is_empty() {
        return Vec::new();
    }
    let n = txs.len();
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<SignedTransaction>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<SignedTransaction>] = &mut out;
        let mut txs = txs;
        let mut start = 0usize;
        let mut handles = Vec::new();
        while !txs.is_empty() {
            let take = chunk.min(txs.len());
            let batch: Vec<Transaction> = txs.drain(..take).collect();
            let (slots, rest) = remaining.split_at_mut(take);
            remaining = rest;
            let kp = *keypair;
            let p = *params;
            let worker_obs = obs.clone();
            handles.push(scope.spawn(move || {
                let mut buf = Vec::with_capacity(64);
                for (slot, tx) in slots.iter_mut().zip(batch) {
                    *slot = Some(worker_obs.sign_one(tx, &kp, &p, &mut buf));
                }
            }));
            start += take;
        }
        debug_assert_eq!(start, n);
        for h in handles {
            h.join().expect("signer thread panicked");
        }
    });
    out.into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

/// Signs on `threads` workers and streams results through a channel so the
/// consumer (the execution phase) starts immediately — asynchronous
/// signatures + pipelining.
///
/// Output order is *not* guaranteed across workers (transactions are
/// independent; the driver tracks them by id). The channel is bounded to
/// apply back-pressure when execution is the bottleneck.
pub fn sign_pipelined(
    txs: Vec<Transaction>,
    keypair: Keypair,
    params: SigParams,
    threads: usize,
) -> Receiver<SignedTransaction> {
    sign_pipelined_obs(txs, keypair, params, threads, SignObs::disabled())
}

/// [`sign_pipelined`] with per-transaction span recording on every worker.
pub fn sign_pipelined_obs(
    txs: Vec<Transaction>,
    keypair: Keypair,
    params: SigParams,
    threads: usize,
    obs: SignObs,
) -> Receiver<SignedTransaction> {
    let threads = threads.max(1);
    let (tx_out, rx) = bounded::<SignedTransaction>(4096);
    let n = txs.len();
    let chunk = n.div_ceil(threads).max(1);
    let mut txs = txs;
    for _ in 0..threads {
        if txs.is_empty() {
            break;
        }
        let take = chunk.min(txs.len());
        let batch: Vec<Transaction> = txs.drain(..take).collect();
        let out = tx_out.clone();
        let worker_obs = obs.clone();
        std::thread::Builder::new()
            .name("hammer-signer".to_owned())
            .spawn(move || {
                let mut buf = Vec::with_capacity(64);
                for tx in batch {
                    if out
                        .send(worker_obs.sign_one(tx, &keypair, &params, &mut buf))
                        .is_err()
                    {
                        return; // consumer gone
                    }
                }
            })
            .expect("spawn signer");
    }
    drop(tx_out);
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::smallbank::Op;
    use std::collections::HashSet;

    fn batch(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction {
                client_id: (i % 4) as u32,
                server_id: 0,
                nonce: i,
                op: Op::KvPut { key: i, value: i },
                chain_name: "c".to_owned(),
                contract_name: "k".to_owned(),
            })
            .collect()
    }

    #[test]
    fn serial_signs_all_valid() {
        let kp = Keypair::from_seed(1);
        let params = SigParams::fast();
        let signed = sign_serial(batch(50), &kp, &params);
        assert_eq!(signed.len(), 50);
        assert!(signed.iter().all(|s| s.verify(&params)));
    }

    #[test]
    fn async_matches_serial_output() {
        let kp = Keypair::from_seed(1);
        let params = SigParams::fast();
        let serial = sign_serial(batch(101), &kp, &params);
        for threads in [1, 2, 4, 7] {
            let parallel = sign_async(batch(101), &kp, &params, threads);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn async_empty_batch() {
        let kp = Keypair::from_seed(1);
        assert!(sign_async(vec![], &kp, &SigParams::fast(), 4).is_empty());
    }

    #[test]
    fn pipelined_delivers_every_tx() {
        let kp = Keypair::from_seed(1);
        let params = SigParams::fast();
        let expected: HashSet<_> = batch(200).iter().map(|t| t.id()).collect();
        let rx = sign_pipelined(batch(200), kp, params, 4);
        let mut seen = HashSet::new();
        for signed in rx {
            assert!(signed.verify(&params));
            seen.insert(signed.id);
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn pipelined_streams_before_completion() {
        // With a slow consumer and bounded channel, the first results must
        // arrive long before all signing could have finished.
        let kp = Keypair::from_seed(1);
        let params = SigParams::with_cost(50);
        let rx = sign_pipelined(batch(500), kp, params, 2);
        let first = rx.recv_timeout(std::time::Duration::from_secs(5));
        assert!(first.is_ok(), "no streamed result");
        drop(rx); // consumer leaves; workers must exit quietly
    }

    #[test]
    fn pipelined_empty_batch_closes_channel() {
        let kp = Keypair::from_seed(1);
        let rx = sign_pipelined(vec![], kp, SigParams::fast(), 4);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn more_threads_than_txs() {
        let kp = Keypair::from_seed(1);
        let params = SigParams::fast();
        let signed = sign_async(batch(3), &kp, &params, 16);
        assert_eq!(signed.len(), 3);
    }

    #[test]
    fn obs_variants_record_one_span_per_tx() {
        let kp = Keypair::from_seed(1);
        let params = SigParams::fast();
        let obs = Obs::new();
        let clock = SimClock::realtime();
        let sign_obs = SignObs::new(&obs, &clock);
        assert!(sign_obs.is_enabled());

        let serial = sign_serial_obs(batch(20), &kp, &params, &sign_obs);
        assert_eq!(serial.len(), 20);
        assert_eq!(obs.spans().histogram(Stage::Signed).count(), 20);

        let parallel = sign_async_obs(batch(30), &kp, &params, 4, &sign_obs);
        assert_eq!(parallel.len(), 30);
        assert_eq!(obs.spans().histogram(Stage::Signed).count(), 50);

        let rx = sign_pipelined_obs(batch(25), kp, params, 3, sign_obs);
        assert_eq!(rx.iter().count(), 25);
        assert_eq!(obs.spans().histogram(Stage::Signed).count(), 75);
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let kp = Keypair::from_seed(1);
        let params = SigParams::fast();
        let sign_obs = SignObs::disabled();
        assert!(!sign_obs.is_enabled());
        let signed = sign_serial_obs(batch(5), &kp, &params, &sign_obs);
        assert_eq!(signed.len(), 5);
    }
}
