//! Driver checkpoint/resume: a compact, versioned snapshot of the
//! evaluation driver's mutable state, periodically written to a
//! [`KvStore`] so a killed driver can resume mid-run
//! ([`crate::driver::Evaluation::run_recoverable`]).
//!
//! The snapshot captures exactly the state a resumed driver needs to
//! account for every transaction once:
//!
//! * the tracker's per-transaction records (pending included),
//! * the monitor's per-shard scan heights and per-shard commit counts,
//! * the rejected-id set and the retried counter,
//! * the workload seed and control total, as a guard against resuming
//!   into a different run.
//!
//! Workers are never interrupted mid-transaction (the abort flag is only
//! polled between transactions), so every checkpointed record was already
//! handed to the chain: terminal records are settled, and pending ones
//! are re-observed by rescanning blocks from the checkpointed heights.
//! Transactions *not* in the checkpoint — pulled after the snapshot, or
//! never pulled — are simply reprocessed by the resumed run; the chain
//! simulators tolerate the resulting duplicate submissions (a transaction
//! sealed twice matches at most once in the tracker).
//!
//! The format is a hand-rolled little-endian byte codec (no serde in the
//! dependency tree): a `HMCP` magic, a version word, then length-prefixed
//! sections. [`DriverCheckpoint::from_bytes`] returns `None` on any
//! structural mismatch, which a resuming driver treats as "no checkpoint".

use std::sync::Arc;
use std::time::Duration;

use hammer_chain::types::{TxId, TxStatus};
use hammer_store::KvStore;

use crate::index::TxRecord;

const MAGIC: &[u8; 4] = b"HMCP";
const VERSION: u16 = 1;
/// `end_ns` sentinel for records with no end time yet.
const NO_END: u64 = u64::MAX;

/// How a recoverable run checkpoints, and (for tests and chaos drills)
/// when it should simulate a crash.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Where checkpoints live. Share one store across the crash and the
    /// resume, as a real deployment would share a Redis instance.
    pub store: Arc<KvStore>,
    /// Namespaces the checkpoint key: two runs under different ids never
    /// see each other's snapshots.
    pub run_id: String,
    /// Simulated time between periodic snapshots.
    pub interval: Duration,
    /// Cooperative kill switch: when the monitor's clock passes this
    /// simulated time, the run aborts with [`crate::driver::EvalError::Killed`]
    /// *without* writing a final snapshot — state since the last periodic
    /// checkpoint is lost, exactly as in a real crash. `None` runs to
    /// completion.
    pub kill_at: Option<Duration>,
}

impl RecoveryConfig {
    /// A recovery setup that checkpoints every `interval` and never
    /// kills.
    pub fn new(store: Arc<KvStore>, run_id: impl Into<String>, interval: Duration) -> Self {
        RecoveryConfig {
            store,
            run_id: run_id.into(),
            interval,
            kill_at: None,
        }
    }

    /// Arms the kill switch at the given simulated time.
    pub fn kill_at(mut self, at: Duration) -> Self {
        self.kill_at = Some(at);
        self
    }
}

/// The KV key a run's checkpoint lives under.
pub fn checkpoint_key(run_id: &str) -> String {
    format!("hammer/checkpoint/{run_id}")
}

/// One snapshot of the driver's mutable state (see the module docs for
/// what is and is not captured).
#[derive(Clone, Debug, PartialEq)]
pub struct DriverCheckpoint {
    /// The workload seed the run was started with (resume guard).
    pub workload_seed: u64,
    /// The control sequence's transaction total (resume guard).
    pub total: u64,
    /// The retry counter at snapshot time (a pure metric; the submitted
    /// and rejected counters are derived from the records instead).
    pub retried: u64,
    /// The monitor's per-shard block-scan heights.
    pub last_seen: Vec<u64>,
    /// Per-shard committed counts at snapshot time.
    pub shard_commits: Vec<(u32, u64)>,
    /// Transactions the SUT terminally rejected.
    pub rejected_ids: Vec<TxId>,
    /// Every tracker record, pending included.
    pub records: Vec<TxRecord>,
}

impl DriverCheckpoint {
    /// Serialises the checkpoint.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.records.len() * 61);
        out.extend_from_slice(MAGIC);
        put_u16(&mut out, VERSION);
        put_u64(&mut out, self.workload_seed);
        put_u64(&mut out, self.total);
        put_u64(&mut out, self.retried);
        put_u32(&mut out, self.last_seen.len() as u32);
        for h in &self.last_seen {
            put_u64(&mut out, *h);
        }
        put_u32(&mut out, self.shard_commits.len() as u32);
        for (shard, n) in &self.shard_commits {
            put_u32(&mut out, *shard);
            put_u64(&mut out, *n);
        }
        put_u32(&mut out, self.rejected_ids.len() as u32);
        for id in &self.rejected_ids {
            out.extend_from_slice(&id.0);
        }
        put_u32(&mut out, self.records.len() as u32);
        for r in &self.records {
            out.extend_from_slice(&r.tx_id.0);
            put_u32(&mut out, r.client_id);
            put_u32(&mut out, r.server_id);
            put_u64(&mut out, r.start.as_nanos() as u64);
            put_u64(
                &mut out,
                r.end.map(|e| e.as_nanos() as u64).unwrap_or(NO_END),
            );
            out.push(status_byte(r.status));
        }
        out
    }

    /// Deserialises a checkpoint; `None` on any structural mismatch
    /// (wrong magic/version, truncation, an unknown status byte).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut c = Cursor { bytes, pos: 0 };
        if c.take(4)? != MAGIC.as_slice() || c.u16()? != VERSION {
            return None;
        }
        let workload_seed = c.u64()?;
        let total = c.u64()?;
        let retried = c.u64()?;
        let n = c.u32()? as usize;
        let mut last_seen = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            last_seen.push(c.u64()?);
        }
        let n = c.u32()? as usize;
        let mut shard_commits = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let shard = c.u32()?;
            shard_commits.push((shard, c.u64()?));
        }
        let n = c.u32()? as usize;
        let mut rejected_ids = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            rejected_ids.push(TxId(c.take(32)?.try_into().ok()?));
        }
        let n = c.u32()? as usize;
        let mut records = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            let tx_id = TxId(c.take(32)?.try_into().ok()?);
            let client_id = c.u32()?;
            let server_id = c.u32()?;
            let start = Duration::from_nanos(c.u64()?);
            let end_ns = c.u64()?;
            let status = status_from_byte(c.u8()?)?;
            records.push(TxRecord {
                tx_id,
                client_id,
                server_id,
                start,
                end: (end_ns != NO_END).then(|| Duration::from_nanos(end_ns)),
                status,
            });
        }
        if c.pos != bytes.len() {
            return None; // trailing garbage
        }
        Some(DriverCheckpoint {
            workload_seed,
            total,
            retried,
            last_seen,
            shard_commits,
            rejected_ids,
            records,
        })
    }

    /// Writes the checkpoint into the store under the run's key.
    pub fn save(&self, store: &KvStore, run_id: &str) {
        store.set(&checkpoint_key(run_id), self.to_bytes());
    }

    /// Loads and decodes a run's checkpoint, if one exists and parses.
    pub fn load(store: &KvStore, run_id: &str) -> Option<Self> {
        store
            .get(&checkpoint_key(run_id))
            .and_then(|bytes| Self::from_bytes(&bytes))
    }
}

fn status_byte(status: TxStatus) -> u8 {
    match status {
        TxStatus::Pending => 0,
        TxStatus::Committed => 1,
        TxStatus::Failed => 2,
        TxStatus::TimedOut => 3,
        TxStatus::Dropped => 4,
        TxStatus::Expired => 5,
    }
}

fn status_from_byte(byte: u8) -> Option<TxStatus> {
    Some(match byte {
        0 => TxStatus::Pending,
        1 => TxStatus::Committed,
        2 => TxStatus::Failed,
        3 => TxStatus::TimedOut,
        4 => TxStatus::Dropped,
        5 => TxStatus::Expired,
        _ => return None,
    })
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DriverCheckpoint {
        let rec = |i: u8, status: TxStatus, end: Option<u64>| TxRecord {
            tx_id: TxId([i; 32]),
            client_id: i as u32,
            server_id: (i as u32) % 3,
            start: Duration::from_millis(i as u64 * 7),
            end: end.map(Duration::from_millis),
            status,
        };
        DriverCheckpoint {
            workload_seed: 42,
            total: 500,
            retried: 9,
            last_seen: vec![12, 3],
            shard_commits: vec![(0, 110), (1, 95)],
            rejected_ids: vec![TxId([9; 32])],
            records: vec![
                rec(1, TxStatus::Committed, Some(100)),
                rec(2, TxStatus::Pending, None),
                rec(3, TxStatus::Failed, Some(150)),
                rec(4, TxStatus::Dropped, Some(80)),
                rec(5, TxStatus::Expired, Some(90)),
                rec(6, TxStatus::TimedOut, Some(200)),
            ],
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let cp = sample();
        let decoded = DriverCheckpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(decoded, cp);
    }

    #[test]
    fn round_trips_through_a_store() {
        let store = KvStore::new();
        let cp = sample();
        cp.save(&store, "run-7");
        assert_eq!(DriverCheckpoint::load(&store, "run-7").unwrap(), cp);
        assert!(DriverCheckpoint::load(&store, "other-run").is_none());
    }

    #[test]
    fn rejects_corruption() {
        let bytes = sample().to_bytes();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(DriverCheckpoint::from_bytes(&bad).is_none());
        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(DriverCheckpoint::from_bytes(&bad).is_none());
        // Truncation at every prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                DriverCheckpoint::from_bytes(&bytes[..cut]).is_none(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(DriverCheckpoint::from_bytes(&bad).is_none());
        // Unknown status byte (last byte of the last record).
        let mut bad = bytes;
        let last = bad.len() - 1;
        bad[last] = 200;
        assert!(DriverCheckpoint::from_bytes(&bad).is_none());
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let cp = DriverCheckpoint {
            workload_seed: 0,
            total: 0,
            retried: 0,
            last_seen: vec![],
            shard_commits: vec![],
            rejected_ids: vec![],
            records: vec![],
        };
        assert_eq!(DriverCheckpoint::from_bytes(&cp.to_bytes()).unwrap(), cp);
    }
}
