//! Distributed testing: several driver servers against one SUT.
//!
//! The paper's architecture (Fig. 2) allows multiple driver servers, and
//! Algorithm 1's Bloom filter exists precisely for this setting: every
//! committed block contains transactions from *all* drivers, so each
//! driver's monitor must cheaply skip the foreign ones ("such process can
//! significantly save time and bring some other benefits in distributed
//! testing").
//!
//! [`run_distributed`] launches N full evaluations concurrently against a
//! shared deployment — disjoint workloads (per-driver seeds), one chain —
//! and reports per-driver plus combined results, including each driver's
//! index statistics so the foreign-transaction handling is observable.

use hammer_workload::{ControlSequence, WorkloadConfig};

use crate::deploy::Deployment;
use crate::driver::{EvalConfig, EvalError, EvalReport, Evaluation};
use crate::index::IndexStats;

/// Results of a distributed run.
#[derive(Clone, Debug)]
pub struct MultiDriverReport {
    /// One report per driver server, in driver-id order.
    pub per_driver: Vec<EvalReport>,
}

impl MultiDriverReport {
    /// Total committed transactions across drivers.
    pub fn combined_committed(&self) -> usize {
        self.per_driver.iter().map(|r| r.committed).sum()
    }

    /// Total submitted transactions across drivers.
    pub fn combined_submitted(&self) -> u64 {
        self.per_driver.iter().map(|r| r.submitted).sum()
    }

    /// Aggregate committed throughput: combined commits over the union
    /// span of all drivers.
    pub fn combined_tps(&self) -> f64 {
        let span = self
            .per_driver
            .iter()
            .map(|r| r.sim_duration.as_secs_f64())
            .fold(0.0f64, f64::max);
        if span <= 0.0 {
            return 0.0;
        }
        self.combined_committed() as f64 / span
    }

    /// Per-driver index statistics (Bloom rejections of foreign
    /// transactions, probe steps, expansions).
    pub fn index_stats(&self) -> Vec<Option<IndexStats>> {
        self.per_driver.iter().map(|r| r.index_stats).collect()
    }
}

/// Runs `drivers` evaluations concurrently against one deployment.
///
/// Driver `d` uses `workload.seed + d`, giving every driver a disjoint
/// transaction set and account pool on the shared chain; its transactions
/// are stamped with `server_id` offset so the Performance rows stay
/// attributable.
///
/// # Errors
///
/// Returns the first driver error encountered (remaining drivers still
/// run to completion).
pub fn run_distributed(
    deployment: &Deployment,
    workload: &WorkloadConfig,
    control: &ControlSequence,
    config: &EvalConfig,
    drivers: u32,
) -> Result<MultiDriverReport, EvalError> {
    if drivers == 0 {
        return Err(EvalError::InvalidConfig(
            "need at least one driver".to_owned(),
        ));
    }
    let mut results: Vec<Option<Result<EvalReport, EvalError>>> =
        (0..drivers).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for d in 0..drivers {
            let mut driver_workload = workload.clone();
            driver_workload.seed = workload.seed.wrapping_add(d as u64);
            let evaluation = Evaluation::new(config.clone());
            handles.push((
                d,
                scope.spawn(move || evaluation.run(deployment, &driver_workload, control)),
            ));
        }
        for (d, handle) in handles {
            results[d as usize] = Some(handle.join().expect("driver thread panicked"));
        }
    });
    let mut per_driver = Vec::with_capacity(drivers as usize);
    for result in results.into_iter().flatten() {
        per_driver.push(result?);
    }
    Ok(MultiDriverReport { per_driver })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ChainSpec;
    use crate::driver::TestingMode;
    use crate::machine::ClientMachine;
    use std::time::Duration;

    fn fast_config() -> EvalConfig {
        EvalConfig::builder()
            .machine(ClientMachine::unconstrained())
            .poll_interval(Duration::from_millis(20))
            .drain_timeout(Duration::from_secs(60))
            .build()
            .expect("valid config")
    }

    #[test]
    fn two_drivers_share_one_chain() {
        // Distributed runs pick the shared SUT by registry name, the way
        // a driver-server config file would.
        let deployment = crate::deploy::BackendRegistry::builtin()
            .deploy(
                "neuchain-sim",
                &crate::deploy::BackendOptions::default(),
                500.0,
            )
            .expect("neuchain-sim is a builtin backend");
        let workload = WorkloadConfig {
            accounts: 100,
            chain_name: "neuchain-sim".to_owned(),
            ..WorkloadConfig::default()
        };
        let control = ControlSequence::constant(50, 3, Duration::from_secs(1));
        let report = run_distributed(&deployment, &workload, &control, &fast_config(), 2).unwrap();
        assert_eq!(report.per_driver.len(), 2);
        assert_eq!(report.combined_submitted(), 300);
        assert!(
            report.combined_committed() > 260,
            "combined = {}",
            report.combined_committed()
        );
        // Every driver saw the other's transactions in the shared blocks
        // and skimmed them off with the Bloom filter.
        for stats in report.index_stats() {
            let stats = stats.expect("task processing exposes index stats");
            assert!(
                stats.bloom_rejections > 0,
                "no foreign transactions rejected: {stats:?}"
            );
        }
        assert!(report.combined_tps() > 0.0);
    }

    #[test]
    fn zero_drivers_rejected() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 500.0);
        let workload = WorkloadConfig::default();
        let control = ControlSequence::constant(10, 1, Duration::from_secs(1));
        assert!(matches!(
            run_distributed(&deployment, &workload, &control, &fast_config(), 0),
            Err(EvalError::InvalidConfig(_))
        ));
    }

    #[test]
    fn batch_baseline_drivers_have_no_index_stats() {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 500.0);
        let workload = WorkloadConfig {
            accounts: 50,
            chain_name: "neuchain-sim".to_owned(),
            ..WorkloadConfig::default()
        };
        let control = ControlSequence::constant(30, 2, Duration::from_secs(1));
        let config = EvalConfig::builder()
            .mode(TestingMode::BatchBaseline)
            .machine(ClientMachine::unconstrained())
            .poll_interval(Duration::from_millis(20))
            .drain_timeout(Duration::from_secs(60))
            .build()
            .expect("valid config");
        let report = run_distributed(&deployment, &workload, &control, &config, 1).unwrap();
        assert!(report.index_stats()[0].is_none());
    }
}
