//! A Proof-of-Work (Ethereum-style) blockchain simulator.
//!
//! Reproduces the performance-relevant mechanics of a pre-merge Ethereum
//! network, which is the low-throughput / high-latency extreme of the
//! paper's Fig. 6:
//!
//! * **PoW mining** — blocks are produced at exponentially distributed
//!   intervals (mean [`EthereumConfig::block_interval`], the classic 15 s);
//!   a configurable amount of real hash work is performed per block so CPU
//!   monitoring sees the miner burn cycles.
//! * **Gas-limited blocks** — each block packs transactions until
//!   [`EthereumConfig::block_gas_limit`] is reached, capping throughput at
//!   roughly `gas_limit / tx_gas / interval` TPS (~19 TPS with defaults,
//!   matching the paper's 18.6).
//! * **Order-execute** — transactions execute in block order against the
//!   world state; failed executions are included with `valid = false`
//!   (they still consumed gas).
//! * **Block gossip** — every sealed block is broadcast to the other
//!   worker nodes over the simulated network.
//!
//! Node scaffolding (threads, ingress gating, sealing, observability)
//! comes from the [`hammer_chain::kernel`]; this crate only contributes
//! the PoW [`ConsensusPolicy`].
//!
//! ```no_run
//! use hammer_chain::client::BlockchainClient;
//! use hammer_ethereum::{EthereumConfig, EthereumSim};
//! use hammer_net::{LinkConfig, SimClock, SimNetwork};
//!
//! let clock = SimClock::with_speedup(100.0);
//! let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
//! let chain = EthereumSim::start(EthereumConfig::default(), clock, net);
//! // ... submit transactions through the BlockchainClient trait ...
//! chain.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use hammer_chain::impl_sim_handle;
use hammer_chain::kernel::{
    ChainNode, ConsensusPolicy, Kernel, NodeKernelBuilder, Round, SimChain,
};
use hammer_crypto::sig::SigParams;
use hammer_net::{SimClock, SimNetwork};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the simulated PoW chain.
#[derive(Clone, Debug)]
pub struct EthereumConfig {
    /// Number of worker nodes (the paper deploys 5).
    pub nodes: usize,
    /// Mean block interval in simulated time (PoW => exponential).
    pub block_interval: Duration,
    /// Gas limit per block.
    pub block_gas_limit: u64,
    /// Gas consumed per transaction (21 000 for a simple transfer).
    pub tx_gas: u64,
    /// Mempool capacity (pending transaction pool).
    pub mempool_capacity: usize,
    /// Whether nodes verify client signatures at inclusion time.
    pub verify_signatures: bool,
    /// Signature scheme parameters (must match the submitting clients).
    pub sig_params: SigParams,
    /// SHA-256 evaluations of real hash work per sealed block (models the
    /// miner's CPU burn; keep small under high speed-ups).
    pub pow_hashes_per_block: u32,
    /// Simulated EVM execution cost per transaction.
    pub exec_cost_per_tx: Duration,
    /// RNG seed for block-interval sampling and proposer choice.
    pub seed: u64,
}

impl Default for EthereumConfig {
    fn default() -> Self {
        EthereumConfig {
            nodes: 5,
            block_interval: Duration::from_secs(15),
            block_gas_limit: 6_000_000,
            tx_gas: 21_000,
            mempool_capacity: 20_000,
            verify_signatures: true,
            sig_params: SigParams::fast(),
            pow_hashes_per_block: 5_000,
            exec_cost_per_tx: Duration::from_micros(300),
            seed: 7,
        }
    }
}

impl EthereumConfig {
    /// Maximum transactions per block under the gas limit.
    pub fn max_txs_per_block(&self) -> usize {
        (self.block_gas_limit / self.tx_gas.max(1)) as usize
    }
}

/// Counters describing chain activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct EthereumStats {
    /// Blocks sealed.
    pub blocks: u64,
    /// Transactions committed successfully.
    pub committed: u64,
    /// Transactions included but failed execution.
    pub failed: u64,
    /// Transactions dropped for bad signatures.
    pub bad_sig: u64,
}

fn node_name(i: usize) -> String {
    format!("eth-node-{i}")
}

/// The PoW consensus core: exponential block intervals, a real hash burn
/// per block, gas-capped packing, and order-execute semantics.
pub struct EthereumPolicy {
    config: EthereumConfig,
    rng: Mutex<StdRng>,
}

impl ConsensusPolicy for EthereumPolicy {
    fn chain_name(&self) -> &'static str {
        "ethereum-sim"
    }

    fn ingress_node(&self, _shard: u32) -> String {
        node_name(0)
    }

    fn seal_wait(&self, _shard: u32) -> Duration {
        // Exponential inter-block time (PoW is memoryless).
        let mean = self.config.block_interval.as_secs_f64();
        Duration::from_secs_f64(sample_exponential(&mut *self.rng.lock(), mean))
    }

    fn build_round(&self, kernel: &Kernel, shard: u32) -> Option<Round> {
        // Real hash work: the PoW burn.
        let (mut digest, proposer_idx) = {
            let mut rng = self.rng.lock();
            let mut pow_input = [0u8; 32];
            rng.fill(&mut pow_input);
            (pow_input, rng.gen_range(0..self.config.nodes))
        };
        for _ in 0..self.config.pow_hashes_per_block {
            digest = hammer_crypto::sha256(&digest);
        }

        // Pack the block under the gas limit.
        let ctx = kernel.shard(shard);
        let mut txs = ctx.mempool.drain(self.config.max_txs_per_block());
        // Verify the whole candidate set in one batch before touching the
        // state lock: repeated sender keys share a precomputed table, and
        // the lock is never held across signature checks.
        if self.config.verify_signatures {
            kernel.verify_retain(&mut txs, &self.config.sig_params);
        }
        // Model aggregate EVM execution time.
        if !txs.is_empty() {
            kernel
                .clock()
                .sleep(self.config.exec_cost_per_tx * txs.len() as u32);
        }

        let mut tx_ids = Vec::with_capacity(txs.len());
        let mut valid = Vec::with_capacity(txs.len());
        {
            let mut state = ctx.state.lock();
            for tx in &txs {
                tx_ids.push(tx.id);
                valid.push(state.apply(&tx.tx.op).is_ok());
            }
        }

        // PoW seals empty blocks too; gossip goes to every other worker.
        Some(Round {
            proposer: node_name(proposer_idx),
            tx_ids,
            valid,
            gossip_to: (0..self.config.nodes)
                .filter(|i| *i != proposer_idx)
                .map(node_name)
                .collect(),
            mempool_depth: None,
        })
    }
}

/// Handle to a running PoW chain simulation.
pub struct EthereumSim {
    node: Arc<ChainNode<EthereumPolicy>>,
}

impl_sim_handle!(EthereumSim);

impl EthereumSim {
    /// Starts the chain on the kernel runtime: registers node endpoints
    /// with gossip sinks and spawns the miner (sealer) thread.
    pub fn start(config: EthereumConfig, clock: SimClock, net: SimNetwork) -> Arc<Self> {
        assert!(config.nodes >= 1, "need at least one node");
        let mut builder = NodeKernelBuilder::new(clock, net)
            .mempool_capacity(config.mempool_capacity)
            .gossip_sizing(200, 110);
        for i in 0..config.nodes {
            builder = builder.sink_endpoint(&node_name(i));
        }
        let rng = Mutex::new(StdRng::seed_from_u64(config.seed));
        let node = builder.start(EthereumPolicy { config, rng });
        Arc::new(EthereumSim { node })
    }

    /// Directly seeds an account into the world state (test fixtures /
    /// SmallBank account pre-population, which real deployments do with a
    /// genesis allocation).
    pub fn seed_account(&self, account: hammer_chain::types::Address, checking: u64, savings: u64) {
        SimChain::seed_account(&*self.node, account, checking, savings);
    }

    /// Snapshot of activity counters.
    pub fn stats(&self) -> EthereumStats {
        let stats = self.node.stats();
        EthereumStats {
            blocks: stats.blocks,
            committed: stats.committed,
            failed: stats.failed,
            bad_sig: stats.bad_sig,
        }
    }

    /// Reads an account's state.
    pub fn account(
        &self,
        account: hammer_chain::types::Address,
    ) -> Option<hammer_chain::state::AccountState> {
        SimChain::account(&*self.node, account)
    }

    /// Verifies the internal hash chain.
    pub fn verify_ledger(&self) -> Result<(), hammer_chain::ledger::LedgerError> {
        self.node.verify_ledgers()
    }
}

/// Samples an exponential distribution with the given mean.
fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::client::BlockchainClient;
    use hammer_chain::smallbank::Op;
    use hammer_chain::types::{Address, SignedTransaction, Transaction};
    use hammer_crypto::Keypair;
    use hammer_net::LinkConfig;

    fn fast_chain(config: EthereumConfig) -> (Arc<EthereumSim>, SimClock) {
        let clock = SimClock::with_speedup(2000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        (EthereumSim::start(config, clock.clone(), net), clock)
    }

    fn signed(nonce: u64, op: Op) -> SignedTransaction {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op,
            chain_name: "ethereum-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
        }
        .sign(&Keypair::from_seed(1), &SigParams::fast())
    }

    fn wait_for_height(chain: &EthereumSim, h: u64, wall_ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(wall_ms);
        while std::time::Instant::now() < deadline {
            if chain.latest_height(0).unwrap() >= h {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn mines_blocks_and_commits_txs() {
        let (chain, _clock) = fast_chain(EthereumConfig {
            block_interval: Duration::from_secs(2),
            ..EthereumConfig::default()
        });
        chain.seed_account(Address::from_name("a"), 1000, 0);
        let id = chain
            .submit(signed(
                1,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 5,
                },
            ))
            .unwrap();
        assert!(wait_for_height(&chain, 1, 5000), "no block mined");
        // The tx should land in some block.
        let mut found = false;
        for h in 1..=chain.latest_height(0).unwrap() {
            if let Some(b) = chain.block_at(0, h).unwrap() {
                if b.tx_ids.contains(&id) {
                    found = true;
                    assert!(b.valid[b.tx_ids.iter().position(|t| *t == id).unwrap()]);
                }
            }
        }
        assert!(found, "tx never included");
        assert_eq!(
            chain.account(Address::from_name("a")).unwrap().checking,
            1005
        );
        chain.shutdown();
    }

    #[test]
    fn failed_execution_included_invalid() {
        let (chain, _clock) = fast_chain(EthereumConfig {
            block_interval: Duration::from_secs(1),
            ..EthereumConfig::default()
        });
        // Withdraw from a non-existent account fails execution.
        let id = chain
            .submit(signed(
                1,
                Op::WriteCheck {
                    account: Address::from_name("ghost"),
                    amount: 5,
                },
            ))
            .unwrap();
        assert!(wait_for_height(&chain, 1, 5000));
        std::thread::sleep(Duration::from_millis(50));
        let mut status = None;
        for h in 1..=chain.latest_height(0).unwrap() {
            if let Some(b) = chain.block_at(0, h).unwrap() {
                if let Some(pos) = b.tx_ids.iter().position(|t| *t == id) {
                    status = Some(b.valid[pos]);
                }
            }
        }
        assert_eq!(status, Some(false));
        assert_eq!(chain.stats().failed, 1);
        chain.shutdown();
    }

    #[test]
    fn commit_events_published() {
        let (chain, _clock) = fast_chain(EthereumConfig {
            block_interval: Duration::from_secs(1),
            ..EthereumConfig::default()
        });
        let rx = chain.subscribe_commits();
        chain.seed_account(Address::from_name("a"), 100, 0);
        let id = chain
            .submit(signed(
                1,
                Op::Balance {
                    account: Address::from_name("a"),
                },
            ))
            .unwrap();
        let event = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(event.tx_id, id);
        assert!(event.success);
        chain.shutdown();
    }

    #[test]
    fn gas_limit_caps_block_size() {
        let (chain, _clock) = fast_chain(EthereumConfig {
            block_interval: Duration::from_secs(2),
            block_gas_limit: 210_000, // 10 txs max
            ..EthereumConfig::default()
        });
        chain.seed_account(Address::from_name("a"), 1_000_000, 0);
        for i in 0..25 {
            chain
                .submit(signed(
                    i,
                    Op::DepositChecking {
                        account: Address::from_name("a"),
                        amount: 1,
                    },
                ))
                .unwrap();
        }
        assert!(wait_for_height(&chain, 1, 5000));
        for h in 1..=chain.latest_height(0).unwrap() {
            let b = chain.block_at(0, h).unwrap().unwrap();
            assert!(b.len() <= 10, "block has {} txs", b.len());
        }
        chain.shutdown();
    }

    #[test]
    fn rejects_wrong_shard() {
        let (chain, _clock) = fast_chain(EthereumConfig::default());
        assert_eq!(chain.latest_height(1).unwrap_err().shard(), Some(1));
        assert_eq!(chain.block_at(2, 1).unwrap_err().shard(), Some(2));
        chain.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let (chain, _clock) = fast_chain(EthereumConfig::default());
        chain.shutdown();
        let err = chain.submit(signed(1, Op::KvGet { key: 1 })).unwrap_err();
        assert!(err.is_shutdown());
        assert!(!err.is_retryable());
    }

    #[test]
    fn duplicate_submission_rejected() {
        let (chain, _clock) = fast_chain(EthereumConfig {
            block_interval: Duration::from_secs(600), // effectively never mine
            ..EthereumConfig::default()
        });
        let tx = signed(1, Op::KvGet { key: 1 });
        chain.submit(tx.clone()).unwrap();
        let err = chain.submit(tx).unwrap_err();
        assert!(err.rejection().is_some());
        assert!(!err.is_retryable(), "duplicates must not be retried");
    }

    #[test]
    fn blackholed_node_times_out_ingress() {
        use hammer_chain::client::ErrorKind;
        use hammer_net::FaultPlan;
        let (chain, _clock) = fast_chain(EthereumConfig::default());
        chain.node.net().install_faults(FaultPlan::new().blackhole(
            "eth-node-0",
            Duration::ZERO,
            Duration::from_secs(3600),
        ));
        let err = chain.submit(signed(1, Op::KvGet { key: 1 })).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Transient);
        assert!(err.is_retryable());
        chain.shutdown();
    }

    #[test]
    fn ledger_chain_verifies() {
        let (chain, _clock) = fast_chain(EthereumConfig {
            block_interval: Duration::from_millis(500),
            ..EthereumConfig::default()
        });
        chain.seed_account(Address::from_name("a"), 1000, 0);
        for i in 0..10 {
            let _ = chain.submit(signed(
                i,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 1,
                },
            ));
        }
        assert!(wait_for_height(&chain, 3, 8000));
        chain.shutdown();
        chain.verify_ledger().unwrap();
    }

    #[test]
    fn exponential_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| sample_exponential(&mut rng, 3.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean = {mean}");
    }
}
