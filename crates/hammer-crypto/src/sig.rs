//! A Schnorr-style signature scheme over the Mersenne prime field
//! `p = 2^61 - 1`.
//!
//! # Why a from-scratch toy scheme?
//!
//! Hammer's asynchronous-signature optimisation (paper §III-D1, Fig. 8) is
//! about the *computational cost* of signing every workload transaction. What
//! the experiments need is a real sign/verify API whose cost is comparable to
//! production ECDSA and cannot be optimised away. This scheme is
//! **educational strength only** (a 61-bit modulus is trivially breakable);
//! its purpose is a faithful cost and API profile, not security. The
//! [`SigParams::cost_factor`] knob sets the number of hash-hardening rounds
//! used to derive the challenge, which lets benchmarks dial signing cost to
//! match production signers.
//!
//! # Construction
//!
//! Classic Schnorr in the multiplicative group of `Z_p`:
//!
//! * secret `x`, public `y = g^x mod p`
//! * sign: deterministic nonce `k` (HMAC of secret and message, RFC-6979
//!   style), `r = g^k`, challenge `e = H*(r || m || y)`,
//!   `s = k + e·x mod (p-1)`
//! * verify: `g^s == r · y^e (mod p)`
//!
//! where `H*` is SHA-256 iterated [`SigParams::cost_factor`] times.
//!
//! Reducing exponents modulo `p-1` is valid for any base because the group
//! order divides `p-1` (Fermat), so correctness does not depend on the order
//! of `g`.

use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;

/// The Mersenne prime modulus `2^61 - 1`.
pub const P: u64 = (1u64 << 61) - 1;
/// Order of the full multiplicative group, `p - 1`.
pub const GROUP_ORDER: u64 = P - 1;
/// The group generator.
pub const G: u64 = 3;

/// Scheme parameters.
///
/// The only knob is `cost_factor`, the number of SHA-256 rounds applied when
/// deriving the challenge. Both signing and verification perform the same
/// rounds, so the knob scales both costs together, mimicking heavier curves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SigParams {
    /// Number of challenge-hardening hash rounds (minimum 1).
    pub cost_factor: u32,
}

impl SigParams {
    /// Cheapest valid parameters; use in unit tests.
    pub fn fast() -> Self {
        SigParams { cost_factor: 1 }
    }

    /// Parameters tuned so one signature costs on the order of a production
    /// ECDSA signature (tens of microseconds).
    pub fn realistic() -> Self {
        SigParams { cost_factor: 200 }
    }

    /// Custom cost. Values below 1 are clamped to 1.
    pub fn with_cost(cost_factor: u32) -> Self {
        SigParams {
            cost_factor: cost_factor.max(1),
        }
    }
}

impl Default for SigParams {
    fn default() -> Self {
        Self::realistic()
    }
}

/// A Schnorr-style signature `(r, s)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Commitment `g^k mod p`.
    pub r: u64,
    /// Response `k + e·x mod (p-1)`.
    pub s: u64,
}

impl Signature {
    /// Serialises to 16 bytes (big-endian `r` then `s`).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.r.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses 16 bytes produced by [`Signature::to_bytes`]. Returns `None`
    /// when either component is out of range.
    pub fn from_bytes(bytes: &[u8; 16]) -> Option<Self> {
        let r = u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes"));
        let s = u64::from_be_bytes(bytes[8..].try_into().expect("8 bytes"));
        if r >= P || s >= GROUP_ORDER {
            return None;
        }
        Some(Signature { r, s })
    }
}

/// Multiplication modulo the Mersenne prime `P`, exploiting
/// `2^61 ≡ 1 (mod p)` for a division-free reduction.
#[inline]
pub fn mul_mod(a: u64, b: u64, ) -> u64 {
    debug_assert!(a < P && b < P);
    let wide = (a as u128) * (b as u128);
    let lo = (wide & ((1u128 << 61) - 1)) as u64;
    let hi = (wide >> 61) as u64;
    let mut r = lo + hi;
    if r >= P {
        r -= P;
    }
    r
}

/// Modular exponentiation `base^exp mod P` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    base %= P;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

/// Addition modulo `GROUP_ORDER`.
#[inline]
fn add_mod_order(a: u64, b: u64) -> u64 {
    let sum = (a as u128) + (b as u128);
    (sum % GROUP_ORDER as u128) as u64
}

/// Multiplication modulo `GROUP_ORDER`.
#[inline]
fn mul_mod_order(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % GROUP_ORDER as u128) as u64
}

/// Derives the hardened challenge `e` for message `msg` under commitment `r`
/// and public key `y`.
fn challenge(r: u64, msg: &[u8], y: u64, params: &SigParams) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(msg);
    h.update(&y.to_be_bytes());
    let mut digest = h.finalize();
    for _ in 1..params.cost_factor.max(1) {
        digest = crate::sha256(&digest);
    }
    let e = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
    e % GROUP_ORDER
}

/// Deterministic nonce derivation (RFC-6979 style): `k = HMAC(x, msg)`,
/// re-derived with a counter until nonzero.
fn derive_nonce(secret: u64, msg: &[u8]) -> u64 {
    let key = secret.to_be_bytes();
    let mut counter: u32 = 0;
    loop {
        let mut input = Vec::with_capacity(msg.len() + 4);
        input.extend_from_slice(msg);
        input.extend_from_slice(&counter.to_be_bytes());
        let mac = hmac_sha256(&key, &input);
        let k = u64::from_be_bytes(mac[..8].try_into().expect("8 bytes")) % GROUP_ORDER;
        if k != 0 {
            return k;
        }
        counter += 1;
    }
}

/// Signs `msg` with secret scalar `x` (must be in `[1, GROUP_ORDER)`).
pub fn sign(x: u64, msg: &[u8], params: &SigParams) -> Signature {
    debug_assert!(x >= 1 && x < GROUP_ORDER);
    let k = derive_nonce(x, msg);
    let r = pow_mod(G, k);
    let y = pow_mod(G, x);
    let e = challenge(r, msg, y, params);
    let s = add_mod_order(k, mul_mod_order(e, x));
    Signature { r, s }
}

/// Verifies a signature over `msg` against public key `y`.
pub fn verify(y: u64, msg: &[u8], sig: &Signature, params: &SigParams) -> bool {
    if sig.r == 0 || sig.r >= P || y == 0 || y >= P {
        return false;
    }
    let e = challenge(sig.r, msg, y, params);
    let lhs = pow_mod(G, sig.s);
    let rhs = mul_mod(sig.r, pow_mod(y, e));
    lhs == rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mul_mod_small_values() {
        assert_eq!(mul_mod(3, 4), 12);
        assert_eq!(mul_mod(P - 1, 1), P - 1);
        // (p-1)^2 = p^2 - 2p + 1 ≡ 1 (mod p)
        assert_eq!(mul_mod(P - 1, P - 1), 1);
    }

    #[test]
    fn pow_mod_fermat() {
        // a^(p-1) ≡ 1 for a not divisible by p.
        for a in [2u64, 3, 7, 12345, P - 2] {
            assert_eq!(pow_mod(a, P - 1), 1, "a={a}");
        }
    }

    #[test]
    fn pow_mod_edge_cases() {
        assert_eq!(pow_mod(5, 0), 1);
        assert_eq!(pow_mod(0, 5), 0);
        assert_eq!(pow_mod(1, u64::MAX), 1);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let params = SigParams::fast();
        let x = 0x1234_5678_9abc_u64;
        let y = pow_mod(G, x);
        let sig = sign(x, b"hello", &params);
        assert!(verify(y, b"hello", &sig, &params));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let params = SigParams::fast();
        let x = 42u64;
        let y = pow_mod(G, x);
        let sig = sign(x, b"msg A", &params);
        assert!(!verify(y, b"msg B", &sig, &params));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let params = SigParams::fast();
        let sig = sign(42, b"msg", &params);
        let wrong_y = pow_mod(G, 43);
        assert!(!verify(wrong_y, b"msg", &sig, &params));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let params = SigParams::fast();
        let x = 777u64;
        let y = pow_mod(G, x);
        let sig = sign(x, b"msg", &params);
        let bad_r = Signature { r: sig.r ^ 1, ..sig };
        let bad_s = Signature { s: (sig.s + 1) % GROUP_ORDER, ..sig };
        assert!(!verify(y, b"msg", &bad_r, &params));
        assert!(!verify(y, b"msg", &bad_s, &params));
    }

    #[test]
    fn cost_factor_changes_challenge_but_roundtrips() {
        let x = 99u64;
        let y = pow_mod(G, x);
        let p1 = SigParams::with_cost(1);
        let p5 = SigParams::with_cost(5);
        let s1 = sign(x, b"m", &p1);
        let s5 = sign(x, b"m", &p5);
        assert_ne!(s1.s, s5.s, "different hardening must change the response");
        assert!(verify(y, b"m", &s1, &p1));
        assert!(verify(y, b"m", &s5, &p5));
        // Mixing parameter sets must fail.
        assert!(!verify(y, b"m", &s1, &p5));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let sig = sign(1234, b"bytes", &SigParams::fast());
        let bytes = sig.to_bytes();
        assert_eq!(Signature::from_bytes(&bytes), Some(sig));
    }

    #[test]
    fn signature_from_bytes_rejects_out_of_range() {
        let mut bytes = [0xffu8; 16];
        assert_eq!(Signature::from_bytes(&bytes), None);
        bytes = sign(5, b"x", &SigParams::fast()).to_bytes();
        assert!(Signature::from_bytes(&bytes).is_some());
    }

    #[test]
    fn deterministic_signing() {
        let params = SigParams::fast();
        assert_eq!(sign(7, b"same", &params), sign(7, b"same", &params));
        assert_ne!(sign(7, b"same", &params), sign(7, b"diff", &params));
    }

    proptest! {
        #[test]
        fn prop_sign_verify(x in 1u64..GROUP_ORDER, msg in proptest::collection::vec(any::<u8>(), 0..64)) {
            let params = SigParams::fast();
            let y = pow_mod(G, x);
            let sig = sign(x, &msg, &params);
            prop_assert!(verify(y, &msg, &sig, &params));
        }

        #[test]
        fn prop_mul_mod_matches_naive(a in 0u64..P, b in 0u64..P) {
            let expect = ((a as u128 * b as u128) % P as u128) as u64;
            prop_assert_eq!(mul_mod(a, b), expect);
        }

        #[test]
        fn prop_wrong_message_rejected(x in 1u64..GROUP_ORDER, msg in proptest::collection::vec(any::<u8>(), 1..32)) {
            let params = SigParams::fast();
            let y = pow_mod(G, x);
            let sig = sign(x, &msg, &params);
            let mut tampered = msg.clone();
            tampered[0] ^= 0xff;
            prop_assert!(!verify(y, &tampered, &sig, &params));
        }
    }
}
