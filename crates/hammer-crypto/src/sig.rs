//! A Schnorr-style signature scheme over the Mersenne prime field
//! `p = 2^61 - 1`.
//!
//! # Why a from-scratch toy scheme?
//!
//! Hammer's asynchronous-signature optimisation (paper §III-D1, Fig. 8) is
//! about the *computational cost* of signing every workload transaction. What
//! the experiments need is a real sign/verify API whose cost is comparable to
//! production ECDSA and cannot be optimised away. This scheme is
//! **educational strength only** (a 61-bit modulus is trivially breakable);
//! its purpose is a faithful cost and API profile, not security. The
//! [`SigParams::cost_factor`] knob sets the number of hash-hardening rounds
//! used to derive the challenge, which lets benchmarks dial signing cost to
//! match production signers.
//!
//! # Construction
//!
//! Classic Schnorr in the multiplicative group of `Z_p`:
//!
//! * secret `x`, public `y = g^x mod p`
//! * sign: deterministic nonce `k` (HMAC of secret and message, RFC-6979
//!   style), `r = g^k`, challenge `e = H*(r || m || y)`,
//!   `s = k + e·x mod (p-1)`
//! * verify: `g^s == r · y^e (mod p)`
//!
//! where `H*` is SHA-256 iterated [`SigParams::cost_factor`] times.
//!
//! Reducing exponents modulo `p-1` is valid for any base because the group
//! order divides `p-1` (Fermat), so correctness does not depend on the order
//! of `g`.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;

/// The Mersenne prime modulus `2^61 - 1`.
pub const P: u64 = (1u64 << 61) - 1;
/// Order of the full multiplicative group, `p - 1`.
pub const GROUP_ORDER: u64 = P - 1;
/// The group generator.
pub const G: u64 = 3;

/// Scheme parameters.
///
/// The only knob is `cost_factor`, the number of SHA-256 rounds applied when
/// deriving the challenge. Both signing and verification perform the same
/// rounds, so the knob scales both costs together, mimicking heavier curves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SigParams {
    /// Number of challenge-hardening hash rounds (minimum 1).
    pub cost_factor: u32,
}

impl SigParams {
    /// Cheapest valid parameters; use in unit tests.
    pub fn fast() -> Self {
        SigParams { cost_factor: 1 }
    }

    /// Parameters tuned so one signature costs on the order of a production
    /// ECDSA signature (tens of microseconds).
    pub fn realistic() -> Self {
        SigParams { cost_factor: 200 }
    }

    /// Custom cost. Values below 1 are clamped to 1.
    pub fn with_cost(cost_factor: u32) -> Self {
        SigParams {
            cost_factor: cost_factor.max(1),
        }
    }
}

impl Default for SigParams {
    fn default() -> Self {
        Self::realistic()
    }
}

/// A Schnorr-style signature `(r, s)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Commitment `g^k mod p`.
    pub r: u64,
    /// Response `k + e·x mod (p-1)`.
    pub s: u64,
}

impl Signature {
    /// Serialises to 16 bytes (big-endian `r` then `s`).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.r.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses 16 bytes produced by [`Signature::to_bytes`]. Returns `None`
    /// when either component is out of range.
    pub fn from_bytes(bytes: &[u8; 16]) -> Option<Self> {
        let r = u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes"));
        let s = u64::from_be_bytes(bytes[8..].try_into().expect("8 bytes"));
        if r >= P || s >= GROUP_ORDER {
            return None;
        }
        Some(Signature { r, s })
    }
}

/// Multiplication modulo the Mersenne prime `P`, exploiting
/// `2^61 ≡ 1 (mod p)` for a division-free reduction.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let wide = (a as u128) * (b as u128);
    let lo = (wide & ((1u128 << 61) - 1)) as u64;
    let hi = (wide >> 61) as u64;
    let mut r = lo + hi;
    if r >= P {
        r -= P;
    }
    r
}

/// Modular exponentiation `base^exp mod P` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    base %= P;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

/// Precomputed table for fixed-base exponentiation by the windowed
/// (2^w-ary) method.
///
/// For a fixed `base` and window width `w`, row `i` stores
/// `base^(d · 2^(i·w))` for every digit `d < 2^w`. An exponent is then
/// split into base-2^w digits and `base^exp` is the product of one
/// table entry per nonzero digit — no squarings at exponentiation
/// time. With `w = 8` that is at most 7 multiplications per
/// exponentiation against ~90 for square-and-multiply on 61-bit
/// exponents, an order-of-magnitude win on the signing hot path.
///
/// Tables cover the full 64-bit exponent range, so [`FixedBaseTable::pow`]
/// agrees with [`pow_mod`] for every `u64` exponent.
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    window: u32,
    /// `rows × 2^window` entries, flattened row-major.
    entries: Vec<u64>,
}

impl FixedBaseTable {
    /// Builds the table for `base` with the given window width
    /// (1..=16; 8 is the sweet spot for a shared long-lived table,
    /// 4 keeps build cost low for per-key throwaway tables).
    pub fn new(base: u64, window: u32) -> Self {
        assert!((1..=16).contains(&window), "window width out of range");
        let rows = 64u32.div_ceil(window) as usize;
        let width = 1usize << window;
        let mut entries = vec![1u64; rows * width];
        // row_base starts at base^(2^0) and advances by 2^window per row.
        let mut row_base = base % P;
        for row in 0..rows {
            let slots = &mut entries[row * width..(row + 1) * width];
            for d in 1..width {
                slots[d] = mul_mod(slots[d - 1], row_base);
            }
            if row + 1 < rows {
                let next = mul_mod(slots[width - 1], row_base);
                row_base = next;
            }
        }
        FixedBaseTable { window, entries }
    }

    /// `base^exp mod P` via table lookups; equals `pow_mod(base, exp)`.
    #[inline]
    pub fn pow(&self, mut exp: u64) -> u64 {
        let mask = (1u64 << self.window) - 1;
        let width = 1usize << self.window;
        let mut acc = 1u64;
        let mut row = 0usize;
        while exp != 0 {
            let digit = (exp & mask) as usize;
            if digit != 0 {
                acc = mul_mod(acc, self.entries[row * width + digit]);
            }
            exp >>= self.window;
            row += 1;
        }
        acc
    }
}

/// Window width of the shared generator table: 8 rows × 256 entries
/// (16 KiB), built once per process.
const G_WINDOW: u32 = 8;

/// Window width for per-key tables in [`verify_batch`]: 16 rows × 16
/// entries, cheap enough to amortise over a handful of signatures.
const BATCH_KEY_WINDOW: u32 = 4;

/// How many signatures under one public key justify building it a
/// table in [`verify_batch`]. Build cost is ~`16·2^4` multiplications;
/// each use saves ~75, so the table pays for itself at about four.
const BATCH_KEY_MIN_USES: usize = 4;

fn g_table() -> &'static FixedBaseTable {
    static TABLE: OnceLock<FixedBaseTable> = OnceLock::new();
    TABLE.get_or_init(|| FixedBaseTable::new(G, G_WINDOW))
}

/// `G^exp mod P` through the shared precomputed generator table.
///
/// Identical results to `pow_mod(G, exp)`; roughly an order of
/// magnitude faster after the first call.
#[inline]
pub fn pow_g(exp: u64) -> u64 {
    g_table().pow(exp)
}

/// Addition modulo `GROUP_ORDER`.
#[inline]
fn add_mod_order(a: u64, b: u64) -> u64 {
    let sum = (a as u128) + (b as u128);
    (sum % GROUP_ORDER as u128) as u64
}

/// Multiplication modulo `GROUP_ORDER`.
#[inline]
fn mul_mod_order(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % GROUP_ORDER as u128) as u64
}

/// Derives the hardened challenge `e` for message `msg` under commitment `r`
/// and public key `y`.
fn challenge(r: u64, msg: &[u8], y: u64, params: &SigParams) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(msg);
    h.update(&y.to_be_bytes());
    let mut digest = h.finalize();
    for _ in 1..params.cost_factor.max(1) {
        digest = crate::sha256(&digest);
    }
    let e = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
    e % GROUP_ORDER
}

/// Deterministic nonce derivation (RFC-6979 style): `k = HMAC(x, msg)`,
/// re-derived with a counter until nonzero.
fn derive_nonce(secret: u64, msg: &[u8]) -> u64 {
    let key = secret.to_be_bytes();
    let mut counter: u32 = 0;
    loop {
        let mut input = Vec::with_capacity(msg.len() + 4);
        input.extend_from_slice(msg);
        input.extend_from_slice(&counter.to_be_bytes());
        let mac = hmac_sha256(&key, &input);
        let k = u64::from_be_bytes(mac[..8].try_into().expect("8 bytes")) % GROUP_ORDER;
        if k != 0 {
            return k;
        }
        counter += 1;
    }
}

/// Signs `msg` with secret scalar `x` (must be in `[1, GROUP_ORDER)`).
///
/// Derives the public key on every call; hot paths that sign many
/// messages under one key should use [`sign_with_key`] with a cached
/// public key instead.
pub fn sign(x: u64, msg: &[u8], params: &SigParams) -> Signature {
    sign_with_key(x, pow_g(x), msg, params)
}

/// Signs `msg` with secret scalar `x` and its precomputed public key
/// `y = g^x`. Identical output to [`sign`], minus the per-call
/// public-key exponentiation.
pub fn sign_with_key(x: u64, y: u64, msg: &[u8], params: &SigParams) -> Signature {
    debug_assert!((1..GROUP_ORDER).contains(&x));
    debug_assert_eq!(y, pow_g(x), "public key does not match secret");
    let k = derive_nonce(x, msg);
    let r = pow_g(k);
    let e = challenge(r, msg, y, params);
    let s = add_mod_order(k, mul_mod_order(e, x));
    Signature { r, s }
}

/// Verifies a signature over `msg` against public key `y`.
pub fn verify(y: u64, msg: &[u8], sig: &Signature, params: &SigParams) -> bool {
    if sig.r == 0 || sig.r >= P || y == 0 || y >= P {
        return false;
    }
    let e = challenge(sig.r, msg, y, params);
    let lhs = pow_g(sig.s);
    let rhs = mul_mod(sig.r, pow_mod(y, e));
    lhs == rhs
}

/// One entry in a [`verify_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct VerifyItem<'a> {
    /// Public key the signature claims to be under.
    pub y: u64,
    /// The signed message.
    pub msg: &'a [u8],
    /// The signature to check.
    pub sig: Signature,
}

/// Verifies many signatures, amortising shared work.
///
/// Returns one verdict per item, exactly equal to what
/// [`verify`] would return for it — including for corrupted entries —
/// so callers can mix keys freely. Speedup comes from two sources: the
/// `g^s` side always goes through the shared generator table, and any
/// public key appearing `BATCH_KEY_MIN_USES`+ times gets a throwaway
/// fixed-base table for its `y^e` side (block-sized bursts from one
/// signer are the common case in chain simulators).
pub fn verify_batch(items: &[VerifyItem<'_>], params: &SigParams) -> Vec<bool> {
    let mut uses: HashMap<u64, usize> = HashMap::new();
    for item in items {
        *uses.entry(item.y).or_insert(0) += 1;
    }
    let tables: HashMap<u64, FixedBaseTable> = uses
        .into_iter()
        .filter(|&(y, n)| n >= BATCH_KEY_MIN_USES && y != 0 && y < P)
        .map(|(y, _)| (y, FixedBaseTable::new(y, BATCH_KEY_WINDOW)))
        .collect();
    items
        .iter()
        .map(|item| {
            let (y, sig) = (item.y, item.sig);
            if sig.r == 0 || sig.r >= P || y == 0 || y >= P {
                return false;
            }
            let e = challenge(sig.r, item.msg, y, params);
            let y_pow_e = match tables.get(&y) {
                Some(table) => table.pow(e),
                None => pow_mod(y, e),
            };
            pow_g(sig.s) == mul_mod(sig.r, y_pow_e)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mul_mod_small_values() {
        assert_eq!(mul_mod(3, 4), 12);
        assert_eq!(mul_mod(P - 1, 1), P - 1);
        // (p-1)^2 = p^2 - 2p + 1 ≡ 1 (mod p)
        assert_eq!(mul_mod(P - 1, P - 1), 1);
    }

    #[test]
    fn pow_mod_fermat() {
        // a^(p-1) ≡ 1 for a not divisible by p.
        for a in [2u64, 3, 7, 12345, P - 2] {
            assert_eq!(pow_mod(a, P - 1), 1, "a={a}");
        }
    }

    #[test]
    fn pow_mod_edge_cases() {
        assert_eq!(pow_mod(5, 0), 1);
        assert_eq!(pow_mod(0, 5), 0);
        assert_eq!(pow_mod(1, u64::MAX), 1);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let params = SigParams::fast();
        let x = 0x1234_5678_9abc_u64;
        let y = pow_mod(G, x);
        let sig = sign(x, b"hello", &params);
        assert!(verify(y, b"hello", &sig, &params));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let params = SigParams::fast();
        let x = 42u64;
        let y = pow_mod(G, x);
        let sig = sign(x, b"msg A", &params);
        assert!(!verify(y, b"msg B", &sig, &params));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let params = SigParams::fast();
        let sig = sign(42, b"msg", &params);
        let wrong_y = pow_mod(G, 43);
        assert!(!verify(wrong_y, b"msg", &sig, &params));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let params = SigParams::fast();
        let x = 777u64;
        let y = pow_mod(G, x);
        let sig = sign(x, b"msg", &params);
        let bad_r = Signature {
            r: sig.r ^ 1,
            ..sig
        };
        let bad_s = Signature {
            s: (sig.s + 1) % GROUP_ORDER,
            ..sig
        };
        assert!(!verify(y, b"msg", &bad_r, &params));
        assert!(!verify(y, b"msg", &bad_s, &params));
    }

    #[test]
    fn cost_factor_changes_challenge_but_roundtrips() {
        let x = 99u64;
        let y = pow_mod(G, x);
        let p1 = SigParams::with_cost(1);
        let p5 = SigParams::with_cost(5);
        let s1 = sign(x, b"m", &p1);
        let s5 = sign(x, b"m", &p5);
        assert_ne!(s1.s, s5.s, "different hardening must change the response");
        assert!(verify(y, b"m", &s1, &p1));
        assert!(verify(y, b"m", &s5, &p5));
        // Mixing parameter sets must fail.
        assert!(!verify(y, b"m", &s1, &p5));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let sig = sign(1234, b"bytes", &SigParams::fast());
        let bytes = sig.to_bytes();
        assert_eq!(Signature::from_bytes(&bytes), Some(sig));
    }

    #[test]
    fn signature_from_bytes_rejects_out_of_range() {
        let mut bytes = [0xffu8; 16];
        assert_eq!(Signature::from_bytes(&bytes), None);
        bytes = sign(5, b"x", &SigParams::fast()).to_bytes();
        assert!(Signature::from_bytes(&bytes).is_some());
    }

    #[test]
    fn deterministic_signing() {
        let params = SigParams::fast();
        assert_eq!(sign(7, b"same", &params), sign(7, b"same", &params));
        assert_ne!(sign(7, b"same", &params), sign(7, b"diff", &params));
    }

    #[test]
    fn fixed_base_table_matches_pow_mod_edges() {
        for window in [1u32, 4, 8, 13, 16] {
            let table = FixedBaseTable::new(G, window);
            for exp in [0u64, 1, 2, P - 1, P, GROUP_ORDER, u64::MAX] {
                assert_eq!(table.pow(exp), pow_mod(G, exp), "w={window} e={exp}");
            }
        }
        // Degenerate bases behave like pow_mod too.
        for base in [0u64, 1, P - 1, P, P + 5] {
            let table = FixedBaseTable::new(base, 4);
            for exp in [0u64, 1, 7, u64::MAX] {
                assert_eq!(table.pow(exp), pow_mod(base, exp), "b={base} e={exp}");
            }
        }
    }

    #[test]
    fn sign_with_key_matches_sign() {
        let params = SigParams::fast();
        let x = 0xdead_beef_u64;
        let y = pow_g(x);
        assert_eq!(
            sign_with_key(x, y, b"msg", &params),
            sign(x, b"msg", &params)
        );
    }

    #[test]
    fn verify_batch_matches_scalar_verify() {
        let params = SigParams::fast();
        // 6 signatures under one key (table path) + 2 under others
        // (scalar path), with two corruptions mixed in.
        let mut items_owned: Vec<(u64, Vec<u8>, Signature)> = Vec::new();
        for i in 0..6u64 {
            let msg = format!("batch-{i}").into_bytes();
            let sig = sign(1000, &msg, &params);
            items_owned.push((pow_g(1000), msg, sig));
        }
        for i in 0..2u64 {
            let x = 77 + i;
            let msg = format!("solo-{i}").into_bytes();
            items_owned.push((pow_g(x), msg.clone(), sign(x, &msg, &params)));
        }
        // Corrupt one message and one signature.
        items_owned[1].1[0] ^= 0xff;
        items_owned[6].2.s ^= 1;
        let items: Vec<VerifyItem<'_>> = items_owned
            .iter()
            .map(|(y, msg, sig)| VerifyItem {
                y: *y,
                msg,
                sig: *sig,
            })
            .collect();
        let batch = verify_batch(&items, &params);
        for (item, verdict) in items.iter().zip(&batch) {
            assert_eq!(
                *verdict,
                verify(item.y, item.msg, &item.sig, &params),
                "batch and scalar verify disagree"
            );
        }
        assert!(!batch[1] && !batch[6], "corrupted entries must fail");
        assert!(batch[0] && batch[2], "intact entries must pass");
    }

    #[test]
    fn verify_batch_rejects_out_of_range_keys() {
        let params = SigParams::fast();
        let sig = sign(5, b"m", &params);
        let items = [
            VerifyItem {
                y: 0,
                msg: b"m",
                sig,
            },
            VerifyItem {
                y: P,
                msg: b"m",
                sig,
            },
        ];
        assert_eq!(verify_batch(&items, &params), vec![false, false]);
    }

    proptest! {
        #[test]
        fn prop_sign_verify(x in 1u64..GROUP_ORDER, msg in proptest::collection::vec(any::<u8>(), 0..64)) {
            let params = SigParams::fast();
            let y = pow_mod(G, x);
            let sig = sign(x, &msg, &params);
            prop_assert!(verify(y, &msg, &sig, &params));
        }

        #[test]
        fn prop_mul_mod_matches_naive(a in 0u64..P, b in 0u64..P) {
            let expect = ((a as u128 * b as u128) % P as u128) as u64;
            prop_assert_eq!(mul_mod(a, b), expect);
        }

        #[test]
        fn prop_wrong_message_rejected(x in 1u64..GROUP_ORDER, msg in proptest::collection::vec(any::<u8>(), 1..32)) {
            let params = SigParams::fast();
            let y = pow_mod(G, x);
            let sig = sign(x, &msg, &params);
            let mut tampered = msg.clone();
            tampered[0] ^= 0xff;
            prop_assert!(!verify(y, &tampered, &sig, &params));
        }

        #[test]
        fn prop_fixed_base_matches_pow_mod(base in 0u64..P, exp in any::<u64>(), window in 1u32..=16) {
            let table = FixedBaseTable::new(base, window);
            prop_assert_eq!(table.pow(exp), pow_mod(base, exp));
        }

        #[test]
        fn prop_pow_g_matches_pow_mod(exp in any::<u64>()) {
            prop_assert_eq!(pow_g(exp), pow_mod(G, exp));
        }

        #[test]
        fn prop_verify_batch_agrees_with_verify(
            secrets in proptest::collection::vec(1u64..GROUP_ORDER, 1..12),
            msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..12),
            corrupt_mask in proptest::collection::vec(any::<bool>(), 12),
        ) {
            let params = SigParams::fast();
            let n = secrets.len().min(msgs.len());
            // Reuse a few secrets so some keys cross the per-key table
            // threshold while others stay on the scalar path.
            let mut items_owned: Vec<(u64, Vec<u8>, Signature)> = Vec::new();
            for i in 0..n {
                let x = secrets[i % 3.min(n)];
                let msg = msgs[i].clone();
                let mut sig = sign(x, &msg, &params);
                if corrupt_mask[i] {
                    sig.s = (sig.s + 1) % GROUP_ORDER;
                }
                items_owned.push((pow_g(x), msg, sig));
            }
            let items: Vec<VerifyItem<'_>> = items_owned
                .iter()
                .map(|(y, msg, sig)| VerifyItem { y: *y, msg, sig: *sig })
                .collect();
            let batch = verify_batch(&items, &params);
            for (item, verdict) in items.iter().zip(&batch) {
                prop_assert_eq!(*verdict, verify(item.y, item.msg, &item.sig, &params));
            }
        }
    }
}
