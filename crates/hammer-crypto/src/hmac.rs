//! HMAC-SHA-256 (RFC 2104) built on the crate's own [`Sha256`].
//!
//! Used for deterministic nonce derivation in the signature scheme and for
//! keyed workload-payload checksums.

use crate::sha256::{Digest, Sha256};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// ```
/// use hammer_crypto::{hmac::hmac_sha256, to_hex};
/// // RFC 4231 test case 2.
/// let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(
///     to_hex(&mac),
///     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = crate::sha256(key);
        key_block[..digest.len()].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// An incremental HMAC-SHA-256 context for multi-part messages.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a context keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256(key);
            key_block[..digest.len()].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad }
    }

    /// Feeds more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the MAC.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case3_long_key_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_key_longer_than_block() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"secret key material";
        let msg: Vec<u8> = (0..500u16).map(|i| (i % 256) as u8).collect();
        let expect = hmac_sha256(key, &msg);
        let mut ctx = HmacSha256::new(key);
        for chunk in msg.chunks(7) {
            ctx.update(chunk);
        }
        assert_eq!(ctx.finalize(), expect);
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
    }
}
