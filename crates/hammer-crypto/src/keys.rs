//! Keypair generation and high-level sign/verify wrappers.

use rand::Rng;

use crate::sig::{self, SigParams, Signature, GROUP_ORDER};

/// A secret signing key (a scalar in `[1, GROUP_ORDER)`).
///
/// Deliberately does not implement `Display`; `Debug` redacts the scalar so
/// keys never leak through logs.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(u64);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

/// A public verification key (`g^x mod p`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(u64);

/// A secret/public keypair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Keypair {
    secret: SecretKey,
    public: PublicKey,
}

impl SecretKey {
    /// Builds a secret key from a raw scalar. Returns `None` when the scalar
    /// is 0 or out of range.
    pub fn from_scalar(x: u64) -> Option<Self> {
        if x == 0 || x >= GROUP_ORDER {
            None
        } else {
            Some(SecretKey(x))
        }
    }

    /// Derives the matching public key.
    pub fn public(&self) -> PublicKey {
        PublicKey(sig::pow_g(self.0))
    }

    /// Signs a message.
    pub fn sign(&self, msg: &[u8], params: &SigParams) -> Signature {
        sig::sign(self.0, msg, params)
    }
}

impl PublicKey {
    /// The raw group element.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Builds a public key from a raw group element. Returns `None` when the
    /// element is outside `[1, P)`.
    pub fn from_u64(y: u64) -> Option<Self> {
        if y == 0 || y >= sig::P {
            None
        } else {
            Some(PublicKey(y))
        }
    }

    /// Verifies a signature over `msg`.
    pub fn verify(&self, msg: &[u8], signature: &Signature, params: &SigParams) -> bool {
        sig::verify(self.0, msg, signature, params)
    }
}

impl Keypair {
    /// Generates a fresh random keypair.
    pub fn generate<R: Rng + ?Sized>(_params: &SigParams, rng: &mut R) -> Self {
        let x = rng.gen_range(1..GROUP_ORDER);
        let secret = SecretKey(x);
        let public = secret.public();
        Keypair { secret, public }
    }

    /// Deterministically derives a keypair from a seed (e.g. a client id),
    /// so simulated clusters are reproducible.
    pub fn from_seed(seed: u64) -> Self {
        // Hash the seed into the scalar range; a fixed domain tag keeps
        // distinct derivation domains apart.
        let digest =
            crate::sha256(&[b"hammer-keypair-v1".as_slice(), &seed.to_be_bytes()].concat());
        let mut x = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes")) % GROUP_ORDER;
        if x == 0 {
            x = 1;
        }
        let secret = SecretKey(x);
        let public = secret.public();
        Keypair { secret, public }
    }

    /// The secret half.
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs a message with the secret key, reusing the cached public
    /// key — the keypair signing hot path never re-derives `g^x`.
    pub fn sign(&self, msg: &[u8], params: &SigParams) -> Signature {
        sig::sign_with_key(self.secret.0, self.public.0, msg, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generate_and_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let params = SigParams::fast();
        let kp = Keypair::generate(&params, &mut rng);
        let sig = kp.sign(b"payload", &params);
        assert!(kp.public().verify(b"payload", &sig, &params));
        assert!(!kp.public().verify(b"other", &sig, &params));
    }

    #[test]
    fn from_seed_is_deterministic() {
        assert_eq!(Keypair::from_seed(7), Keypair::from_seed(7));
        assert_ne!(
            Keypair::from_seed(7).public(),
            Keypair::from_seed(8).public()
        );
    }

    #[test]
    fn secret_key_validation() {
        assert!(SecretKey::from_scalar(0).is_none());
        assert!(SecretKey::from_scalar(GROUP_ORDER).is_none());
        assert!(SecretKey::from_scalar(1).is_some());
    }

    #[test]
    fn public_key_validation() {
        assert!(PublicKey::from_u64(0).is_none());
        assert!(PublicKey::from_u64(sig::P).is_none());
        assert!(PublicKey::from_u64(12345).is_some());
    }

    #[test]
    fn debug_redacts_secret() {
        let kp = Keypair::from_seed(3);
        assert_eq!(format!("{:?}", kp.secret()), "SecretKey(<redacted>)");
    }

    #[test]
    fn cross_key_verification_fails() {
        let params = SigParams::fast();
        let a = Keypair::from_seed(1);
        let b = Keypair::from_seed(2);
        let sig = a.sign(b"msg", &params);
        assert!(!b.public().verify(b"msg", &sig, &params));
    }
}
