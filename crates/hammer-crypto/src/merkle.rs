//! Binary Merkle trees with inclusion proofs.
//!
//! Chain simulators commit to the transaction list of each block with a
//! Merkle root, and the evaluation driver can audit a claimed commit by
//! verifying a [`MerkleProof`].
//!
//! Odd levels duplicate the last node (the Bitcoin convention); the empty
//! tree has the all-zero root.

use crate::sha256::{sha256_pair, Digest};
use crate::Hash32;

/// A fully materialised binary Merkle tree over a list of leaf hashes.
///
/// ```
/// use hammer_crypto::{sha256, MerkleTree};
///
/// let leaves: Vec<_> = ["a", "b", "c"].iter().map(|s| sha256(s.as_bytes())).collect();
/// let tree = MerkleTree::from_leaves(leaves.clone());
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(&leaves[1], &tree.root()));
/// assert!(!proof.verify(&leaves[0], &tree.root()));
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] is the leaf level; the last level has exactly one node.
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: sibling hashes from leaf to root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Sibling hash at each level, leaf level first.
    pub siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Builds a tree over pre-hashed leaves.
    pub fn from_leaves(leaves: Vec<Digest>) -> Self {
        if leaves.is_empty() {
            return MerkleTree { levels: vec![] };
        }
        let mut levels = vec![leaves];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left); // duplicate odd node
                next.push(sha256_pair(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Builds a tree by hashing each item with SHA-256 first.
    pub fn from_items<T: AsRef<[u8]>>(items: &[T]) -> Self {
        Self::from_leaves(items.iter().map(|i| crate::sha256(i.as_ref())).collect())
    }

    /// The Merkle root; all-zero for the empty tree.
    pub fn root(&self) -> Hash32 {
        self.levels.last().map(|l| l[0]).unwrap_or([0u8; 32])
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map(|l| l.len()).unwrap_or(0)
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces an inclusion proof for the leaf at `index`, or `None` if the
    /// index is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::with_capacity(self.levels.len().saturating_sub(1));
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            // When the level has odd length and idx is the last node, the
            // sibling is the node itself (duplication rule).
            let sibling = level.get(sibling_idx).unwrap_or(&level[idx]);
            siblings.push(*sibling);
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            siblings,
        })
    }
}

impl MerkleProof {
    /// Verifies that `leaf` is included under `root`.
    pub fn verify(&self, leaf: &Digest, root: &Hash32) -> bool {
        let mut acc = *leaf;
        let mut idx = self.leaf_index;
        for sibling in &self.siblings {
            acc = if idx.is_multiple_of(2) {
                sha256_pair(&acc, sibling)
            } else {
                sha256_pair(sibling, &acc)
            };
            idx /= 2;
        }
        &acc == root
    }
}

/// Computes just the Merkle root over items without materialising the tree.
pub fn merkle_root<T: AsRef<[u8]>>(items: &[T]) -> Hash32 {
    if items.is_empty() {
        return [0u8; 32];
    }
    let mut level: Vec<Digest> = items.iter().map(|i| crate::sha256(i.as_ref())).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let left = &pair[0];
            let right = pair.get(1).unwrap_or(left);
            next.push(sha256_pair(left, right));
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| sha256(format!("leaf-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree = MerkleTree::from_leaves(vec![]);
        assert!(tree.is_empty());
        assert_eq!(tree.root(), [0u8; 32]);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let tree = MerkleTree::from_leaves(l.clone());
        assert_eq!(tree.root(), l[0]);
        let proof = tree.prove(0).unwrap();
        assert!(proof.siblings.is_empty());
        assert!(proof.verify(&l[0], &tree.root()));
    }

    #[test]
    fn all_proofs_verify_across_sizes() {
        for n in 1..=17 {
            let l = leaves(n);
            let tree = MerkleTree::from_leaves(l.clone());
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(leaf, &tree.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone());
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&l[4], &tree.root()));
    }

    #[test]
    fn wrong_index_fails() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone());
        let mut proof = tree.prove(3).unwrap();
        proof.leaf_index = 2;
        assert!(!proof.verify(&l[3], &tree.root()));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let l = leaves(9);
        let base = MerkleTree::from_leaves(l.clone()).root();
        for i in 0..l.len() {
            let mut changed = l.clone();
            changed[i] = sha256(b"tampered");
            assert_ne!(MerkleTree::from_leaves(changed).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn merkle_root_matches_tree() {
        let items: Vec<String> = (0..13).map(|i| format!("tx-{i}")).collect();
        let tree = MerkleTree::from_items(&items);
        assert_eq!(merkle_root(&items), tree.root());
    }

    proptest! {
        #[test]
        fn prop_proofs_verify(n in 1usize..60, pick in 0usize..60) {
            let l = leaves(n);
            let i = pick % n;
            let tree = MerkleTree::from_leaves(l.clone());
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(&l[i], &tree.root()));
        }

        #[test]
        fn prop_tamper_detected(n in 2usize..40, pick in 0usize..40, other in 0usize..40) {
            let l = leaves(n);
            let i = pick % n;
            let j = other % n;
            prop_assume!(i != j);
            let tree = MerkleTree::from_leaves(l.clone());
            let proof = tree.prove(i).unwrap();
            prop_assert!(!proof.verify(&l[j], &tree.root()));
        }
    }
}
