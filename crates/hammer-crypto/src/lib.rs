//! Cryptographic primitives for the Hammer blockchain evaluation framework.
//!
//! Every blockchain workload item carries a client signature, and the cost of
//! producing those signatures is exactly what Hammer's asynchronous-signature
//! optimisation (paper §III-D1, Fig. 8) accelerates. This crate implements the
//! primitives the simulated chains and the evaluation driver need, from
//! scratch:
//!
//! * [`mod@sha256`] — the FIPS 180-4 SHA-256 hash function.
//! * [`hmac`] — HMAC-SHA-256 message authentication.
//! * [`merkle`] — binary Merkle trees with inclusion proofs, used by the
//!   chain simulators to commit to block transaction lists.
//! * [`sig`] — a Schnorr-style signature scheme over a prime field. It is
//!   *educational strength* (61-bit modulus), but it has the same
//!   sign/verify API and, via [`sig::SigParams::cost_factor`], a tunable
//!   computational cost so experiments see a realistic signing workload.
//! * [`keys`] — keypair generation and deterministic derivation.
//!
//! # Quick example
//!
//! ```
//! use hammer_crypto::{keys::Keypair, sig::SigParams};
//!
//! let params = SigParams::fast();
//! let keypair = Keypair::generate(&params, &mut rand::thread_rng());
//! let sig = keypair.sign(b"transfer 10 from alice to bob", &params);
//! assert!(keypair.public().verify(b"transfer 10 from alice to bob", &sig, &params));
//! assert!(!keypair.public().verify(b"transfer 99 from alice to bob", &sig, &params));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hmac;
pub mod keys;
pub mod merkle;
pub mod sha256;
pub mod sig;

pub use keys::{Keypair, PublicKey, SecretKey};
pub use merkle::MerkleTree;
pub use sha256::{sha256, Digest, Sha256};
pub use sig::{SigParams, Signature};

/// A 32-byte hash value, the common digest type of the whole workspace.
pub type Hash32 = [u8; 32];

/// Hex-encodes a byte slice (lowercase, no prefix).
///
/// ```
/// assert_eq!(hammer_crypto::to_hex(&[0xde, 0xad, 0xbe, 0xef]), "deadbeef");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a lowercase/uppercase hex string into bytes.
///
/// Returns `None` when the string has odd length or contains a non-hex
/// character.
///
/// ```
/// assert_eq!(hammer_crypto::from_hex("deadBEEF"), Some(vec![0xde, 0xad, 0xbe, 0xef]));
/// assert_eq!(hammer_crypto::from_hex("xyz"), None);
/// ```
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        let hex = to_hex(&data);
        assert_eq!(from_hex(&hex).unwrap(), data);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert_eq!(from_hex("abc"), None); // odd length
        assert_eq!(from_hex("zz"), None); // bad char
        assert_eq!(from_hex(""), Some(vec![]));
    }
}
