//! The chain-node runtime ("node kernel") shared by every simulated chain.
//!
//! The paper evaluates four very different consensus designs through one
//! generic driver, and the simulators for those designs used to duplicate
//! all of the chain-*agnostic* node scaffolding: named-thread spawn loops,
//! mempool ingress with fault gating, sealed-block accounting and
//! observability, and gossip fan-out over the simulated network. The
//! kernel owns that scaffolding once:
//!
//! * **Lifecycle** — [`NodeKernelBuilder::start`] spawns every node
//!   thread (gossip sinks, the per-shard sealer loop, policy workers) and
//!   records the join handles; [`ChainNode::shutdown_and_join`] stops
//!   *and joins* them, so dropping a chain never leaks a live thread.
//! * **Ingress** — [`BlockchainClient::submit`] is implemented once:
//!   shutdown check, [`check_node_ingress`] fault gating on the policy's
//!   ingress node, then policy-controlled admission (bounded mempool by
//!   default, so overload surfaces as [`ErrorKind::Backpressure`]).
//! * **Sealing** — [`Kernel::seal_block`] builds the block against the
//!   shard ledger, fans the gossip payload out over `hammer-net`, updates
//!   the activity counters, emits the per-block observability (sealed
//!   counters, mempool-depth gauge, journal `block_seal`) and publishes
//!   the commit events.
//! * **RPC wiring** — [`ChainNode::serve_rpc`] exposes any kernel-hosted
//!   chain over the JSON-RPC adapter.
//!
//! What remains per chain is a [`ConsensusPolicy`]: when to seal, how to
//! order/validate/endorse a round, and how accounts map onto shards. A
//! new backend is one policy implementation instead of a full crate of
//! node plumbing — see `DESIGN.md` §5 for the walkthrough.
//!
//! [`ErrorKind::Backpressure`]: crate::client::ErrorKind::Backpressure

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use hammer_crypto::sig::SigParams;
use hammer_net::{Endpoint, SimClock, SimNetwork};
use parking_lot::{Mutex, RwLock};

use crate::client::{check_node_ingress, Architecture, BlockchainClient, ChainError, CommitEvent};
use crate::events::CommitBus;
use crate::ledger::{Ledger, LedgerError};
use crate::mempool::Mempool;
use crate::rpc_adapter;
use crate::state::{AccountState, VersionedState};
use crate::types::{verify_signed_batch, Address, Block, SignedTransaction, TxId};

/// Gossip payloads are capped at 1 MiB regardless of block size.
const MAX_GOSSIP_PAYLOAD: usize = 1 << 20;

/// Wall-clock granularity at which kernel sleeps re-check the shutdown
/// flag. Small enough that joining a chain mid-interval is prompt, large
/// enough that long simulated waits cost no measurable CPU.
const SLEEP_CHUNK: Duration = Duration::from_millis(5);

/// Spin-wait tail mirroring [`SimClock::sleep`]'s precision strategy.
const SLEEP_SPIN: Duration = Duration::from_micros(200);

/// Per-shard storage: mempool, ledger, and world state.
///
/// Non-sharded chains have exactly one; [`Kernel::shard`] indexes them.
pub struct ShardCtx {
    /// Pending-transaction pool (bounded, de-duplicating).
    pub mempool: Mempool,
    /// Append-only block store with hash-chain verification.
    pub ledger: RwLock<Ledger>,
    /// Versioned world state.
    pub state: Mutex<VersionedState>,
}

impl ShardCtx {
    fn new(mempool_capacity: usize) -> Self {
        ShardCtx {
            mempool: Mempool::new(mempool_capacity),
            ledger: RwLock::new(Ledger::new()),
            state: Mutex::new(VersionedState::new()),
        }
    }
}

/// Activity counters every kernel-hosted chain maintains.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Blocks sealed (across all shards).
    pub blocks: u64,
    /// Transactions committed successfully.
    pub committed: u64,
    /// Transactions included in a block but marked invalid.
    pub failed: u64,
    /// Transactions dropped for bad signatures.
    pub bad_sig: u64,
}

/// One sealed round, handed from a [`ConsensusPolicy`] to
/// [`Kernel::seal_block`].
pub struct Round {
    /// Endpoint name of the proposing node (block author and gossip
    /// source).
    pub proposer: String,
    /// Transactions in block order.
    pub tx_ids: Vec<TxId>,
    /// Per-transaction validity flags (`valid[i]` belongs to `tx_ids[i]`).
    pub valid: Vec<bool>,
    /// Endpoints to fan the sealed block out to.
    pub gossip_to: Vec<String>,
    /// Pending-depth reported to the mempool gauge; `None` uses the
    /// shard's kernel mempool length (policies with their own pending set
    /// — e.g. an endorsement pipeline — override it).
    pub mempool_depth: Option<usize>,
}

/// A named background thread a policy asks the kernel to run (endorser
/// pools, orderers, committers, ...). The kernel spawns it and joins it
/// at shutdown; the closure must exit promptly once
/// [`Kernel::is_shutdown`] turns true.
pub struct Worker {
    name: String,
    run: Box<dyn FnOnce() + Send + 'static>,
}

impl Worker {
    /// Creates a worker with a thread name and body.
    pub fn new(name: impl Into<String>, run: impl FnOnce() + Send + 'static) -> Self {
        Worker {
            name: name.into(),
            run: Box::new(run),
        }
    }
}

/// The chain-agnostic node runtime: clock, network, per-shard storage,
/// commit bus, shutdown flag, and activity counters.
pub struct Kernel {
    chain_name: String,
    architecture: Architecture,
    clock: SimClock,
    net: SimNetwork,
    shards: Vec<ShardCtx>,
    bus: CommitBus,
    shutdown: AtomicBool,
    gossip_base: usize,
    gossip_per_tx: usize,
    blocks: AtomicU64,
    committed: AtomicU64,
    failed: AtomicU64,
    bad_sig: AtomicU64,
}

impl Kernel {
    /// The simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The simulated network.
    pub fn net(&self) -> &SimNetwork {
        &self.net
    }

    /// The chain's display name.
    pub fn chain_name(&self) -> &str {
        &self.chain_name
    }

    /// Storage for one shard (panics on an out-of-range id; use
    /// [`Kernel::shards`] for fallible access).
    pub fn shard(&self, shard: u32) -> &ShardCtx {
        &self.shards[shard as usize]
    }

    /// All shard contexts, indexed by shard id.
    pub fn shards(&self) -> &[ShardCtx] {
        &self.shards
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            blocks: self.blocks.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            bad_sig: self.bad_sig.load(Ordering::Relaxed),
        }
    }

    /// Sleeps for `sim` of simulated time, waking early if shutdown is
    /// requested. Returns `false` when the sleep was cut short (the
    /// caller's loop should exit). Long waits are chunked so that joining
    /// a chain parked on a multi-second block interval stays prompt;
    /// short waits keep [`SimClock::sleep`]'s sub-millisecond precision.
    pub fn sleep_interruptible(&self, sim: Duration) -> bool {
        let deadline = Instant::now() + self.clock.to_wall(sim);
        loop {
            if self.is_shutdown() {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let remaining = deadline - now;
            if remaining > SLEEP_CHUNK {
                std::thread::sleep(SLEEP_CHUNK);
            } else {
                if remaining > SLEEP_SPIN {
                    std::thread::sleep(remaining - SLEEP_SPIN);
                }
                while Instant::now() < deadline {
                    std::thread::yield_now();
                }
                return !self.is_shutdown();
            }
        }
    }

    /// Batch-verifies `txs` in place, dropping (and counting) the ones
    /// with bad signatures. One shared-table batch pass instead of a full
    /// modexp per transaction.
    pub fn verify_retain(&self, txs: &mut Vec<SignedTransaction>, params: &SigParams) {
        self.verify_retain_with(txs, params, |_| {});
    }

    /// [`Kernel::verify_retain`] with a callback per rejected transaction
    /// (policies that track pending ids outside the kernel mempool use it
    /// to release them).
    pub fn verify_retain_with(
        &self,
        txs: &mut Vec<SignedTransaction>,
        params: &SigParams,
        mut on_bad: impl FnMut(&SignedTransaction),
    ) {
        let verdicts = verify_signed_batch(txs, params);
        let mut verdicts = verdicts.iter();
        txs.retain(|tx| {
            let ok = *verdicts.next().expect("one verdict per tx");
            if !ok {
                self.bad_sig.fetch_add(1, Ordering::Relaxed);
                on_bad(tx);
            }
            ok
        });
    }

    /// Fans a sealed-block payload out from `from` to every endpoint in
    /// `to`, approximating the wire size from the transaction count.
    pub fn gossip(&self, from: &str, to: &[String], txs: usize) {
        let approx = (self.gossip_base + txs * self.gossip_per_tx).min(MAX_GOSSIP_PAYLOAD);
        for target in to {
            let _ = self.net.send(from, target, vec![0u8; approx]);
        }
    }

    /// Seals one round into a block on `shard`: builds the block against
    /// the shard ledger, gossips it, appends it, updates the counters,
    /// emits the per-block observability, and publishes the commit
    /// events. One obs-bundle fetch per sealed block, never per tx.
    pub fn seal_block(&self, shard_id: u32, round: Round) {
        let Round {
            proposer,
            tx_ids,
            valid,
            gossip_to,
            mempool_depth,
        } = round;
        debug_assert_eq!(tx_ids.len(), valid.len());
        let shard = &self.shards[shard_id as usize];
        let timestamp = self.clock.now();
        let block = {
            let ledger = shard.ledger.read();
            Block::new(
                ledger.height() + 1,
                ledger.tip_hash(),
                timestamp,
                &proposer,
                shard_id,
                tx_ids,
                valid,
            )
        };
        self.gossip(&proposer, &gossip_to, block.len());

        let events: Vec<CommitEvent> = block
            .entries()
            .map(|(tx_id, success)| CommitEvent {
                tx_id,
                success,
                block_height: block.header.height,
                shard: shard_id,
                committed_at: timestamp,
            })
            .collect();
        let height = block.header.height;
        let sealed_txs = block.len();
        let ok = block.valid.iter().filter(|v| **v).count() as u64;
        shard
            .ledger
            .write()
            .append(block)
            .expect("the kernel seals sequential blocks per shard");
        self.blocks.fetch_add(1, Ordering::Relaxed);
        self.committed.fetch_add(ok, Ordering::Relaxed);
        self.failed
            .fetch_add(sealed_txs as u64 - ok, Ordering::Relaxed);

        let obs = self.net.obs();
        if obs.enabled() {
            let shard_label = shard_id.to_string();
            let mut labels: Vec<(&str, &str)> = vec![("chain", self.chain_name.as_str())];
            if matches!(self.architecture, Architecture::Sharded { .. }) {
                labels.push(("shard", shard_label.as_str()));
            }
            let depth = mempool_depth.unwrap_or_else(|| shard.mempool.len());
            let registry = obs.registry();
            registry
                .counter_with("hammer_chain_blocks_sealed_total", &labels)
                .inc();
            registry
                .counter_with("hammer_chain_txs_sealed_total", &labels)
                .add(sealed_txs as u64);
            registry
                .gauge_with("hammer_chain_mempool_depth", &labels)
                .set(depth as u64);
            obs.journal()
                .block_seal(timestamp, &proposer, height, sealed_txs);
        }
        self.bus.publish_all(&events);
    }
}

/// The consensus-specific core of a chain: everything the kernel cannot
/// decide for you. Implementations are cheap value types; the four
/// built-in sims (`hammer-ethereum`, `hammer-fabric`, `hammer-neuchain`,
/// `hammer-meepo`) are the reference examples.
pub trait ConsensusPolicy: Send + Sync + 'static {
    /// The chain's display name (also the obs `chain` label).
    fn chain_name(&self) -> &'static str;

    /// Sharded or not; decides the kernel's shard-context count.
    fn architecture(&self) -> Architecture {
        Architecture::NonSharded
    }

    /// Endpoint submissions for `shard` land on; an outage there turns
    /// ingress away (crash ⇒ unavailable, unreachable ⇒ timeout).
    fn ingress_node(&self, shard: u32) -> String;

    /// Endpoint whose crash suspends sealing on `shard`.
    fn sealer_node(&self, shard: u32) -> String {
        self.ingress_node(shard)
    }

    /// Which shard a transaction is routed to (non-sharded chains keep
    /// the default).
    fn route(&self, _tx: &SignedTransaction) -> u32 {
        0
    }

    /// Which shard an account's state lives on (genesis seeding and
    /// reads go through this).
    fn home_shard(&self, _account: Address) -> u32 {
        0
    }

    /// Admits a routed transaction past the ingress gate. The default
    /// pushes into the shard's bounded kernel mempool; pipelines with
    /// their own inbox (e.g. an endorsement channel) override it. A full
    /// pool must map to a rejection whose kind is `Backpressure`.
    fn admit(
        &self,
        kernel: &Kernel,
        shard: u32,
        tx: SignedTransaction,
    ) -> Result<TxId, ChainError> {
        let id = tx.id;
        kernel
            .shard(shard)
            .mempool
            .push(tx)
            .map_err(ChainError::rejected)?;
        Ok(id)
    }

    /// Transactions accepted but not yet sealed.
    fn pending(&self, kernel: &Kernel) -> usize {
        kernel.shards().iter().map(|s| s.mempool.len()).sum()
    }

    /// Whether the kernel should drive a sealer loop per shard (sleep
    /// [`ConsensusPolicy::seal_wait`] → crash-gate → round). Pipelines
    /// that seal from their own workers return `false`.
    fn drives_sealer(&self) -> bool {
        true
    }

    /// How long the sealer loop waits before the next round on `shard`
    /// (fixed epochs, sampled PoW intervals, ...). Only called when
    /// [`ConsensusPolicy::drives_sealer`] is true.
    fn seal_wait(&self, _shard: u32) -> Duration {
        Duration::from_millis(100)
    }

    /// Produces the next round for `shard`: drain/order/validate however
    /// the consensus design dictates, and return `None` to seal nothing
    /// this wait. Only called when [`ConsensusPolicy::drives_sealer`] is
    /// true.
    fn build_round(&self, _kernel: &Kernel, _shard: u32) -> Option<Round> {
        None
    }

    /// Extra background threads (endorser pools, orderers, ...) the
    /// kernel spawns at start and joins at shutdown.
    fn workers(self: &Arc<Self>, _kernel: &Arc<Kernel>) -> Vec<Worker>
    where
        Self: Sized,
    {
        Vec::new()
    }
}

/// Builds and starts a [`ChainNode`]: endpoints, gossip sinks, sealers,
/// and policy workers in one call.
pub struct NodeKernelBuilder {
    clock: SimClock,
    net: SimNetwork,
    mempool_capacity: usize,
    gossip_base: usize,
    gossip_per_tx: usize,
    sink_endpoints: Vec<String>,
    plain_endpoints: Vec<String>,
}

impl NodeKernelBuilder {
    /// Starts a builder on an existing clock and network.
    pub fn new(clock: SimClock, net: SimNetwork) -> Self {
        NodeKernelBuilder {
            clock,
            net,
            mempool_capacity: 10_000,
            gossip_base: 200,
            gossip_per_tx: 110,
            sink_endpoints: Vec::new(),
            plain_endpoints: Vec::new(),
        }
    }

    /// Capacity of each shard's kernel mempool.
    pub fn mempool_capacity(mut self, capacity: usize) -> Self {
        self.mempool_capacity = capacity;
        self
    }

    /// Approximate gossip wire size: `base + txs * per_tx` bytes.
    pub fn gossip_sizing(mut self, base: usize, per_tx: usize) -> Self {
        self.gossip_base = base;
        self.gossip_per_tx = per_tx;
        self
    }

    /// Registers a network endpoint with a sink thread consuming its
    /// inbound traffic (replica nodes receiving block gossip).
    pub fn sink_endpoint(mut self, name: &str) -> Self {
        self.sink_endpoints.push(name.to_owned());
        self
    }

    /// Registers a network endpoint without a consumer thread (roles
    /// that only ever send, or that exist for fault targeting).
    pub fn endpoint(mut self, name: &str) -> Self {
        self.plain_endpoints.push(name.to_owned());
        self
    }

    /// Starts the node: registers endpoints, spawns sinks, sealers, and
    /// policy workers, and returns the running chain handle.
    pub fn start<P: ConsensusPolicy>(self, policy: P) -> Arc<ChainNode<P>> {
        let policy = Arc::new(policy);
        let shard_count = policy.architecture().shard_count().max(1);
        let kernel = Arc::new(Kernel {
            chain_name: policy.chain_name().to_owned(),
            architecture: policy.architecture(),
            clock: self.clock,
            net: self.net,
            shards: (0..shard_count)
                .map(|_| ShardCtx::new(self.mempool_capacity))
                .collect(),
            bus: CommitBus::new(),
            shutdown: AtomicBool::new(false),
            gossip_base: self.gossip_base,
            gossip_per_tx: self.gossip_per_tx,
            blocks: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            bad_sig: AtomicU64::new(0),
        });

        let mut threads = Vec::new();
        for name in &self.plain_endpoints {
            kernel.net.register(name);
        }
        for name in &self.sink_endpoints {
            let endpoint = kernel.net.register(name);
            let sink_kernel = Arc::clone(&kernel);
            threads.push(
                std::thread::Builder::new()
                    .name(name.clone())
                    .spawn(move || sink_loop(sink_kernel, endpoint))
                    .expect("spawn gossip sink"),
            );
        }
        for worker in policy.workers(&kernel) {
            threads.push(
                std::thread::Builder::new()
                    .name(worker.name)
                    .spawn(worker.run)
                    .expect("spawn policy worker"),
            );
        }
        if policy.drives_sealer() {
            for shard in 0..shard_count {
                let sealer_kernel = Arc::clone(&kernel);
                let sealer_policy = Arc::clone(&policy);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("{}-sealer-{shard}", kernel.chain_name))
                        .spawn(move || sealer_loop(sealer_kernel, sealer_policy, shard))
                        .expect("spawn sealer"),
                );
            }
        }
        Arc::new(ChainNode {
            kernel,
            policy,
            threads: Mutex::new(threads),
        })
    }
}

/// Consumes inbound gossip on one endpoint until shutdown (replication
/// traffic is accounted by the network; the payload itself is discarded).
fn sink_loop(kernel: Arc<Kernel>, endpoint: Endpoint) {
    loop {
        match endpoint.recv_timeout(Duration::from_millis(100)) {
            Ok(_replicated) => {}
            Err(RecvTimeoutError::Timeout) => {
                if kernel.is_shutdown() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// The kernel-driven sealer: wait → crash-gate on the sealer node →
/// policy round → seal.
fn sealer_loop<P: ConsensusPolicy>(kernel: Arc<Kernel>, policy: Arc<P>, shard: u32) {
    loop {
        if !kernel.sleep_interruptible(policy.seal_wait(shard)) {
            return;
        }
        // A crashed sealer seals nothing this round; pooled transactions
        // wait out the fault window.
        if kernel.net.node_crashed(&policy.sealer_node(shard)) {
            continue;
        }
        if let Some(round) = policy.build_round(&kernel, shard) {
            kernel.seal_block(shard, round);
        }
    }
}

/// A running chain: the kernel plus its policy and the join handles of
/// every thread the kernel spawned.
pub struct ChainNode<P: ConsensusPolicy> {
    kernel: Arc<Kernel>,
    policy: Arc<P>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<P: ConsensusPolicy> ChainNode<P> {
    /// The shared runtime (clock, network, shards, counters).
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The consensus policy driving this chain.
    pub fn policy(&self) -> &Arc<P> {
        &self.policy
    }

    /// The simulation clock.
    pub fn clock(&self) -> &SimClock {
        self.kernel.clock()
    }

    /// The simulated network.
    pub fn net(&self) -> &SimNetwork {
        self.kernel.net()
    }

    /// Snapshot of the kernel activity counters.
    pub fn stats(&self) -> KernelStats {
        self.kernel.stats()
    }

    /// Serves this chain over the JSON-RPC adapter.
    pub fn serve_rpc(self: &Arc<Self>) -> hammer_rpc::transport::RpcServer {
        rpc_adapter::serve(Arc::clone(self) as Arc<dyn BlockchainClient>)
    }

    /// Serves this chain over the JSON-RPC adapter *including* the
    /// [`SimChain`] method set (account seeding, ledger verification,
    /// fault-target discovery) — the surface a `node-host` process
    /// exposes to the driver.
    pub fn serve_rpc_sim(self: &Arc<Self>) -> hammer_rpc::transport::RpcServer
    where
        P: 'static,
    {
        rpc_adapter::serve_sim(Arc::clone(self) as Arc<dyn SimChain>)
    }

    /// Serves the full [`SimChain`] RPC surface on a real TCP listener at
    /// `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn serve_rpc_tcp(
        self: &Arc<Self>,
        addr: &str,
        config: hammer_net::TcpServerConfig,
    ) -> std::io::Result<hammer_net::TcpRpcServer>
    where
        P: 'static,
    {
        rpc_adapter::serve_tcp(self.serve_rpc_sim(), addr, config)
    }

    /// Requests shutdown and joins every kernel-spawned thread.
    /// Idempotent; never joins the calling thread (a policy worker may
    /// itself trigger shutdown).
    pub fn shutdown_and_join(&self) {
        self.kernel.shutdown.store(true, Ordering::Relaxed);
        let me = std::thread::current().id();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for handle in handles {
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
    }
}

impl<P: ConsensusPolicy> std::fmt::Debug for ChainNode<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainNode")
            .field("chain", &self.kernel.chain_name)
            .field("stats", &self.kernel.stats())
            .finish()
    }
}

impl<P: ConsensusPolicy> Drop for ChainNode<P> {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

impl<P: ConsensusPolicy> BlockchainClient for ChainNode<P> {
    fn chain_name(&self) -> &str {
        &self.kernel.chain_name
    }

    fn architecture(&self) -> Architecture {
        self.kernel.architecture
    }

    fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError> {
        if self.kernel.is_shutdown() {
            return Err(ChainError::shutdown());
        }
        let shard = self.policy.route(&tx);
        check_node_ingress(&self.kernel.net, &self.policy.ingress_node(shard))?;
        self.policy.admit(&self.kernel, shard, tx)
    }

    fn latest_height(&self, shard: u32) -> Result<u64, ChainError> {
        let ctx = self
            .kernel
            .shards
            .get(shard as usize)
            .ok_or(ChainError::unknown_shard(shard))?;
        Ok(ctx.ledger.read().height())
    }

    fn block_at(&self, shard: u32, height: u64) -> Result<Option<Block>, ChainError> {
        let ctx = self
            .kernel
            .shards
            .get(shard as usize)
            .ok_or(ChainError::unknown_shard(shard))?;
        Ok(ctx.ledger.read().block_at(height).cloned())
    }

    fn pending_txs(&self) -> Result<usize, ChainError> {
        Ok(self.policy.pending(&self.kernel))
    }

    fn subscribe_commits(&self) -> Receiver<CommitEvent> {
        self.kernel.bus.subscribe()
    }

    fn shutdown(&self) {
        self.shutdown_and_join();
    }
}

/// The deployment-facing surface of a simulated chain, over and above
/// [`BlockchainClient`]: genesis seeding, state reads, fault-target
/// discovery, and ledger audits. Implemented generically for every
/// [`ChainNode`]; the sim crates' wrapper handles delegate to it.
pub trait SimChain: BlockchainClient {
    /// Seeds an account's balances directly into world state on its home
    /// shard (genesis allocation).
    fn seed_account(&self, account: Address, checking: u64, savings: u64);

    /// Reads an account's state from its home shard.
    fn account(&self, account: Address) -> Option<AccountState>;

    /// Every ingress endpoint (one per shard, deduplicated) — the nodes
    /// a fault plan targets to take submissions down.
    fn ingress_nodes(&self) -> Vec<String>;

    /// Every sealer endpoint (one per shard, deduplicated) — the nodes a
    /// fault plan targets to halt block production.
    fn sealer_nodes(&self) -> Vec<String>;

    /// Verifies every shard's hash chain.
    fn verify_ledgers(&self) -> Result<(), LedgerError>;

    /// A monotone progress probe for stall watchdogs: total sealed
    /// blocks/epochs across shards. A chain that keeps accepting
    /// submissions while this counter stops advancing is stalled, not
    /// merely slow. The default (always `0`) makes the probe inert for
    /// chains that do not implement it.
    fn progress_mark(&self) -> u64 {
        0
    }
}

impl<P: ConsensusPolicy> SimChain for ChainNode<P> {
    fn seed_account(&self, account: Address, checking: u64, savings: u64) {
        let shard = self.policy.home_shard(account);
        self.kernel
            .shard(shard)
            .state
            .lock()
            .seed_account(account, checking, savings);
    }

    fn account(&self, account: Address) -> Option<AccountState> {
        let shard = self.policy.home_shard(account);
        self.kernel.shard(shard).state.lock().get(account)
    }

    fn ingress_nodes(&self) -> Vec<String> {
        let mut nodes: Vec<String> = (0..self.kernel.shards.len() as u32)
            .map(|s| self.policy.ingress_node(s))
            .collect();
        nodes.dedup();
        nodes
    }

    fn sealer_nodes(&self) -> Vec<String> {
        let mut nodes: Vec<String> = (0..self.kernel.shards.len() as u32)
            .map(|s| self.policy.sealer_node(s))
            .collect();
        nodes.dedup();
        nodes
    }

    fn verify_ledgers(&self) -> Result<(), LedgerError> {
        for shard in &self.kernel.shards {
            shard.ledger.read().verify_chain()?;
        }
        Ok(())
    }

    fn progress_mark(&self) -> u64 {
        self.kernel.stats().blocks
    }
}

/// Implements the boilerplate of a sim crate's public handle type — a
/// struct with a `node: Arc<ChainNode<..>>` field — by delegating
/// [`BlockchainClient`], [`SimChain`], `Debug`, and a joining `Drop` to
/// the node. Keeps each sim's facade to its chain-specific extras.
#[macro_export]
macro_rules! impl_sim_handle {
    ($sim:ty) => {
        impl $crate::client::BlockchainClient for $sim {
            fn chain_name(&self) -> &str {
                $crate::client::BlockchainClient::chain_name(&*self.node)
            }

            fn architecture(&self) -> $crate::client::Architecture {
                $crate::client::BlockchainClient::architecture(&*self.node)
            }

            fn submit(
                &self,
                tx: $crate::types::SignedTransaction,
            ) -> Result<$crate::types::TxId, $crate::client::ChainError> {
                $crate::client::BlockchainClient::submit(&*self.node, tx)
            }

            fn latest_height(&self, shard: u32) -> Result<u64, $crate::client::ChainError> {
                $crate::client::BlockchainClient::latest_height(&*self.node, shard)
            }

            fn block_at(
                &self,
                shard: u32,
                height: u64,
            ) -> Result<Option<$crate::types::Block>, $crate::client::ChainError> {
                $crate::client::BlockchainClient::block_at(&*self.node, shard, height)
            }

            fn pending_txs(&self) -> Result<usize, $crate::client::ChainError> {
                $crate::client::BlockchainClient::pending_txs(&*self.node)
            }

            fn subscribe_commits(
                &self,
            ) -> crossbeam::channel::Receiver<$crate::client::CommitEvent> {
                $crate::client::BlockchainClient::subscribe_commits(&*self.node)
            }

            fn shutdown(&self) {
                $crate::client::BlockchainClient::shutdown(&*self.node)
            }
        }

        impl $crate::kernel::SimChain for $sim {
            fn seed_account(&self, account: $crate::types::Address, checking: u64, savings: u64) {
                $crate::kernel::SimChain::seed_account(&*self.node, account, checking, savings)
            }

            fn account(
                &self,
                account: $crate::types::Address,
            ) -> Option<$crate::state::AccountState> {
                $crate::kernel::SimChain::account(&*self.node, account)
            }

            fn ingress_nodes(&self) -> Vec<String> {
                $crate::kernel::SimChain::ingress_nodes(&*self.node)
            }

            fn sealer_nodes(&self) -> Vec<String> {
                $crate::kernel::SimChain::sealer_nodes(&*self.node)
            }

            fn verify_ledgers(&self) -> Result<(), $crate::ledger::LedgerError> {
                $crate::kernel::SimChain::verify_ledgers(&*self.node)
            }

            fn progress_mark(&self) -> u64 {
                $crate::kernel::SimChain::progress_mark(&*self.node)
            }
        }

        impl std::fmt::Debug for $sim {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($sim))
                    .field("chain", &self.node.kernel().chain_name())
                    .field("stats", &self.node.stats())
                    .finish()
            }
        }

        impl Drop for $sim {
            fn drop(&mut self) {
                self.node.shutdown_and_join();
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_net::LinkConfig;

    /// A minimal policy: one node, fixed 20 ms epochs, FIFO order.
    struct FifoPolicy;

    impl ConsensusPolicy for FifoPolicy {
        fn chain_name(&self) -> &'static str {
            "fifo-sim"
        }

        fn ingress_node(&self, _shard: u32) -> String {
            "fifo-node-0".to_owned()
        }

        fn seal_wait(&self, _shard: u32) -> Duration {
            Duration::from_millis(20)
        }

        fn build_round(&self, kernel: &Kernel, shard: u32) -> Option<Round> {
            let txs = kernel.shard(shard).mempool.drain(1_000);
            if txs.is_empty() {
                return None;
            }
            let mut tx_ids = Vec::with_capacity(txs.len());
            let mut valid = Vec::with_capacity(txs.len());
            {
                let mut state = kernel.shard(shard).state.lock();
                for tx in &txs {
                    tx_ids.push(tx.id);
                    valid.push(state.apply(&tx.tx.op).is_ok());
                }
            }
            Some(Round {
                proposer: "fifo-node-0".to_owned(),
                tx_ids,
                valid,
                gossip_to: Vec::new(),
                mempool_depth: None,
            })
        }
    }

    fn start_fifo() -> Arc<ChainNode<FifoPolicy>> {
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        NodeKernelBuilder::new(clock, net)
            .mempool_capacity(100)
            .sink_endpoint("fifo-node-0")
            .start(FifoPolicy)
    }

    fn signed(nonce: u64) -> SignedTransaction {
        use crate::smallbank::Op;
        use crate::types::Transaction;
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op: Op::DepositChecking {
                account: Address::from_name("k"),
                amount: 1,
            },
            chain_name: "fifo-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
        }
        .sign(&hammer_crypto::Keypair::from_seed(9), &SigParams::fast())
    }

    #[test]
    fn kernel_seals_submitted_txs() {
        let chain = start_fifo();
        chain.seed_account(Address::from_name("k"), 100, 0);
        let rx = chain.subscribe_commits();
        let id = chain.submit(signed(1)).unwrap();
        let event = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(event.tx_id, id);
        assert!(event.success);
        assert_eq!(chain.stats().committed, 1);
        chain.verify_ledgers().unwrap();
        chain.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let chain = start_fifo();
        chain.submit(signed(1)).unwrap();
        chain.shutdown_and_join();
        assert!(chain.threads.lock().is_empty());
        // Idempotent, and submissions now fail cleanly.
        chain.shutdown_and_join();
        assert!(chain.submit(signed(2)).unwrap_err().is_shutdown());
    }

    #[test]
    fn interruptible_sleep_cut_short_by_shutdown() {
        let chain = start_fifo();
        let kernel = Arc::clone(chain.kernel());
        // 1 hour of simulated time at 1000× is 3.6 s of wall time; the
        // shutdown below must cut it to roughly a chunk.
        let waiter = std::thread::spawn(move || {
            let started = Instant::now();
            let completed = kernel.sleep_interruptible(Duration::from_secs(3600));
            (completed, started.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        chain.shutdown();
        let (completed, elapsed) = waiter.join().unwrap();
        assert!(!completed, "sleep should have been interrupted");
        assert!(elapsed < Duration::from_secs(1), "took {elapsed:?}");
    }

    #[test]
    fn mempool_full_is_backpressure() {
        use crate::client::ErrorKind;
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        let chain = NodeKernelBuilder::new(clock, net)
            .mempool_capacity(2)
            .sink_endpoint("fifo-node-0")
            .start(FifoPolicy);
        // Stall-free window is tiny; submit fast enough to overflow.
        let mut saw_backpressure = false;
        for nonce in 1..200 {
            if let Err(err) = chain.submit(signed(nonce)) {
                if err.kind() == ErrorKind::Backpressure {
                    saw_backpressure = true;
                    break;
                }
            }
        }
        assert!(saw_backpressure);
        chain.shutdown();
    }
}
