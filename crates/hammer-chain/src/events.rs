//! A broadcast bus for per-transaction commit events.
//!
//! Chain simulators publish a [`CommitEvent`] for every transaction in
//! every committed block; interactive (Caliper-style) testing subscribes.
//! Subscribers that disconnect are pruned lazily.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::client::CommitEvent;

/// A fan-out bus: every subscriber receives every event published after it
/// subscribed.
#[derive(Debug, Default)]
pub struct CommitBus {
    subscribers: Mutex<Vec<Sender<CommitEvent>>>,
}

impl CommitBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a subscriber and returns its receiving end.
    pub fn subscribe(&self) -> Receiver<CommitEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Publishes an event to every live subscriber, pruning dead ones.
    pub fn publish(&self, event: &CommitEvent) {
        let mut subs = self.subscribers.lock();
        subs.retain(|s| s.send(event.clone()).is_ok());
    }

    /// Publishes a batch (one lock acquisition for the whole block).
    pub fn publish_all(&self, events: &[CommitEvent]) {
        let mut subs = self.subscribers.lock();
        subs.retain(|s| events.iter().all(|e| s.send(e.clone()).is_ok()));
    }

    /// Number of live subscribers (dead ones may be counted until the next
    /// publish).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Transaction, TxId};
    use std::time::Duration;

    fn event(n: u64) -> CommitEvent {
        let tx = Transaction {
            client_id: 0,
            server_id: 0,
            nonce: n,
            op: crate::smallbank::Op::KvGet { key: n },
            chain_name: "t".to_owned(),
            contract_name: "k".to_owned(),
        };
        CommitEvent {
            tx_id: tx.id(),
            success: true,
            block_height: 1,
            shard: 0,
            committed_at: Duration::from_millis(n),
        }
    }

    #[test]
    fn all_subscribers_receive() {
        let bus = CommitBus::new();
        let rx1 = bus.subscribe();
        let rx2 = bus.subscribe();
        bus.publish(&event(1));
        assert_eq!(rx1.try_recv().unwrap().tx_id, event(1).tx_id);
        assert_eq!(rx2.try_recv().unwrap().tx_id, event(1).tx_id);
    }

    #[test]
    fn dropped_subscriber_pruned() {
        let bus = CommitBus::new();
        let rx1 = bus.subscribe();
        {
            let _rx2 = bus.subscribe();
        } // rx2 dropped
        assert_eq!(bus.subscriber_count(), 2);
        bus.publish(&event(1));
        assert_eq!(bus.subscriber_count(), 1);
        assert!(rx1.try_recv().is_ok());
    }

    #[test]
    fn publish_all_delivers_in_order() {
        let bus = CommitBus::new();
        let rx = bus.subscribe();
        let events: Vec<CommitEvent> = (0..5).map(event).collect();
        bus.publish_all(&events);
        for e in &events {
            assert_eq!(rx.try_recv().unwrap().tx_id, e.tx_id);
        }
    }

    #[test]
    fn late_subscriber_misses_earlier_events() {
        let bus = CommitBus::new();
        bus.publish(&event(1));
        let rx = bus.subscribe();
        assert!(rx.try_recv().is_err());
        bus.publish(&event(2));
        assert_eq!(rx.try_recv().unwrap().tx_id, event(2).tx_id);
    }

    // Silence unused-import lint for TxId used only in type position here.
    #[allow(dead_code)]
    fn _t(_x: TxId) {}
}
