//! An append-only block store with hash-chain verification and a
//! transaction index.

use std::collections::HashMap;

use hammer_crypto::Hash32;

use crate::types::{Block, Receipt, TxId, TxStatus};

/// Errors from ledger operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// Appended block's height is not `tip + 1`.
    HeightMismatch {
        /// Height the ledger expected.
        expected: u64,
        /// Height the block carried.
        got: u64,
    },
    /// Appended block's `prev_hash` does not match the tip hash.
    BrokenHashChain,
    /// Block's Merkle root does not match its transaction list.
    BadMerkleRoot,
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::HeightMismatch { expected, got } => {
                write!(f, "height mismatch: expected {expected}, got {got}")
            }
            LedgerError::BrokenHashChain => write!(f, "prev_hash does not match tip"),
            LedgerError::BadMerkleRoot => write!(f, "merkle root does not match transactions"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// An append-only chain of blocks (one shard's ledger).
///
/// Heights start at 1; "height 0" denotes the implicit genesis whose hash
/// is all zeroes.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    blocks: Vec<Block>,
    /// tx id -> (block height, index within the block)
    tx_index: HashMap<TxId, (u64, u32)>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Height of the newest block (0 when empty).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Hash of the newest block header (all-zero when empty).
    pub fn tip_hash(&self) -> Hash32 {
        self.blocks
            .last()
            .map(|b| b.header.hash())
            .unwrap_or([0u8; 32])
    }

    /// Total transactions across all blocks.
    pub fn total_txs(&self) -> usize {
        self.tx_index.len()
    }

    /// Appends a block after validating height, hash chain, and Merkle root.
    pub fn append(&mut self, block: Block) -> Result<(), LedgerError> {
        let expected = self.height() + 1;
        if block.header.height != expected {
            return Err(LedgerError::HeightMismatch {
                expected,
                got: block.header.height,
            });
        }
        if block.header.prev_hash != self.tip_hash() {
            return Err(LedgerError::BrokenHashChain);
        }
        if !block.verify_merkle_root() {
            return Err(LedgerError::BadMerkleRoot);
        }
        for (i, tx_id) in block.tx_ids.iter().enumerate() {
            self.tx_index
                .insert(*tx_id, (block.header.height, i as u32));
        }
        self.blocks.push(block);
        Ok(())
    }

    /// The block at `height` (1-based), if present.
    pub fn block_at(&self, height: u64) -> Option<&Block> {
        if height == 0 {
            return None;
        }
        self.blocks.get(height as usize - 1)
    }

    /// Blocks in the half-open height range `(after, to]`.
    pub fn blocks_after(&self, after: u64) -> &[Block] {
        let start = (after as usize).min(self.blocks.len());
        &self.blocks[start..]
    }

    /// Looks up the block height and in-block index of a transaction.
    pub fn find_tx(&self, tx_id: &TxId) -> Option<(u64, u32)> {
        self.tx_index.get(tx_id).copied()
    }

    /// Builds a commit receipt for a transaction, if it is on the ledger.
    pub fn receipt(&self, tx_id: &TxId) -> Option<Receipt> {
        let (height, idx) = self.find_tx(tx_id)?;
        let block = self.block_at(height)?;
        let success = *block.valid.get(idx as usize)?;
        Some(Receipt {
            tx_id: *tx_id,
            status: if success {
                TxStatus::Committed
            } else {
                TxStatus::Failed
            },
            block_height: height,
            committed_at: block.header.timestamp,
        })
    }

    /// Verifies the whole chain: heights, hash links, Merkle roots.
    pub fn verify_chain(&self) -> Result<(), LedgerError> {
        let mut prev_hash: Hash32 = [0u8; 32];
        for (i, block) in self.blocks.iter().enumerate() {
            let expected = i as u64 + 1;
            if block.header.height != expected {
                return Err(LedgerError::HeightMismatch {
                    expected,
                    got: block.header.height,
                });
            }
            if block.header.prev_hash != prev_hash {
                return Err(LedgerError::BrokenHashChain);
            }
            if !block.verify_merkle_root() {
                return Err(LedgerError::BadMerkleRoot);
            }
            prev_hash = block.header.hash();
        }
        Ok(())
    }

    /// Iterates over all blocks in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Block> {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallbank::Op;
    use crate::types::{Address, Transaction};
    use std::time::Duration;

    fn tx_id(nonce: u64) -> TxId {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op: Op::KvPut {
                key: nonce,
                value: 0,
            },
            chain_name: "t".to_owned(),
            contract_name: "kv".to_owned(),
        }
        .id()
    }

    fn make_block(ledger: &Ledger, n_txs: u64) -> Block {
        let base = ledger.total_txs() as u64 * 1000;
        let ids: Vec<TxId> = (0..n_txs).map(|i| tx_id(base + i)).collect();
        let valid = vec![true; ids.len()];
        Block::new(
            ledger.height() + 1,
            ledger.tip_hash(),
            Duration::from_secs(ledger.height()),
            "node-0",
            0,
            ids,
            valid,
        )
    }

    #[test]
    fn append_and_lookup() {
        let mut ledger = Ledger::new();
        let b1 = make_block(&ledger, 3);
        let first_tx = b1.tx_ids[0];
        ledger.append(b1).unwrap();
        assert_eq!(ledger.height(), 1);
        assert_eq!(ledger.total_txs(), 3);
        assert_eq!(ledger.find_tx(&first_tx), Some((1, 0)));
        assert!(ledger.find_tx(&tx_id(999_999)).is_none());
    }

    #[test]
    fn rejects_wrong_height() {
        let mut ledger = Ledger::new();
        let mut b = make_block(&ledger, 1);
        b.header.height = 5;
        assert!(matches!(
            ledger.append(b),
            Err(LedgerError::HeightMismatch {
                expected: 1,
                got: 5
            })
        ));
    }

    #[test]
    fn rejects_broken_hash_chain() {
        let mut ledger = Ledger::new();
        ledger.append(make_block(&ledger, 1)).unwrap();
        let mut b = make_block(&ledger, 1);
        b.header.prev_hash = [9u8; 32];
        assert_eq!(ledger.append(b), Err(LedgerError::BrokenHashChain));
    }

    #[test]
    fn rejects_bad_merkle_root() {
        let mut ledger = Ledger::new();
        let mut b = make_block(&ledger, 2);
        b.tx_ids[0] = tx_id(123_456);
        assert_eq!(ledger.append(b), Err(LedgerError::BadMerkleRoot));
    }

    #[test]
    fn verify_chain_passes_for_valid_chain() {
        let mut ledger = Ledger::new();
        for _ in 0..5 {
            let b = make_block(&ledger, 2);
            ledger.append(b).unwrap();
        }
        ledger.verify_chain().unwrap();
    }

    #[test]
    fn blocks_after_returns_suffix() {
        let mut ledger = Ledger::new();
        for _ in 0..4 {
            let b = make_block(&ledger, 1);
            ledger.append(b).unwrap();
        }
        assert_eq!(ledger.blocks_after(0).len(), 4);
        assert_eq!(ledger.blocks_after(2).len(), 2);
        assert_eq!(ledger.blocks_after(4).len(), 0);
        assert_eq!(ledger.blocks_after(99).len(), 0);
        assert_eq!(ledger.blocks_after(2)[0].header.height, 3);
    }

    #[test]
    fn block_at_bounds() {
        let mut ledger = Ledger::new();
        ledger.append(make_block(&ledger, 1)).unwrap();
        assert!(ledger.block_at(0).is_none());
        assert!(ledger.block_at(1).is_some());
        assert!(ledger.block_at(2).is_none());
    }

    #[test]
    fn receipts_reflect_validity() {
        let mut ledger = Ledger::new();
        let ids = vec![tx_id(1), tx_id(2)];
        let block = Block::new(
            1,
            ledger.tip_hash(),
            Duration::from_secs(7),
            "n",
            0,
            ids.clone(),
            vec![true, false],
        );
        ledger.append(block).unwrap();
        let ok = ledger.receipt(&ids[0]).unwrap();
        assert_eq!(ok.status, crate::types::TxStatus::Committed);
        assert_eq!(ok.block_height, 1);
        assert_eq!(ok.committed_at, Duration::from_secs(7));
        let bad = ledger.receipt(&ids[1]).unwrap();
        assert_eq!(bad.status, crate::types::TxStatus::Failed);
        assert!(ledger.receipt(&tx_id(999)).is_none());
    }

    #[test]
    fn empty_block_is_allowed() {
        let mut ledger = Ledger::new();
        let b = make_block(&ledger, 0);
        assert!(b.is_empty());
        ledger.append(b).unwrap();
        assert_eq!(ledger.height(), 1);
        ledger.verify_chain().unwrap();
    }

    // Unused import silencer: Address is used in other test modules.
    #[allow(dead_code)]
    fn _touch(_a: Address) {}
}
