//! The SmallBank contract — the paper's evaluation workload — plus a
//! YCSB-style key/value extension ("self-defined workloads", §II-B).
//!
//! SmallBank models a basic banking system. Each account has a *checking*
//! and a *savings* balance. The four primary operations the paper uses
//! (deposit, withdraw, transfer, amalgamate) map to the classic SmallBank
//! procedures; reads are also provided for mixed workloads.

use crate::types::Address;

/// A contract operation carried inside a transaction.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Creates an account with initial checking/savings balances.
    CreateAccount {
        /// The new account.
        account: Address,
        /// Initial checking balance.
        checking: u64,
        /// Initial savings balance.
        savings: u64,
    },
    /// Deposits `amount` into checking (the paper's *deposit*).
    DepositChecking {
        /// Target account.
        account: Address,
        /// Amount to add.
        amount: u64,
    },
    /// Writes a check against checking (the paper's *withdraw*); fails on
    /// insufficient funds.
    WriteCheck {
        /// Target account.
        account: Address,
        /// Amount to remove.
        amount: u64,
    },
    /// Transfers from one checking account to another (the paper's
    /// *transfer*).
    SendPayment {
        /// Source account.
        from: Address,
        /// Destination account.
        to: Address,
        /// Amount to move.
        amount: u64,
    },
    /// Moves the entire savings balance into checking of another account
    /// (the paper's *amalgamate*).
    Amalgamate {
        /// Account whose savings are drained.
        from: Address,
        /// Account whose checking is credited.
        to: Address,
    },
    /// Adds `amount` to savings (classic SmallBank `TransactSavings`).
    TransactSavings {
        /// Target account.
        account: Address,
        /// Amount to add.
        amount: u64,
    },
    /// Reads both balances.
    Balance {
        /// Account to read.
        account: Address,
    },
    /// YCSB-style blind write of an opaque value.
    KvPut {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// YCSB-style read.
    KvGet {
        /// Key.
        key: u64,
    },
}

impl Op {
    /// Stable numeric tag used in the byte encoding.
    pub fn tag(&self) -> u8 {
        match self {
            Op::CreateAccount { .. } => 0,
            Op::DepositChecking { .. } => 1,
            Op::WriteCheck { .. } => 2,
            Op::SendPayment { .. } => 3,
            Op::Amalgamate { .. } => 4,
            Op::TransactSavings { .. } => 5,
            Op::Balance { .. } => 6,
            Op::KvPut { .. } => 7,
            Op::KvGet { .. } => 8,
        }
    }

    /// Human-readable operation name (matches the paper's terminology).
    pub fn name(&self) -> &'static str {
        match self {
            Op::CreateAccount { .. } => "create_account",
            Op::DepositChecking { .. } => "deposit",
            Op::WriteCheck { .. } => "withdraw",
            Op::SendPayment { .. } => "transfer",
            Op::Amalgamate { .. } => "amalgamate",
            Op::TransactSavings { .. } => "transact_savings",
            Op::Balance { .. } => "balance",
            Op::KvPut { .. } => "kv_put",
            Op::KvGet { .. } => "kv_get",
        }
    }

    /// Whether the operation only reads state.
    pub fn is_read_only(&self) -> bool {
        matches!(self, Op::Balance { .. } | Op::KvGet { .. })
    }

    /// The accounts this operation touches (used by sharded chains to
    /// route, and by conflict estimators).
    pub fn touched_accounts(&self) -> Vec<Address> {
        match self {
            Op::CreateAccount { account, .. }
            | Op::DepositChecking { account, .. }
            | Op::WriteCheck { account, .. }
            | Op::TransactSavings { account, .. }
            | Op::Balance { account } => vec![*account],
            Op::SendPayment { from, to, .. } | Op::Amalgamate { from, to } => vec![*from, *to],
            Op::KvPut { key, .. } => vec![Address(*key)],
            Op::KvGet { key } => vec![Address(*key)],
        }
    }

    /// Appends the canonical byte encoding (used for hashing/signing).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            Op::CreateAccount {
                account,
                checking,
                savings,
            } => {
                out.extend_from_slice(&account.0.to_be_bytes());
                out.extend_from_slice(&checking.to_be_bytes());
                out.extend_from_slice(&savings.to_be_bytes());
            }
            Op::DepositChecking { account, amount }
            | Op::WriteCheck { account, amount }
            | Op::TransactSavings { account, amount } => {
                out.extend_from_slice(&account.0.to_be_bytes());
                out.extend_from_slice(&amount.to_be_bytes());
            }
            Op::SendPayment { from, to, amount } => {
                out.extend_from_slice(&from.0.to_be_bytes());
                out.extend_from_slice(&to.0.to_be_bytes());
                out.extend_from_slice(&amount.to_be_bytes());
            }
            Op::Amalgamate { from, to } => {
                out.extend_from_slice(&from.0.to_be_bytes());
                out.extend_from_slice(&to.0.to_be_bytes());
            }
            Op::Balance { account } => {
                out.extend_from_slice(&account.0.to_be_bytes());
            }
            Op::KvPut { key, value } => {
                out.extend_from_slice(&key.to_be_bytes());
                out.extend_from_slice(&value.to_be_bytes());
            }
            Op::KvGet { key } => {
                out.extend_from_slice(&key.to_be_bytes());
            }
        }
    }
}

/// Result value of a successfully executed operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OpOutput {
    /// Write succeeded, no return value.
    #[default]
    Ok,
    /// Balance read: `(checking, savings)`.
    Balances(u64, u64),
    /// KV read result (`None` for missing keys).
    KvValue(Option<u64>),
}

/// Execution failure of an operation against the contract state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The referenced account does not exist.
    UnknownAccount(Address),
    /// The account already exists.
    AccountExists(Address),
    /// Checking or savings balance is too small.
    InsufficientFunds {
        /// The short account.
        account: Address,
        /// Balance available.
        available: u64,
        /// Amount requested.
        requested: u64,
    },
    /// Balance arithmetic overflowed.
    Overflow,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownAccount(a) => write!(f, "unknown account {a}"),
            ExecError::AccountExists(a) => write!(f, "account {a} already exists"),
            ExecError::InsufficientFunds {
                account,
                available,
                requested,
            } => write!(
                f,
                "insufficient funds in {account}: have {available}, need {requested}"
            ),
            ExecError::Overflow => write!(f, "balance arithmetic overflow"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: &str) -> Address {
        Address::from_name(n)
    }

    #[test]
    fn tags_are_unique() {
        let ops = [
            Op::CreateAccount {
                account: addr("a"),
                checking: 0,
                savings: 0,
            },
            Op::DepositChecking {
                account: addr("a"),
                amount: 1,
            },
            Op::WriteCheck {
                account: addr("a"),
                amount: 1,
            },
            Op::SendPayment {
                from: addr("a"),
                to: addr("b"),
                amount: 1,
            },
            Op::Amalgamate {
                from: addr("a"),
                to: addr("b"),
            },
            Op::TransactSavings {
                account: addr("a"),
                amount: 1,
            },
            Op::Balance { account: addr("a") },
            Op::KvPut { key: 1, value: 2 },
            Op::KvGet { key: 1 },
        ];
        let mut tags: Vec<u8> = ops.iter().map(Op::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), ops.len());
    }

    #[test]
    fn encoding_distinguishes_similar_ops() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Op::DepositChecking {
            account: addr("a"),
            amount: 5,
        }
        .encode_into(&mut a);
        Op::WriteCheck {
            account: addr("a"),
            amount: 5,
        }
        .encode_into(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn read_only_classification() {
        assert!(Op::Balance { account: addr("a") }.is_read_only());
        assert!(Op::KvGet { key: 3 }.is_read_only());
        assert!(!Op::DepositChecking {
            account: addr("a"),
            amount: 1
        }
        .is_read_only());
        assert!(!Op::KvPut { key: 3, value: 4 }.is_read_only());
    }

    #[test]
    fn touched_accounts_cover_both_sides() {
        let op = Op::SendPayment {
            from: addr("a"),
            to: addr("b"),
            amount: 1,
        };
        let touched = op.touched_accounts();
        assert!(touched.contains(&addr("a")));
        assert!(touched.contains(&addr("b")));
        assert_eq!(touched.len(), 2);
    }

    #[test]
    fn op_names_match_paper_terms() {
        assert_eq!(
            Op::DepositChecking {
                account: addr("a"),
                amount: 1
            }
            .name(),
            "deposit"
        );
        assert_eq!(
            Op::WriteCheck {
                account: addr("a"),
                amount: 1
            }
            .name(),
            "withdraw"
        );
        assert_eq!(
            Op::SendPayment {
                from: addr("a"),
                to: addr("b"),
                amount: 1
            }
            .name(),
            "transfer"
        );
        assert_eq!(
            Op::Amalgamate {
                from: addr("a"),
                to: addr("b")
            }
            .name(),
            "amalgamate"
        );
    }

    #[test]
    fn exec_error_display() {
        let e = ExecError::InsufficientFunds {
            account: addr("a"),
            available: 3,
            requested: 10,
        };
        let text = e.to_string();
        assert!(text.contains("have 3"));
        assert!(text.contains("need 10"));
    }
}
