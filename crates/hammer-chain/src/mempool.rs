//! A bounded, de-duplicating transaction pool.

use std::collections::{HashSet, VecDeque};

use parking_lot::Mutex;

use hammer_crypto::sig::SigParams;

use crate::types::{verify_signed_batch, SignedTransaction, TxId};

/// Why a submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MempoolError {
    /// The pool is at capacity (the node is overloaded; the paper's Fig. 10
    /// shows nodes rejecting requests beyond their processing capacity).
    Full,
    /// A transaction with the same id is already pooled.
    Duplicate,
    /// The transaction failed signature verification at admission.
    BadSignature,
}

impl std::fmt::Display for MempoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MempoolError::Full => write!(f, "mempool is full"),
            MempoolError::Duplicate => write!(f, "duplicate transaction"),
            MempoolError::BadSignature => write!(f, "invalid signature"),
        }
    }
}

impl std::error::Error for MempoolError {}

struct Inner {
    queue: VecDeque<SignedTransaction>,
    ids: HashSet<TxId>,
    accepted: u64,
    rejected_full: u64,
    rejected_dup: u64,
}

/// A thread-safe FIFO mempool with a hard capacity.
pub struct Mempool {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for Mempool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Mempool")
            .field("len", &inner.queue.len())
            .field("capacity", &self.capacity)
            .field("accepted", &inner.accepted)
            .finish()
    }
}

impl Mempool {
    /// Creates a pool holding at most `capacity` transactions.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mempool capacity must be positive");
        Mempool {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                ids: HashSet::new(),
                accepted: 0,
                rejected_full: 0,
                rejected_dup: 0,
            }),
            capacity,
        }
    }

    /// Current number of pooled transactions.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds a transaction, enforcing capacity and uniqueness.
    pub fn push(&self, tx: SignedTransaction) -> Result<(), MempoolError> {
        let mut inner = self.inner.lock();
        if inner.queue.len() >= self.capacity {
            inner.rejected_full += 1;
            return Err(MempoolError::Full);
        }
        if !inner.ids.insert(tx.id) {
            inner.rejected_dup += 1;
            return Err(MempoolError::Duplicate);
        }
        inner.queue.push_back(tx);
        inner.accepted += 1;
        Ok(())
    }

    /// Adds a burst of transactions under a single lock acquisition,
    /// returning one result per input in order.
    pub fn push_batch(
        &self,
        txs: impl IntoIterator<Item = SignedTransaction>,
    ) -> Vec<Result<(), MempoolError>> {
        let mut inner = self.inner.lock();
        txs.into_iter()
            .map(|tx| {
                if inner.queue.len() >= self.capacity {
                    inner.rejected_full += 1;
                    return Err(MempoolError::Full);
                }
                if !inner.ids.insert(tx.id) {
                    inner.rejected_dup += 1;
                    return Err(MempoolError::Duplicate);
                }
                inner.queue.push_back(tx);
                inner.accepted += 1;
                Ok(())
            })
            .collect()
    }

    /// Batch admission with signature checking: the whole burst goes
    /// through [`verify_signed_batch`] (amortising per-key precomputation
    /// across a block-sized group of signatures), then the valid
    /// transactions are admitted under one lock. Returns one result per
    /// input transaction, in order.
    pub fn push_verified_batch(
        &self,
        txs: Vec<SignedTransaction>,
        params: &SigParams,
    ) -> Vec<Result<(), MempoolError>> {
        let verdicts = verify_signed_batch(&txs, params);
        let mut inner = self.inner.lock();
        txs.into_iter()
            .zip(verdicts)
            .map(|(tx, sig_ok)| {
                if !sig_ok {
                    return Err(MempoolError::BadSignature);
                }
                if inner.queue.len() >= self.capacity {
                    inner.rejected_full += 1;
                    return Err(MempoolError::Full);
                }
                if !inner.ids.insert(tx.id) {
                    inner.rejected_dup += 1;
                    return Err(MempoolError::Duplicate);
                }
                inner.queue.push_back(tx);
                inner.accepted += 1;
                Ok(())
            })
            .collect()
    }

    /// Removes and returns up to `max` transactions in FIFO order.
    pub fn drain(&self, max: usize) -> Vec<SignedTransaction> {
        let mut inner = self.inner.lock();
        let n = max.min(inner.queue.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let tx = inner.queue.pop_front().expect("checked length");
            inner.ids.remove(&tx.id);
            out.push(tx);
        }
        out
    }

    /// Drains every pooled transaction.
    pub fn drain_all(&self) -> Vec<SignedTransaction> {
        self.drain(usize::MAX)
    }

    /// `(accepted, rejected_full, rejected_duplicate)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (inner.accepted, inner.rejected_full, inner.rejected_dup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallbank::Op;
    use crate::types::Transaction;
    use hammer_crypto::sig::SigParams;
    use hammer_crypto::Keypair;

    fn signed(nonce: u64) -> SignedTransaction {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op: Op::KvPut {
                key: nonce,
                value: 1,
            },
            chain_name: "t".to_owned(),
            contract_name: "kv".to_owned(),
        }
        .sign(&Keypair::from_seed(1), &SigParams::fast())
    }

    #[test]
    fn push_and_drain_fifo() {
        let pool = Mempool::new(10);
        for i in 0..5 {
            pool.push(signed(i)).unwrap();
        }
        assert_eq!(pool.len(), 5);
        let drained = pool.drain(3);
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].tx.nonce, 0);
        assert_eq!(drained[2].tx.nonce, 2);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn capacity_enforced() {
        let pool = Mempool::new(2);
        pool.push(signed(1)).unwrap();
        pool.push(signed(2)).unwrap();
        assert_eq!(pool.push(signed(3)), Err(MempoolError::Full));
        let (accepted, full, _) = pool.stats();
        assert_eq!(accepted, 2);
        assert_eq!(full, 1);
    }

    #[test]
    fn duplicates_rejected() {
        let pool = Mempool::new(10);
        pool.push(signed(1)).unwrap();
        assert_eq!(pool.push(signed(1)), Err(MempoolError::Duplicate));
        let (_, _, dups) = pool.stats();
        assert_eq!(dups, 1);
    }

    #[test]
    fn drained_tx_can_be_resubmitted() {
        let pool = Mempool::new(10);
        pool.push(signed(1)).unwrap();
        pool.drain_all();
        // Once drained, the id is free again (e.g. a retry after timeout).
        pool.push(signed(1)).unwrap();
    }

    #[test]
    fn drain_more_than_present() {
        let pool = Mempool::new(10);
        pool.push(signed(1)).unwrap();
        assert_eq!(pool.drain(100).len(), 1);
        assert!(pool.is_empty());
        assert_eq!(pool.drain(100).len(), 0);
    }

    #[test]
    fn push_batch_single_lock_burst() {
        let pool = Mempool::new(3);
        let results = pool.push_batch(vec![signed(1), signed(2), signed(2), signed(3), signed(4)]);
        assert_eq!(
            results,
            vec![
                Ok(()),
                Ok(()),
                Err(MempoolError::Duplicate),
                Ok(()),
                Err(MempoolError::Full),
            ]
        );
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn push_verified_batch_rejects_bad_signatures() {
        let pool = Mempool::new(10);
        let mut bad = signed(2);
        bad.signature.s ^= 1;
        let results = pool.push_verified_batch(vec![signed(1), bad, signed(3)], &SigParams::fast());
        assert_eq!(
            results,
            vec![Ok(()), Err(MempoolError::BadSignature), Ok(())]
        );
        assert_eq!(pool.len(), 2);
        let drained = pool.drain_all();
        assert_eq!(drained[0].tx.nonce, 1);
        assert_eq!(drained[1].tx.nonce, 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Mempool::new(0);
    }

    #[test]
    fn concurrent_pushes_respect_capacity() {
        use std::sync::Arc;
        let pool = Arc::new(Mempool::new(100));
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let _ = pool.push(signed(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.len(), 100);
        let (accepted, full, _) = pool.stats();
        assert_eq!(accepted, 100);
        assert_eq!(full, 100);
    }
}
