//! Bridges between [`BlockchainClient`] and JSON-RPC.
//!
//! [`serve`] exposes any client implementation as an [`RpcServer`] with the
//! generic method set; [`RpcChainClient`] consumes such a server and
//! implements [`BlockchainClient`] again. Composing the two puts a full
//! JSON encode/decode round trip between the driver and the chain — the
//! same boundary a multi-language deployment has — without changing either
//! side.

use std::sync::Arc;

use crossbeam::channel::Receiver;
use hammer_rpc::json::Value;
use hammer_rpc::jsonrpc::RpcError;
use hammer_rpc::transport::{RpcClient, RpcServer};

use crate::client::{Architecture, BlockchainClient, ChainError, CommitEvent};
use crate::codec;
use crate::kernel::SimChain;
use crate::ledger::LedgerError;
use crate::mempool::MempoolError;
use crate::types::{Address, Block, SignedTransaction, TxId};

/// Application error codes used on the wire.
mod codes {
    pub const REJECTED_FULL: i64 = -1001;
    pub const REJECTED_DUP: i64 = -1002;
    pub const BAD_SIGNATURE: i64 = -1003;
    pub const UNKNOWN_SHARD: i64 = -1004;
    pub const SHUTDOWN: i64 = -1005;
    pub const UNAVAILABLE: i64 = -1006;
    pub const PROTOCOL: i64 = -1007;
    pub const TRANSPORT: i64 = -1099;
}

// The wire mapping is the one place direct variant matching is allowed:
// the adapter lives inside `hammer-chain`, so adding a variant updates
// the enum and this table in the same change.
fn chain_error_to_rpc(err: ChainError) -> RpcError {
    match err {
        ChainError::Rejected(MempoolError::Full) => {
            RpcError::application(codes::REJECTED_FULL, "mempool full")
        }
        ChainError::Rejected(MempoolError::Duplicate) => {
            RpcError::application(codes::REJECTED_DUP, "duplicate transaction")
        }
        ChainError::Rejected(MempoolError::BadSignature) | ChainError::BadSignature => {
            RpcError::application(codes::BAD_SIGNATURE, "bad signature")
        }
        ChainError::UnknownShard(s) => {
            RpcError::application(codes::UNKNOWN_SHARD, format!("unknown shard {s}"))
        }
        ChainError::Shutdown => RpcError::application(codes::SHUTDOWN, "chain shut down"),
        ChainError::Transport(msg) => RpcError::application(codes::TRANSPORT, msg),
        ChainError::Unavailable { node } => {
            RpcError::application(codes::UNAVAILABLE, format!("node {node} is unavailable"))
        }
        ChainError::Protocol(msg) => RpcError::application(codes::PROTOCOL, msg),
    }
}

pub(crate) fn rpc_error_to_chain(err: RpcError) -> ChainError {
    match err.code.code() {
        codes::REJECTED_FULL => ChainError::rejected(MempoolError::Full),
        codes::REJECTED_DUP => ChainError::rejected(MempoolError::Duplicate),
        codes::BAD_SIGNATURE => ChainError::bad_signature(),
        codes::UNKNOWN_SHARD => ChainError::unknown_shard(0),
        codes::SHUTDOWN => ChainError::shutdown(),
        codes::UNAVAILABLE => ChainError::unavailable(err.to_string()),
        codes::PROTOCOL => ChainError::protocol(err.to_string()),
        _ => ChainError::transport(err.to_string()),
    }
}

/// Exposes `chain` over JSON-RPC with the generic method set:
/// `chain_name`, `architecture`, `submit_transaction`, `latest_height`,
/// `get_block`, `pending_txs`.
pub fn serve(chain: Arc<dyn BlockchainClient>) -> RpcServer {
    let server = RpcServer::new(chain.chain_name());
    {
        let chain = Arc::clone(&chain);
        server.register("chain_name", move |_| Ok(Value::from(chain.chain_name())));
    }
    {
        let chain = Arc::clone(&chain);
        server.register("architecture", move |_| {
            let value = match chain.architecture() {
                Architecture::NonSharded => Value::object([("type", Value::from("non_sharded"))]),
                Architecture::Sharded { shards } => Value::object([
                    ("type", Value::from("sharded")),
                    ("shards", Value::from(shards as u64)),
                ]),
            };
            Ok(value)
        });
    }
    {
        let chain = Arc::clone(&chain);
        server.register("submit_transaction", move |params| {
            let tx = codec::decode_signed_tx(&params)
                .map_err(|e| RpcError::invalid_params(e.to_string()))?;
            let id = chain.submit(tx).map_err(chain_error_to_rpc)?;
            Ok(Value::from(hammer_crypto::to_hex(id.as_bytes())))
        });
    }
    {
        let chain = Arc::clone(&chain);
        server.register("latest_height", move |params| {
            let shard = params.get("shard").and_then(Value::as_u64).unwrap_or(0) as u32;
            let height = chain.latest_height(shard).map_err(chain_error_to_rpc)?;
            Ok(Value::from(height))
        });
    }
    {
        let chain = Arc::clone(&chain);
        server.register("get_block", move |params| {
            let shard = params.get("shard").and_then(Value::as_u64).unwrap_or(0) as u32;
            let height = params
                .get("height")
                .and_then(Value::as_u64)
                .ok_or_else(|| RpcError::invalid_params("missing 'height'"))?;
            match chain.block_at(shard, height).map_err(chain_error_to_rpc)? {
                Some(block) => Ok(codec::encode_block(&block)),
                None => Ok(Value::Null),
            }
        });
    }
    {
        let chain = Arc::clone(&chain);
        server.register("pending_txs", move |_| {
            let n = chain.pending_txs().map_err(chain_error_to_rpc)?;
            Ok(Value::from(n))
        });
    }
    server
}

/// Encodes a [`LedgerError`] for the `verify_ledgers` wire response.
fn encode_ledger_error(err: &LedgerError) -> Value {
    match err {
        LedgerError::HeightMismatch { expected, got } => Value::object([
            ("kind", Value::from("height_mismatch")),
            ("expected", Value::from(*expected)),
            ("got", Value::from(*got)),
        ]),
        LedgerError::BrokenHashChain => Value::object([("kind", Value::from("broken_hash_chain"))]),
        LedgerError::BadMerkleRoot => Value::object([("kind", Value::from("bad_merkle_root"))]),
    }
}

pub(crate) fn decode_ledger_error(v: &Value) -> Option<LedgerError> {
    match v.get("kind").and_then(Value::as_str)? {
        "height_mismatch" => Some(LedgerError::HeightMismatch {
            expected: v.get("expected").and_then(Value::as_u64).unwrap_or(0),
            got: v.get("got").and_then(Value::as_u64).unwrap_or(0),
        }),
        "broken_hash_chain" => Some(LedgerError::BrokenHashChain),
        "bad_merkle_root" => Some(LedgerError::BadMerkleRoot),
        _ => None,
    }
}

/// Exposes a full [`SimChain`] over JSON-RPC: everything [`serve`]
/// registers plus the deployment-facing methods a supervisor and remote
/// driver need — `seed_account`, `get_account`, `ingress_nodes`,
/// `sealer_nodes`, `verify_ledgers`, `progress_mark`, and
/// `shutdown_chain`. This is the method set a `node-host` process serves
/// over TCP; addresses travel as decimal strings (the [`codec`] id
/// convention).
pub fn serve_sim(chain: Arc<dyn SimChain>) -> RpcServer {
    let server = serve(Arc::clone(&chain) as Arc<dyn BlockchainClient>);
    {
        let chain = Arc::clone(&chain);
        server.register("seed_account", move |params| {
            let account = params
                .get("account")
                .and_then(Value::as_str)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| RpcError::invalid_params("missing 'account' (u64 string)"))?;
            let checking = params.get("checking").and_then(Value::as_u64).unwrap_or(0);
            let savings = params.get("savings").and_then(Value::as_u64).unwrap_or(0);
            chain.seed_account(Address(account), checking, savings);
            Ok(Value::Null)
        });
    }
    {
        let chain = Arc::clone(&chain);
        server.register("get_account", move |params| {
            let account = params
                .get("account")
                .and_then(Value::as_str)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| RpcError::invalid_params("missing 'account' (u64 string)"))?;
            Ok(match chain.account(Address(account)) {
                Some(state) => Value::object([
                    ("checking", Value::from(state.checking)),
                    ("savings", Value::from(state.savings)),
                    ("version", Value::from(state.version)),
                ]),
                None => Value::Null,
            })
        });
    }
    {
        let chain = Arc::clone(&chain);
        server.register("ingress_nodes", move |_| {
            Ok(Value::Array(
                chain.ingress_nodes().into_iter().map(Value::from).collect(),
            ))
        });
    }
    {
        let chain = Arc::clone(&chain);
        server.register("sealer_nodes", move |_| {
            Ok(Value::Array(
                chain.sealer_nodes().into_iter().map(Value::from).collect(),
            ))
        });
    }
    {
        let chain = Arc::clone(&chain);
        server.register("verify_ledgers", move |_| {
            Ok(match chain.verify_ledgers() {
                Ok(()) => Value::object([("ok", Value::from(true))]),
                Err(e) => Value::object([
                    ("ok", Value::from(false)),
                    ("error", encode_ledger_error(&e)),
                ]),
            })
        });
    }
    {
        let chain = Arc::clone(&chain);
        server.register("progress_mark", move |_| {
            Ok(Value::from(chain.progress_mark()))
        });
    }
    {
        let chain = Arc::clone(&chain);
        // Named `shutdown_chain` (not `shutdown`) so a typo'd method list
        // can never confuse stopping the chain with closing a connection.
        server.register("shutdown_chain", move |_| {
            chain.shutdown();
            Ok(Value::Null)
        });
    }
    server
}

/// Serves an [`RpcServer`]'s dispatch table over real TCP: the listener
/// hands each length-prefixed frame to
/// [`RpcServer::handle_bytes_into`] — the identical entry point the
/// in-process transport uses, so both deploy modes execute the same
/// dispatch and codec code on byte-identical JSON.
pub fn serve_tcp(
    server: RpcServer,
    addr: &str,
    config: hammer_net::TcpServerConfig,
) -> std::io::Result<hammer_net::TcpRpcServer> {
    let handler: hammer_net::RawHandler =
        Arc::new(move |req: &[u8], out: &mut String| server.handle_bytes_into(req, out));
    hammer_net::TcpRpcServer::bind(addr, handler, config)
}

/// A [`BlockchainClient`] backed by a JSON-RPC connection.
///
/// Commit-event subscription still uses the underlying chain handle
/// (events are push-based; a real deployment would use a streaming
/// connection, which the in-proc transport models with a channel).
pub struct RpcChainClient {
    rpc: RpcClient,
    name: String,
    architecture: Architecture,
    /// Push-event source (stands in for a streaming subscription).
    events: Arc<dyn BlockchainClient>,
}

impl RpcChainClient {
    /// Connects to a served chain, fetching its name and architecture.
    pub fn connect(
        server: &RpcServer,
        chain: Arc<dyn BlockchainClient>,
    ) -> Result<Self, ChainError> {
        let rpc = server.client();
        let name = rpc
            .call("chain_name", Value::Null)
            .map_err(rpc_error_to_chain)?
            .as_str()
            .unwrap_or("unknown")
            .to_owned();
        let arch_value = rpc
            .call("architecture", Value::Null)
            .map_err(rpc_error_to_chain)?;
        let architecture = match arch_value.get("type").and_then(Value::as_str) {
            Some("sharded") => Architecture::Sharded {
                shards: arch_value
                    .get("shards")
                    .and_then(Value::as_u64)
                    .unwrap_or(1) as u32,
            },
            _ => Architecture::NonSharded,
        };
        Ok(RpcChainClient {
            rpc,
            name,
            architecture,
            events: chain,
        })
    }
}

impl BlockchainClient for RpcChainClient {
    fn chain_name(&self) -> &str {
        &self.name
    }

    fn architecture(&self) -> Architecture {
        self.architecture
    }

    fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError> {
        let id = tx.id;
        self.rpc
            .call("submit_transaction", codec::encode_signed_tx(&tx))
            .map_err(rpc_error_to_chain)?;
        Ok(id)
    }

    fn latest_height(&self, shard: u32) -> Result<u64, ChainError> {
        let v = self
            .rpc
            .call(
                "latest_height",
                Value::object([("shard", Value::from(shard as u64))]),
            )
            .map_err(rpc_error_to_chain)?;
        v.as_u64()
            .ok_or_else(|| ChainError::Transport("latest_height: non-numeric".to_owned()))
    }

    fn block_at(&self, shard: u32, height: u64) -> Result<Option<Block>, ChainError> {
        let v = self
            .rpc
            .call(
                "get_block",
                Value::object([
                    ("shard", Value::from(shard as u64)),
                    ("height", Value::from(height)),
                ]),
            )
            .map_err(rpc_error_to_chain)?;
        if v.is_null() {
            return Ok(None);
        }
        codec::decode_block(&v)
            .map(Some)
            .map_err(|e| ChainError::Transport(e.to_string()))
    }

    fn pending_txs(&self) -> Result<usize, ChainError> {
        let v = self
            .rpc
            .call("pending_txs", Value::Null)
            .map_err(rpc_error_to_chain)?;
        v.as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| ChainError::Transport("pending_txs: non-numeric".to_owned()))
    }

    fn subscribe_commits(&self) -> Receiver<CommitEvent> {
        self.events.subscribe_commits()
    }

    fn shutdown(&self) {
        self.events.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallbank::Op;
    use crate::types::Transaction;
    use crossbeam::channel::{unbounded, Sender};
    use hammer_crypto::sig::SigParams;
    use hammer_crypto::Keypair;
    use parking_lot::Mutex;
    use std::time::Duration;

    /// A minimal in-memory chain for adapter tests.
    struct MockChain {
        blocks: Mutex<Vec<Block>>,
        submitted: Mutex<Vec<TxId>>,
        subscribers: Mutex<Vec<Sender<CommitEvent>>>,
    }

    impl MockChain {
        fn new() -> Self {
            MockChain {
                blocks: Mutex::new(Vec::new()),
                submitted: Mutex::new(Vec::new()),
                subscribers: Mutex::new(Vec::new()),
            }
        }
    }

    impl BlockchainClient for MockChain {
        fn chain_name(&self) -> &str {
            "mock-chain"
        }
        fn architecture(&self) -> Architecture {
            Architecture::Sharded { shards: 2 }
        }
        fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError> {
            let id = tx.id;
            self.submitted.lock().push(id);
            let mut blocks = self.blocks.lock();
            let height = blocks.len() as u64 + 1;
            let prev = blocks
                .last()
                .map(|b: &Block| b.header.hash())
                .unwrap_or([0; 32]);
            blocks.push(Block::new(
                height,
                prev,
                Duration::from_millis(height),
                "mock",
                0,
                vec![id],
                vec![true],
            ));
            Ok(id)
        }
        fn latest_height(&self, shard: u32) -> Result<u64, ChainError> {
            if shard > 1 {
                return Err(ChainError::UnknownShard(shard));
            }
            Ok(self.blocks.lock().len() as u64)
        }
        fn block_at(&self, _shard: u32, height: u64) -> Result<Option<Block>, ChainError> {
            if height == 0 {
                return Ok(None);
            }
            Ok(self.blocks.lock().get(height as usize - 1).cloned())
        }
        fn pending_txs(&self) -> Result<usize, ChainError> {
            Ok(0)
        }
        fn subscribe_commits(&self) -> Receiver<CommitEvent> {
            let (tx, rx) = unbounded();
            self.subscribers.lock().push(tx);
            rx
        }
        fn shutdown(&self) {}
    }

    fn signed_tx(nonce: u64) -> SignedTransaction {
        Transaction {
            client_id: 1,
            server_id: 1,
            nonce,
            op: Op::KvPut {
                key: nonce,
                value: 7,
            },
            chain_name: "mock-chain".to_owned(),
            contract_name: "kv".to_owned(),
        }
        .sign(&Keypair::from_seed(3), &SigParams::fast())
    }

    #[test]
    fn full_rpc_roundtrip() {
        let chain: Arc<dyn BlockchainClient> = Arc::new(MockChain::new());
        let server = serve(Arc::clone(&chain));
        let client = RpcChainClient::connect(&server, Arc::clone(&chain)).unwrap();

        assert_eq!(client.chain_name(), "mock-chain");
        assert_eq!(client.architecture(), Architecture::Sharded { shards: 2 });

        let tx = signed_tx(1);
        let id = client.submit(tx).unwrap();
        assert_eq!(client.latest_height(0).unwrap(), 1);
        let block = client.block_at(0, 1).unwrap().unwrap();
        assert_eq!(block.tx_ids, vec![id]);
        assert!(client.block_at(0, 99).unwrap().is_none());
        assert_eq!(client.pending_txs().unwrap(), 0);
    }

    #[test]
    fn shard_errors_propagate() {
        let chain: Arc<dyn BlockchainClient> = Arc::new(MockChain::new());
        let server = serve(Arc::clone(&chain));
        let client = RpcChainClient::connect(&server, chain).unwrap();
        let err = client.latest_height(5).unwrap_err();
        assert!(matches!(err, ChainError::UnknownShard(_)));
    }

    #[test]
    fn invalid_params_surface_as_transport_errors() {
        let chain: Arc<dyn BlockchainClient> = Arc::new(MockChain::new());
        let server = serve(Arc::clone(&chain));
        let raw = server.client();
        // get_block without height.
        let err = raw.call("get_block", Value::Null).unwrap_err();
        assert!(err.message.contains("height"));
    }
}
