//! The generic blockchain interface (the paper's §III-A2).
//!
//! Every simulated chain implements [`BlockchainClient`]. The Hammer driver
//! programs against this trait only, which is what lets one framework
//! evaluate sharded and non-sharded systems alike. The
//! [`crate::rpc_adapter`] module additionally exposes any implementation
//! over JSON-RPC, mirroring how the real framework bridges SDKs written in
//! different languages.

use std::time::Duration;

use crossbeam::channel::Receiver;
use hammer_net::{NodeFault, SimNetwork};

use crate::mempool::MempoolError;
use crate::types::{Block, SignedTransaction, TxId};

/// Maps an active fault on `node` to the ingress error a caller would see:
/// a crashed node refuses service ([`ChainError::Unavailable`]) while a
/// blackholed one leaves the RPC hanging until it times out
/// ([`ChainError::Transport`]). Chain simulators call this at the top of
/// [`BlockchainClient::submit`] so scripted outages surface as transient,
/// retryable errors instead of silent acceptance.
pub fn check_node_ingress(net: &SimNetwork, node: &str) -> Result<(), ChainError> {
    match net.node_fault(node) {
        Some(NodeFault::Crashed) => Err(ChainError::unavailable(node)),
        Some(NodeFault::Unreachable) => Err(ChainError::transport(format!(
            "rpc timeout: node {node} unreachable"
        ))),
        None => Ok(()),
    }
}

/// Whether a chain is sharded, and into how many shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// A single ledger replicated on every node.
    NonSharded,
    /// The ledger is split into `shards` shards.
    Sharded {
        /// Number of shards.
        shards: u32,
    },
}

impl Architecture {
    /// Number of independent ledgers this architecture maintains.
    pub fn shard_count(&self) -> u32 {
        match self {
            Architecture::NonSharded => 1,
            Architecture::Sharded { shards } => *shards,
        }
    }
}

/// Coarse classification of a [`ChainError`], driving retry decisions.
///
/// Submission workers never match `ChainError` variants directly — new
/// fault variants must not break downstream code — so every retry
/// decision flows through [`ChainError::kind`] /
/// [`ChainError::is_retryable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A temporary condition (node outage, RPC timeout, transport hiccup);
    /// resubmitting the same transaction later can succeed.
    Transient,
    /// The transaction itself (or the request) can never succeed:
    /// duplicate, bad signature, unknown shard, chain shut down.
    Fatal,
    /// The node is alive but overloaded (mempool full); backing off and
    /// retrying is the intended response.
    Backpressure,
}

/// Errors surfaced through the generic interface.
///
/// The enum is `#[non_exhaustive]`: downstream crates classify errors via
/// [`ChainError::kind`] and the predicate/constructor helpers instead of
/// matching variants, so new fault modes can be added without breaking
/// them. Direct variant matching is reserved for `hammer-chain` itself
/// (the RPC adapter's wire mapping).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainError {
    /// The node rejected the transaction (mempool full / duplicate).
    Rejected(MempoolError),
    /// The signature did not verify.
    BadSignature,
    /// The requested shard does not exist.
    UnknownShard(u32),
    /// The chain has been shut down.
    Shutdown,
    /// Transport-level failure (RPC framing, serialisation, timeouts).
    Transport(String),
    /// The target node is down for a fault window; the chain itself is
    /// expected to recover once the node restarts.
    Unavailable {
        /// Endpoint name of the unavailable node.
        node: String,
    },
    /// Wire-protocol violation: the peer sent bytes that cannot be a
    /// well-formed frame or response (oversized length header, garbage
    /// framing, mismatched call id). Unlike [`ChainError::Transport`]
    /// this is *fatal*: a peer speaking garbage will not start speaking
    /// sense on retry, so the connection is dropped and the request
    /// fails.
    Protocol(String),
}

impl ChainError {
    /// A rejection carrying the mempool's reason.
    pub fn rejected(reason: MempoolError) -> Self {
        ChainError::Rejected(reason)
    }

    /// A signature-verification failure.
    pub fn bad_signature() -> Self {
        ChainError::BadSignature
    }

    /// A request for a shard the chain does not have.
    pub fn unknown_shard(shard: u32) -> Self {
        ChainError::UnknownShard(shard)
    }

    /// The chain has been shut down.
    pub fn shutdown() -> Self {
        ChainError::Shutdown
    }

    /// A transport-level failure.
    pub fn transport(msg: impl Into<String>) -> Self {
        ChainError::Transport(msg.into())
    }

    /// The target node is down (crash fault window).
    pub fn unavailable(node: impl Into<String>) -> Self {
        ChainError::Unavailable { node: node.into() }
    }

    /// A wire-protocol violation (fatal; see [`ChainError::Protocol`]).
    pub fn protocol(msg: impl Into<String>) -> Self {
        ChainError::Protocol(msg.into())
    }

    /// Classifies the error for retry decisions.
    pub fn kind(&self) -> ErrorKind {
        match self {
            ChainError::Rejected(MempoolError::Full) => ErrorKind::Backpressure,
            ChainError::Rejected(_) => ErrorKind::Fatal,
            ChainError::BadSignature => ErrorKind::Fatal,
            ChainError::UnknownShard(_) => ErrorKind::Fatal,
            ChainError::Shutdown => ErrorKind::Fatal,
            ChainError::Transport(_) => ErrorKind::Transient,
            ChainError::Unavailable { .. } => ErrorKind::Transient,
            ChainError::Protocol(_) => ErrorKind::Fatal,
        }
    }

    /// Whether resubmitting the same transaction later can succeed
    /// (i.e. the error is not [`ErrorKind::Fatal`]).
    pub fn is_retryable(&self) -> bool {
        !matches!(self.kind(), ErrorKind::Fatal)
    }

    /// The mempool's rejection reason, when this is a rejection.
    pub fn rejection(&self) -> Option<MempoolError> {
        match self {
            ChainError::Rejected(e) => Some(*e),
            _ => None,
        }
    }

    /// The unknown shard id, when this is a shard-routing failure.
    pub fn shard(&self) -> Option<u32> {
        match self {
            ChainError::UnknownShard(s) => Some(*s),
            _ => None,
        }
    }

    /// Whether this is the shutdown error.
    pub fn is_shutdown(&self) -> bool {
        matches!(self, ChainError::Shutdown)
    }

    /// Whether this is a node-outage error.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, ChainError::Unavailable { .. })
    }
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Rejected(e) => write!(f, "transaction rejected: {e}"),
            ChainError::BadSignature => write!(f, "invalid signature"),
            ChainError::UnknownShard(s) => write!(f, "unknown shard {s}"),
            ChainError::Shutdown => write!(f, "chain has shut down"),
            ChainError::Transport(msg) => write!(f, "transport error: {msg}"),
            ChainError::Unavailable { node } => write!(f, "node {node} is unavailable"),
            ChainError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A per-transaction commit notification, for interactive (Caliper-style)
/// testing.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitEvent {
    /// The committed transaction.
    pub tx_id: TxId,
    /// Whether it executed successfully (false = validation failure).
    pub success: bool,
    /// Height of the containing block.
    pub block_height: u64,
    /// Shard that committed it.
    pub shard: u32,
    /// Simulated commit time.
    pub committed_at: Duration,
}

/// The generic interface every system under test implements.
///
/// Methods take `&self`; implementations are internally synchronised and
/// shared across driver threads.
pub trait BlockchainClient: Send + Sync {
    /// The chain's display name (e.g. `"ethereum-sim"`).
    fn chain_name(&self) -> &str;

    /// Sharded or non-sharded.
    fn architecture(&self) -> Architecture;

    /// Submits a signed transaction; returns its id on acceptance.
    ///
    /// Acceptance means *queued*, not committed — commitment is observed
    /// later via [`BlockchainClient::block_at`] polling (batch testing) or
    /// [`BlockchainClient::subscribe_commits`] (interactive testing).
    fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError>;

    /// Height of the newest committed block on `shard`.
    fn latest_height(&self, shard: u32) -> Result<u64, ChainError>;

    /// The committed block at `height` on `shard`, if any.
    fn block_at(&self, shard: u32, height: u64) -> Result<Option<Block>, ChainError>;

    /// Number of transactions waiting in the mempool(s).
    fn pending_txs(&self) -> Result<usize, ChainError>;

    /// Subscribes to per-transaction commit events (interactive testing).
    fn subscribe_commits(&self) -> Receiver<CommitEvent>;

    /// Shuts the chain down, stopping block production.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_shard_count() {
        assert_eq!(Architecture::NonSharded.shard_count(), 1);
        assert_eq!(Architecture::Sharded { shards: 4 }.shard_count(), 4);
    }

    #[test]
    fn chain_error_display() {
        assert_eq!(
            ChainError::rejected(MempoolError::Full).to_string(),
            "transaction rejected: mempool is full"
        );
        assert_eq!(ChainError::unknown_shard(3).to_string(), "unknown shard 3");
        assert!(ChainError::transport("boom").to_string().contains("boom"));
        assert_eq!(
            ChainError::unavailable("eth-node-0").to_string(),
            "node eth-node-0 is unavailable"
        );
    }

    #[test]
    fn error_kinds_drive_retryability() {
        let cases = [
            (
                ChainError::rejected(MempoolError::Full),
                ErrorKind::Backpressure,
                true,
            ),
            (
                ChainError::rejected(MempoolError::Duplicate),
                ErrorKind::Fatal,
                false,
            ),
            (
                ChainError::rejected(MempoolError::BadSignature),
                ErrorKind::Fatal,
                false,
            ),
            (ChainError::bad_signature(), ErrorKind::Fatal, false),
            (ChainError::unknown_shard(9), ErrorKind::Fatal, false),
            (ChainError::shutdown(), ErrorKind::Fatal, false),
            (ChainError::transport("timeout"), ErrorKind::Transient, true),
            (
                ChainError::unavailable("peer-0"),
                ErrorKind::Transient,
                true,
            ),
            (
                ChainError::protocol("oversized frame"),
                ErrorKind::Fatal,
                false,
            ),
        ];
        for (err, kind, retryable) in cases {
            assert_eq!(err.kind(), kind, "{err}");
            assert_eq!(err.is_retryable(), retryable, "{err}");
        }
    }

    #[test]
    fn error_accessors_expose_payloads() {
        assert_eq!(
            ChainError::rejected(MempoolError::Duplicate).rejection(),
            Some(MempoolError::Duplicate)
        );
        assert_eq!(ChainError::shutdown().rejection(), None);
        assert_eq!(ChainError::unknown_shard(2).shard(), Some(2));
        assert_eq!(ChainError::transport("x").shard(), None);
        assert!(ChainError::shutdown().is_shutdown());
        assert!(ChainError::unavailable("n").is_unavailable());
        assert!(!ChainError::shutdown().is_unavailable());
    }
}
