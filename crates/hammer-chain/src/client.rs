//! The generic blockchain interface (the paper's §III-A2).
//!
//! Every simulated chain implements [`BlockchainClient`]. The Hammer driver
//! programs against this trait only, which is what lets one framework
//! evaluate sharded and non-sharded systems alike. The
//! [`crate::rpc_adapter`] module additionally exposes any implementation
//! over JSON-RPC, mirroring how the real framework bridges SDKs written in
//! different languages.

use std::time::Duration;

use crossbeam::channel::Receiver;

use crate::mempool::MempoolError;
use crate::types::{Block, SignedTransaction, TxId};

/// Whether a chain is sharded, and into how many shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// A single ledger replicated on every node.
    NonSharded,
    /// The ledger is split into `shards` shards.
    Sharded {
        /// Number of shards.
        shards: u32,
    },
}

impl Architecture {
    /// Number of independent ledgers this architecture maintains.
    pub fn shard_count(&self) -> u32 {
        match self {
            Architecture::NonSharded => 1,
            Architecture::Sharded { shards } => *shards,
        }
    }
}

/// Errors surfaced through the generic interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The node rejected the transaction (mempool full / duplicate).
    Rejected(MempoolError),
    /// The signature did not verify.
    BadSignature,
    /// The requested shard does not exist.
    UnknownShard(u32),
    /// The chain has been shut down.
    Shutdown,
    /// Transport-level failure (RPC framing, serialisation).
    Transport(String),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Rejected(e) => write!(f, "transaction rejected: {e}"),
            ChainError::BadSignature => write!(f, "invalid signature"),
            ChainError::UnknownShard(s) => write!(f, "unknown shard {s}"),
            ChainError::Shutdown => write!(f, "chain has shut down"),
            ChainError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A per-transaction commit notification, for interactive (Caliper-style)
/// testing.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitEvent {
    /// The committed transaction.
    pub tx_id: TxId,
    /// Whether it executed successfully (false = validation failure).
    pub success: bool,
    /// Height of the containing block.
    pub block_height: u64,
    /// Shard that committed it.
    pub shard: u32,
    /// Simulated commit time.
    pub committed_at: Duration,
}

/// The generic interface every system under test implements.
///
/// Methods take `&self`; implementations are internally synchronised and
/// shared across driver threads.
pub trait BlockchainClient: Send + Sync {
    /// The chain's display name (e.g. `"ethereum-sim"`).
    fn chain_name(&self) -> &str;

    /// Sharded or non-sharded.
    fn architecture(&self) -> Architecture;

    /// Submits a signed transaction; returns its id on acceptance.
    ///
    /// Acceptance means *queued*, not committed — commitment is observed
    /// later via [`BlockchainClient::block_at`] polling (batch testing) or
    /// [`BlockchainClient::subscribe_commits`] (interactive testing).
    fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError>;

    /// Height of the newest committed block on `shard`.
    fn latest_height(&self, shard: u32) -> Result<u64, ChainError>;

    /// The committed block at `height` on `shard`, if any.
    fn block_at(&self, shard: u32, height: u64) -> Result<Option<Block>, ChainError>;

    /// Number of transactions waiting in the mempool(s).
    fn pending_txs(&self) -> Result<usize, ChainError>;

    /// Subscribes to per-transaction commit events (interactive testing).
    fn subscribe_commits(&self) -> Receiver<CommitEvent>;

    /// Shuts the chain down, stopping block production.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_shard_count() {
        assert_eq!(Architecture::NonSharded.shard_count(), 1);
        assert_eq!(Architecture::Sharded { shards: 4 }.shard_count(), 4);
    }

    #[test]
    fn chain_error_display() {
        assert_eq!(
            ChainError::Rejected(MempoolError::Full).to_string(),
            "transaction rejected: mempool is full"
        );
        assert_eq!(ChainError::UnknownShard(3).to_string(), "unknown shard 3");
        assert!(ChainError::Transport("boom".into())
            .to_string()
            .contains("boom"));
    }
}
