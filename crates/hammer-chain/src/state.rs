//! Versioned world state with read/write-set tracking.
//!
//! Every key (account) carries a version that bumps on each committed
//! write. Execution can run in two modes:
//!
//! * [`VersionedState::apply`] — execute-and-commit in one step (used by
//!   order-execute chains such as the Ethereum, Neuchain and Meepo
//!   simulators, which execute in block order).
//! * [`VersionedState::simulate`] — Fabric-style endorsement: execute
//!   against current state *without* writing, recording a [`RwSet`]; later
//!   [`VersionedState::validate_and_commit`] re-checks the read versions
//!   and either applies the writes or rejects the transaction as an MVCC
//!   conflict. This conflict path is what drives the client-scaling
//!   behaviour in the paper's Fig. 10.

use std::collections::HashMap;

use crate::smallbank::{ExecError, Op, OpOutput};
use crate::types::Address;

/// One account's state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccountState {
    /// Checking balance.
    pub checking: u64,
    /// Savings balance.
    pub savings: u64,
    /// Version, bumped on every committed write.
    pub version: u64,
}

/// A Fabric-style read/write set produced by simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RwSet {
    /// Keys read, with the version observed at simulation time.
    pub reads: Vec<(Address, u64)>,
    /// Keys written, with the complete new state (version not yet bumped).
    pub writes: Vec<(Address, AccountState)>,
    /// The operation's output at simulation time.
    pub output: OpOutput,
}

/// The versioned key/value world state of a (shard of a) chain.
#[derive(Clone, Debug, Default)]
pub struct VersionedState {
    accounts: HashMap<Address, AccountState>,
    committed_writes: u64,
}

impl VersionedState {
    /// An empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of existing accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Total committed writes (for monitoring).
    pub fn committed_writes(&self) -> u64 {
        self.committed_writes
    }

    /// Reads an account's state.
    pub fn get(&self, account: Address) -> Option<AccountState> {
        self.accounts.get(&account).copied()
    }

    /// Directly creates an account (used for test-fixture initialisation,
    /// bypassing transaction flow). Overwrites an existing account.
    pub fn seed_account(&mut self, account: Address, checking: u64, savings: u64) {
        self.accounts.insert(
            account,
            AccountState {
                checking,
                savings,
                version: 0,
            },
        );
    }

    /// Overwrites an account's balances, bumping its version; creates the
    /// account when missing.
    ///
    /// Sharded chains use this for cross-shard settlement, where the
    /// debit/credit halves of one transaction execute on different shards
    /// outside the single-shard operation flow (Meepo's cross-epoch calls).
    pub fn force_write(&mut self, account: Address, checking: u64, savings: u64) {
        let version = self.accounts.get(&account).map(|a| a.version).unwrap_or(0) + 1;
        self.accounts.insert(
            account,
            AccountState {
                checking,
                savings,
                version,
            },
        );
        self.committed_writes += 1;
    }

    /// Sum of all balances (conservation-of-money invariant checks).
    pub fn total_funds(&self) -> u128 {
        self.accounts
            .values()
            .map(|a| a.checking as u128 + a.savings as u128)
            .sum()
    }

    /// Executes `op` and commits its writes immediately.
    pub fn apply(&mut self, op: &Op) -> Result<OpOutput, ExecError> {
        let rwset = self.execute(op)?;
        for (addr, mut new_state) in rwset.writes {
            let old_version = self.accounts.get(&addr).map(|a| a.version).unwrap_or(0);
            new_state.version = old_version + 1;
            self.accounts.insert(addr, new_state);
            self.committed_writes += 1;
        }
        Ok(rwset.output)
    }

    /// Executes `op` against current state without committing, returning
    /// the read/write set (Fabric endorsement).
    pub fn simulate(&self, op: &Op) -> Result<RwSet, ExecError> {
        self.execute(op)
    }

    /// Validates a simulated [`RwSet`] against current versions and commits
    /// it if every read version still matches. Returns `true` on commit,
    /// `false` on MVCC conflict.
    pub fn validate_and_commit(&mut self, rwset: &RwSet) -> bool {
        for (addr, seen_version) in &rwset.reads {
            let current = self.accounts.get(addr).map(|a| a.version).unwrap_or(0);
            if current != *seen_version {
                return false;
            }
        }
        for (addr, new_state) in &rwset.writes {
            let old_version = self.accounts.get(addr).map(|a| a.version).unwrap_or(0);
            let mut state = *new_state;
            state.version = old_version + 1;
            self.accounts.insert(*addr, state);
            self.committed_writes += 1;
        }
        true
    }

    /// The shared execution core: computes the rwset for `op`.
    fn execute(&self, op: &Op) -> Result<RwSet, ExecError> {
        let mut rw = RwSet::default();
        let read = |rw: &mut RwSet, addr: Address| -> Option<AccountState> {
            let state = self.accounts.get(&addr).copied();
            rw.reads.push((addr, state.map(|s| s.version).unwrap_or(0)));
            state
        };
        match *op {
            Op::CreateAccount {
                account,
                checking,
                savings,
            } => {
                if read(&mut rw, account).is_some() {
                    return Err(ExecError::AccountExists(account));
                }
                rw.writes.push((
                    account,
                    AccountState {
                        checking,
                        savings,
                        version: 0,
                    },
                ));
                rw.output = OpOutput::Ok;
            }
            Op::DepositChecking { account, amount } => {
                let mut state = read(&mut rw, account).ok_or(ExecError::UnknownAccount(account))?;
                state.checking = state
                    .checking
                    .checked_add(amount)
                    .ok_or(ExecError::Overflow)?;
                rw.writes.push((account, state));
                rw.output = OpOutput::Ok;
            }
            Op::WriteCheck { account, amount } => {
                let mut state = read(&mut rw, account).ok_or(ExecError::UnknownAccount(account))?;
                if state.checking < amount {
                    return Err(ExecError::InsufficientFunds {
                        account,
                        available: state.checking,
                        requested: amount,
                    });
                }
                state.checking -= amount;
                rw.writes.push((account, state));
                rw.output = OpOutput::Ok;
            }
            Op::SendPayment { from, to, amount } => {
                let mut src = read(&mut rw, from).ok_or(ExecError::UnknownAccount(from))?;
                let mut dst = read(&mut rw, to).ok_or(ExecError::UnknownAccount(to))?;
                if src.checking < amount {
                    return Err(ExecError::InsufficientFunds {
                        account: from,
                        available: src.checking,
                        requested: amount,
                    });
                }
                if from == to {
                    // Self-transfer is a no-op that still bumps the version.
                    rw.writes.push((from, src));
                } else {
                    src.checking -= amount;
                    dst.checking = dst
                        .checking
                        .checked_add(amount)
                        .ok_or(ExecError::Overflow)?;
                    rw.writes.push((from, src));
                    rw.writes.push((to, dst));
                }
                rw.output = OpOutput::Ok;
            }
            Op::Amalgamate { from, to } => {
                let mut src = read(&mut rw, from).ok_or(ExecError::UnknownAccount(from))?;
                let mut dst = read(&mut rw, to).ok_or(ExecError::UnknownAccount(to))?;
                if from == to {
                    // Move own savings into own checking.
                    src.checking = src
                        .checking
                        .checked_add(src.savings)
                        .ok_or(ExecError::Overflow)?;
                    src.savings = 0;
                    rw.writes.push((from, src));
                } else {
                    let moved = src.savings;
                    src.savings = 0;
                    dst.checking = dst.checking.checked_add(moved).ok_or(ExecError::Overflow)?;
                    rw.writes.push((from, src));
                    rw.writes.push((to, dst));
                }
                rw.output = OpOutput::Ok;
            }
            Op::TransactSavings { account, amount } => {
                let mut state = read(&mut rw, account).ok_or(ExecError::UnknownAccount(account))?;
                state.savings = state
                    .savings
                    .checked_add(amount)
                    .ok_or(ExecError::Overflow)?;
                rw.writes.push((account, state));
                rw.output = OpOutput::Ok;
            }
            Op::Balance { account } => {
                let state = read(&mut rw, account).ok_or(ExecError::UnknownAccount(account))?;
                rw.output = OpOutput::Balances(state.checking, state.savings);
            }
            Op::KvPut { key, value } => {
                let addr = Address(key);
                let _ = read(&mut rw, addr);
                rw.writes.push((
                    addr,
                    AccountState {
                        checking: value,
                        savings: 0,
                        version: 0,
                    },
                ));
                rw.output = OpOutput::Ok;
            }
            Op::KvGet { key } => {
                let addr = Address(key);
                let state = read(&mut rw, addr);
                rw.output = OpOutput::KvValue(state.map(|s| s.checking));
            }
        }
        Ok(rw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn addr(n: &str) -> Address {
        Address::from_name(n)
    }

    fn seeded() -> VersionedState {
        let mut s = VersionedState::new();
        s.seed_account(addr("alice"), 100, 50);
        s.seed_account(addr("bob"), 200, 75);
        s
    }

    #[test]
    fn create_and_read() {
        let mut s = VersionedState::new();
        s.apply(&Op::CreateAccount {
            account: addr("a"),
            checking: 10,
            savings: 20,
        })
        .unwrap();
        let out = s.apply(&Op::Balance { account: addr("a") }).unwrap();
        assert_eq!(out, OpOutput::Balances(10, 20));
    }

    #[test]
    fn create_duplicate_fails() {
        let mut s = seeded();
        let err = s
            .apply(&Op::CreateAccount {
                account: addr("alice"),
                checking: 0,
                savings: 0,
            })
            .unwrap_err();
        assert_eq!(err, ExecError::AccountExists(addr("alice")));
    }

    #[test]
    fn deposit_and_withdraw() {
        let mut s = seeded();
        s.apply(&Op::DepositChecking {
            account: addr("alice"),
            amount: 25,
        })
        .unwrap();
        assert_eq!(s.get(addr("alice")).unwrap().checking, 125);
        s.apply(&Op::WriteCheck {
            account: addr("alice"),
            amount: 100,
        })
        .unwrap();
        assert_eq!(s.get(addr("alice")).unwrap().checking, 25);
    }

    #[test]
    fn withdraw_insufficient_fails() {
        let mut s = seeded();
        let err = s
            .apply(&Op::WriteCheck {
                account: addr("alice"),
                amount: 1000,
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::InsufficientFunds { .. }));
        // State unchanged.
        assert_eq!(s.get(addr("alice")).unwrap().checking, 100);
    }

    #[test]
    fn transfer_moves_funds() {
        let mut s = seeded();
        s.apply(&Op::SendPayment {
            from: addr("alice"),
            to: addr("bob"),
            amount: 40,
        })
        .unwrap();
        assert_eq!(s.get(addr("alice")).unwrap().checking, 60);
        assert_eq!(s.get(addr("bob")).unwrap().checking, 240);
    }

    #[test]
    fn self_transfer_is_noop_but_bumps_version() {
        let mut s = seeded();
        let v0 = s.get(addr("alice")).unwrap().version;
        s.apply(&Op::SendPayment {
            from: addr("alice"),
            to: addr("alice"),
            amount: 10,
        })
        .unwrap();
        let st = s.get(addr("alice")).unwrap();
        assert_eq!(st.checking, 100);
        assert_eq!(st.version, v0 + 1);
    }

    #[test]
    fn amalgamate_drains_savings() {
        let mut s = seeded();
        s.apply(&Op::Amalgamate {
            from: addr("alice"),
            to: addr("bob"),
        })
        .unwrap();
        let alice = s.get(addr("alice")).unwrap();
        let bob = s.get(addr("bob")).unwrap();
        assert_eq!(alice.savings, 0);
        assert_eq!(bob.checking, 250);
    }

    #[test]
    fn self_amalgamate_moves_savings_to_checking() {
        let mut s = seeded();
        s.apply(&Op::Amalgamate {
            from: addr("alice"),
            to: addr("alice"),
        })
        .unwrap();
        let alice = s.get(addr("alice")).unwrap();
        assert_eq!(alice.checking, 150);
        assert_eq!(alice.savings, 0);
    }

    #[test]
    fn unknown_account_fails() {
        let mut s = VersionedState::new();
        for op in [
            Op::DepositChecking {
                account: addr("x"),
                amount: 1,
            },
            Op::WriteCheck {
                account: addr("x"),
                amount: 1,
            },
            Op::Balance { account: addr("x") },
            Op::TransactSavings {
                account: addr("x"),
                amount: 1,
            },
        ] {
            assert!(
                matches!(s.apply(&op), Err(ExecError::UnknownAccount(_))),
                "{op:?}"
            );
        }
    }

    #[test]
    fn overflow_detected() {
        let mut s = VersionedState::new();
        s.seed_account(addr("rich"), u64::MAX, 0);
        let err = s
            .apply(&Op::DepositChecking {
                account: addr("rich"),
                amount: 1,
            })
            .unwrap_err();
        assert_eq!(err, ExecError::Overflow);
    }

    #[test]
    fn kv_put_get() {
        let mut s = VersionedState::new();
        assert_eq!(
            s.apply(&Op::KvGet { key: 7 }).unwrap(),
            OpOutput::KvValue(None)
        );
        s.apply(&Op::KvPut { key: 7, value: 99 }).unwrap();
        assert_eq!(
            s.apply(&Op::KvGet { key: 7 }).unwrap(),
            OpOutput::KvValue(Some(99))
        );
    }

    #[test]
    fn versions_bump_on_commit() {
        let mut s = seeded();
        assert_eq!(s.get(addr("alice")).unwrap().version, 0);
        s.apply(&Op::DepositChecking {
            account: addr("alice"),
            amount: 1,
        })
        .unwrap();
        assert_eq!(s.get(addr("alice")).unwrap().version, 1);
        s.apply(&Op::DepositChecking {
            account: addr("alice"),
            amount: 1,
        })
        .unwrap();
        assert_eq!(s.get(addr("alice")).unwrap().version, 2);
    }

    #[test]
    fn mvcc_conflict_detected() {
        let mut s = seeded();
        // Two transactions simulated against the same snapshot.
        let rw1 = s
            .simulate(&Op::WriteCheck {
                account: addr("alice"),
                amount: 10,
            })
            .unwrap();
        let rw2 = s
            .simulate(&Op::WriteCheck {
                account: addr("alice"),
                amount: 20,
            })
            .unwrap();
        assert!(s.validate_and_commit(&rw1));
        // Second one read version 0 but alice is now at version 1.
        assert!(!s.validate_and_commit(&rw2));
        assert_eq!(s.get(addr("alice")).unwrap().checking, 90);
    }

    #[test]
    fn disjoint_rwsets_both_commit() {
        let mut s = seeded();
        let rw1 = s
            .simulate(&Op::DepositChecking {
                account: addr("alice"),
                amount: 1,
            })
            .unwrap();
        let rw2 = s
            .simulate(&Op::DepositChecking {
                account: addr("bob"),
                amount: 2,
            })
            .unwrap();
        assert!(s.validate_and_commit(&rw1));
        assert!(s.validate_and_commit(&rw2));
    }

    #[test]
    fn read_only_rwset_has_no_writes() {
        let s = seeded();
        let rw = s
            .simulate(&Op::Balance {
                account: addr("alice"),
            })
            .unwrap();
        assert!(rw.writes.is_empty());
        assert_eq!(rw.reads.len(), 1);
        assert_eq!(rw.output, OpOutput::Balances(100, 50));
    }

    #[test]
    fn transfers_conserve_total_funds() {
        let mut s = seeded();
        let before = s.total_funds();
        s.apply(&Op::SendPayment {
            from: addr("alice"),
            to: addr("bob"),
            amount: 33,
        })
        .unwrap();
        s.apply(&Op::Amalgamate {
            from: addr("bob"),
            to: addr("alice"),
        })
        .unwrap();
        assert_eq!(s.total_funds(), before);
    }

    proptest! {
        /// Any sequence of transfers/amalgamates between seeded accounts
        /// conserves total funds, regardless of failures.
        #[test]
        fn prop_conservation(ops in proptest::collection::vec((0u8..4, 0u64..300), 1..40)) {
            let names = ["a", "b", "c"];
            let mut s = VersionedState::new();
            for n in names {
                s.seed_account(addr(n), 1000, 500);
            }
            // Deposits/withdrawals change the total by a known delta;
            // transfers/amalgamates must not change it at all.
            let mut expected = s.total_funds();
            for (sel, amount) in ops {
                let from = addr(names[(amount % 3) as usize]);
                let to = addr(names[((amount / 3) % 3) as usize]);
                let op = match sel {
                    0 => Op::SendPayment { from, to, amount },
                    1 => Op::Amalgamate { from, to },
                    2 => Op::WriteCheck { account: from, amount },
                    _ => Op::DepositChecking { account: from, amount },
                };
                let ok = s.apply(&op).is_ok();
                if ok {
                    match sel {
                        2 => expected -= amount as u128,
                        3 => expected += amount as u128,
                        _ => {}
                    }
                }
                // Failures must leave state untouched; successes must match
                // the accounting delta exactly.
                prop_assert_eq!(s.total_funds(), expected);
            }
        }

        /// validate_and_commit after interleaved commits never double-spends:
        /// conflicting rwsets are rejected.
        #[test]
        fn prop_mvcc_no_lost_updates(amounts in proptest::collection::vec(1u64..50, 2..10)) {
            let mut s = VersionedState::new();
            s.seed_account(addr("acct"), 10_000, 0);
            // Simulate all against the same snapshot; only the first commit
            // may succeed.
            let rwsets: Vec<_> = amounts
                .iter()
                .map(|a| s.simulate(&Op::WriteCheck { account: addr("acct"), amount: *a }).unwrap())
                .collect();
            let mut committed = 0;
            let mut spent = 0;
            for rw in &rwsets {
                if s.validate_and_commit(rw) {
                    committed += 1;
                }
            }
            if committed == 1 {
                spent = 10_000 - s.get(addr("acct")).unwrap().checking;
            }
            prop_assert_eq!(committed, 1);
            prop_assert_eq!(spent, amounts[0]);
        }
    }
}
