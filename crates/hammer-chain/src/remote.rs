//! A chain client that talks to a node process over real TCP.
//!
//! [`TcpChainClient`] is the driver's handle onto a `node-host` process:
//! it implements [`BlockchainClient`] and [`SimChain`] by issuing the
//! same JSON-RPC methods the in-process adapter serves, carried over
//! `hammer-net`'s length-prefixed TCP transport. Three things make it
//! more than a dumb proxy:
//!
//! * **Graceful degradation.** The evaluation driver's polling monitor
//!   treats an `Err` from `latest_height`/`block_at` as terminal, which
//!   is correct in-process (only shutdown errors there) but would wedge
//!   a run the moment a node is SIGKILLed. This client therefore absorbs
//!   *transient* failures: `latest_height` answers the last height it
//!   saw, `block_at` reports the block as (currently) missing, and only
//!   fatal errors (protocol violations, unknown shards) propagate.
//!   Submission errors always propagate — the retry taxonomy handles
//!   those.
//! * **Height continuity across restarts.** A respawned node starts an
//!   empty ledger at height 0. The client virtualises heights per shard:
//!   when the remote height regresses, the old height becomes a base
//!   offset, pre-restart heights read as lost (`Ok(None)`), and new
//!   remote blocks surface at monotonically increasing virtual heights —
//!   so the monitor's cursor never runs backwards and never re-matches a
//!   block it already processed.
//! * **Commit events by polling.** Push subscriptions need a streaming
//!   connection; over this request/response transport the client
//!   synthesizes [`CommitEvent`]s from sealed blocks with a background
//!   poll thread (one per client, lazily started, joined on drop).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use hammer_net::{ReconnectPolicy, TcpClientConfig, TcpError, TcpRpcClient};
use hammer_rpc::json::Value;
use parking_lot::Mutex;

use crate::client::{Architecture, BlockchainClient, ChainError, CommitEvent, ErrorKind};
use crate::codec;
use crate::kernel::SimChain;
use crate::ledger::LedgerError;
use crate::rpc_adapter::{decode_ledger_error, rpc_error_to_chain};
use crate::state::AccountState;
use crate::types::{Address, Block, SignedTransaction, TxId};

fn tcp_to_chain(err: TcpError) -> ChainError {
    if err.is_protocol() {
        ChainError::protocol(err.to_string())
    } else {
        ChainError::transport(err.to_string())
    }
}

/// Per-shard height-virtualization state.
#[derive(Clone, Copy, Debug, Default)]
struct ShardCursor {
    /// Virtual height consumed by ledgers that died with earlier process
    /// incarnations.
    base: u64,
    /// The remote height seen on the last successful poll.
    last_remote: u64,
}

struct SubState {
    poller: Option<std::thread::JoinHandle<()>>,
    senders: Arc<Mutex<Vec<Sender<CommitEvent>>>>,
}

/// A [`BlockchainClient`] + [`SimChain`] over a TCP connection to a
/// `node-host` process. See the module docs for the failure semantics.
pub struct TcpChainClient {
    rpc: TcpRpcClient,
    name: String,
    architecture: Architecture,
    cursors: Mutex<Vec<ShardCursor>>,
    subs: Mutex<SubState>,
    stop: Arc<AtomicBool>,
    /// Wall-clock interval of the commit-event poll thread.
    event_poll: Duration,
}

impl std::fmt::Debug for TcpChainClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpChainClient")
            .field("name", &self.name)
            .field("addr", &self.rpc.addr())
            .finish()
    }
}

impl TcpChainClient {
    /// Connects to a served chain at `addr`, fetching its name and
    /// architecture. `policy` governs in-call reconnection (a node being
    /// restarted by a supervisor surfaces as transient errors, not a
    /// dead client).
    pub fn connect(
        addr: SocketAddr,
        config: TcpClientConfig,
        policy: ReconnectPolicy,
    ) -> Result<Arc<Self>, ChainError> {
        let rpc = TcpRpcClient::new(addr, config, policy);
        let name = rpc
            .call("chain_name", Value::Null)
            .map_err(tcp_to_chain)?
            .map_err(rpc_error_to_chain)?
            .as_str()
            .unwrap_or("unknown")
            .to_owned();
        let arch_value = rpc
            .call("architecture", Value::Null)
            .map_err(tcp_to_chain)?
            .map_err(rpc_error_to_chain)?;
        let architecture = match arch_value.get("type").and_then(Value::as_str) {
            Some("sharded") => Architecture::Sharded {
                shards: arch_value
                    .get("shards")
                    .and_then(Value::as_u64)
                    .unwrap_or(1) as u32,
            },
            _ => Architecture::NonSharded,
        };
        Ok(Arc::new(TcpChainClient {
            rpc,
            name,
            architecture,
            cursors: Mutex::new(vec![
                ShardCursor::default();
                architecture.shard_count() as usize
            ]),
            subs: Mutex::new(SubState {
                poller: None,
                senders: Arc::new(Mutex::new(Vec::new())),
            }),
            stop: Arc::new(AtomicBool::new(false)),
            event_poll: Duration::from_millis(10),
        }))
    }

    /// The raw RPC client (e.g. for health checks or fault forwarding).
    pub fn rpc(&self) -> &TcpRpcClient {
        &self.rpc
    }

    /// One RPC call with both error layers flattened into [`ChainError`].
    fn call(&self, method: &str, params: Value) -> Result<Value, ChainError> {
        self.rpc
            .call(method, params)
            .map_err(tcp_to_chain)?
            .map_err(rpc_error_to_chain)
    }

    /// Fetches the remote height and folds it into the virtual cursor,
    /// detecting restarts (remote height regression).
    fn virtual_height(&self, shard: u32) -> Result<u64, ChainError> {
        let remote = self
            .call(
                "latest_height",
                Value::object([("shard", Value::from(shard as u64))]),
            )?
            .as_u64()
            .ok_or_else(|| ChainError::protocol("latest_height: non-numeric"))?;
        let mut cursors = self.cursors.lock();
        let cursor = cursors
            .get_mut(shard as usize)
            .ok_or(ChainError::UnknownShard(shard))?;
        if remote < cursor.last_remote {
            // The node restarted with a fresh ledger: retire the old
            // incarnation's heights into the base offset.
            cursor.base += cursor.last_remote;
        }
        cursor.last_remote = remote;
        Ok(cursor.base + remote)
    }

    fn spawn_poller_locked(&self, subs: &mut SubState) {
        if subs.poller.is_some() {
            return;
        }
        let rpc = self.rpc.clone();
        let architecture = self.architecture;
        let stop = self.stop.clone();
        let senders = Arc::clone(&subs.senders);
        let interval = self.event_poll;
        let handle = std::thread::Builder::new()
            .name("tcp-chain-events".to_owned())
            .spawn(move || {
                event_poll_loop(rpc, architecture, stop, senders, interval);
            })
            .expect("failed to spawn commit-event poller");
        subs.poller = Some(handle);
    }

    /// Stops the commit-event poller and joins it. Called by `Drop`; safe
    /// to call repeatedly.
    pub fn stop_poller(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handle = self.subs.lock().poller.take();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for TcpChainClient {
    fn drop(&mut self) {
        self.stop_poller();
    }
}

/// Polls sealed blocks and fans synthesized [`CommitEvent`]s out to every
/// subscriber. Runs on its own remote cursor (independent of the batch
/// monitor's) with local restart detection, so interactive and batch
/// observation modes cannot disturb each other.
fn event_poll_loop(
    rpc: TcpRpcClient,
    architecture: Architecture,
    stop: Arc<AtomicBool>,
    senders: Arc<Mutex<Vec<Sender<CommitEvent>>>>,
    interval: Duration,
) {
    let shards = architecture.shard_count() as usize;
    let mut last_remote = vec![0u64; shards];
    while !stop.load(Ordering::SeqCst) {
        for shard in 0..shards as u32 {
            let Ok(Ok(h)) = rpc.call(
                "latest_height",
                Value::object([("shard", Value::from(shard as u64))]),
            ) else {
                continue; // node down: try again next tick
            };
            let Some(remote) = h.as_u64() else { continue };
            let cursor = &mut last_remote[shard as usize];
            if remote < *cursor {
                *cursor = 0; // restart: the fresh ledger starts over
            }
            while *cursor < remote {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let next = *cursor + 1;
                let Ok(Ok(v)) = rpc.call(
                    "get_block",
                    Value::object([
                        ("shard", Value::from(shard as u64)),
                        ("height", Value::from(next)),
                    ]),
                ) else {
                    break; // transient: re-poll this height next tick
                };
                *cursor = next;
                if v.is_null() {
                    continue;
                }
                let Ok(block) = codec::decode_block(&v) else {
                    continue;
                };
                let mut subs = senders.lock();
                subs.retain(|tx| {
                    for (i, id) in block.tx_ids.iter().enumerate() {
                        let event = CommitEvent {
                            tx_id: *id,
                            success: block.valid.get(i).copied().unwrap_or(false),
                            block_height: block.header.height,
                            shard,
                            committed_at: block.header.timestamp,
                        };
                        if tx.send(event).is_err() {
                            return false; // subscriber gone
                        }
                    }
                    true
                });
            }
        }
        std::thread::sleep(interval);
    }
}

impl BlockchainClient for TcpChainClient {
    fn chain_name(&self) -> &str {
        &self.name
    }

    fn architecture(&self) -> Architecture {
        self.architecture
    }

    fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError> {
        let id = tx.id;
        self.call("submit_transaction", codec::encode_signed_tx(&tx))?;
        Ok(id)
    }

    fn latest_height(&self, shard: u32) -> Result<u64, ChainError> {
        match self.virtual_height(shard) {
            Ok(h) => Ok(h),
            // A dead or restarting node must not kill the monitor:
            // answer the last virtual height we saw and let the next
            // poll catch up.
            Err(e) if e.kind() == ErrorKind::Transient => {
                let cursors = self.cursors.lock();
                let cursor = cursors
                    .get(shard as usize)
                    .ok_or(ChainError::UnknownShard(shard))?;
                Ok(cursor.base + cursor.last_remote)
            }
            Err(e) => Err(e),
        }
    }

    fn block_at(&self, shard: u32, height: u64) -> Result<Option<Block>, ChainError> {
        let base = {
            let cursors = self.cursors.lock();
            cursors
                .get(shard as usize)
                .ok_or(ChainError::UnknownShard(shard))?
                .base
        };
        if height <= base {
            // The block died, unread, with an earlier process
            // incarnation; its transactions will drain as timed out.
            return Ok(None);
        }
        let remote_height = height - base;
        let v = match self.call(
            "get_block",
            Value::object([
                ("shard", Value::from(shard as u64)),
                ("height", Value::from(remote_height)),
            ]),
        ) {
            Ok(v) => v,
            // Transient outage: report the block as currently missing so
            // the monitor survives; the cursor has already moved on,
            // which matches what a restart does to unread blocks anyway.
            Err(e) if e.kind() == ErrorKind::Transient => return Ok(None),
            Err(e) => return Err(e),
        };
        if v.is_null() {
            return Ok(None);
        }
        let mut block = codec::decode_block(&v).map_err(|e| ChainError::protocol(e.to_string()))?;
        // Surface the *virtual* height so the monitor's cursor arithmetic
        // holds across restarts.
        block.header.height = height;
        Ok(Some(block))
    }

    fn pending_txs(&self) -> Result<usize, ChainError> {
        let v = self.call("pending_txs", Value::Null)?;
        v.as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| ChainError::protocol("pending_txs: non-numeric"))
    }

    fn subscribe_commits(&self) -> Receiver<CommitEvent> {
        let (tx, rx) = unbounded();
        let mut subs = self.subs.lock();
        subs.senders.lock().push(tx);
        self.spawn_poller_locked(&mut subs);
        rx
    }

    fn shutdown(&self) {
        self.stop_poller();
        // Best effort: the node may already be gone (killed by its
        // supervisor), which is fine — process teardown is authoritative.
        let _ = self.rpc.call("shutdown_chain", Value::Null);
    }
}

impl SimChain for TcpChainClient {
    fn seed_account(&self, account: Address, checking: u64, savings: u64) {
        // Seeding happens before the run, with the node healthy; a
        // failure here means the deployment is broken, which the driver
        // discovers immediately through every later call. Best effort by
        // signature (the trait returns nothing).
        let _ = self.call(
            "seed_account",
            Value::object([
                ("account", Value::from(account.0.to_string())),
                ("checking", Value::from(checking)),
                ("savings", Value::from(savings)),
            ]),
        );
    }

    fn account(&self, account: Address) -> Option<AccountState> {
        let v = self
            .call(
                "get_account",
                Value::object([("account", Value::from(account.0.to_string()))]),
            )
            .ok()?;
        if v.is_null() {
            return None;
        }
        Some(AccountState {
            checking: v.get("checking").and_then(Value::as_u64)?,
            savings: v.get("savings").and_then(Value::as_u64)?,
            version: v.get("version").and_then(Value::as_u64)?,
        })
    }

    fn ingress_nodes(&self) -> Vec<String> {
        string_list(self.call("ingress_nodes", Value::Null))
    }

    fn sealer_nodes(&self) -> Vec<String> {
        string_list(self.call("sealer_nodes", Value::Null))
    }

    fn verify_ledgers(&self) -> Result<(), LedgerError> {
        let Ok(v) = self.call("verify_ledgers", Value::Null) else {
            // An unreachable node cannot prove its ledger broken; the
            // supervisor's health checks own liveness.
            return Ok(());
        };
        if v.get("ok").and_then(Value::as_bool) == Some(true) {
            return Ok(());
        }
        Err(v
            .get("error")
            .and_then(decode_ledger_error)
            .unwrap_or(LedgerError::BrokenHashChain))
    }

    fn progress_mark(&self) -> u64 {
        self.call("progress_mark", Value::Null)
            .ok()
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    }
}

fn string_list(result: Result<Value, ChainError>) -> Vec<String> {
    result
        .ok()
        .and_then(|v| {
            v.as_array().map(|items| {
                items
                    .iter()
                    .filter_map(|i| i.as_str().map(str::to_owned))
                    .collect()
            })
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc_adapter::{serve_sim, serve_tcp};
    use crate::smallbank::Op;
    use crate::types::Transaction;
    use hammer_crypto::sig::SigParams;
    use hammer_crypto::Keypair;
    use hammer_net::TcpServerConfig;

    /// A small in-memory SimChain for loopback tests.
    struct MiniChain {
        blocks: Mutex<Vec<Block>>,
        accounts: Mutex<std::collections::HashMap<Address, AccountState>>,
    }

    impl MiniChain {
        fn new() -> Arc<Self> {
            Arc::new(MiniChain {
                blocks: Mutex::new(Vec::new()),
                accounts: Mutex::new(std::collections::HashMap::new()),
            })
        }
    }

    impl BlockchainClient for MiniChain {
        fn chain_name(&self) -> &str {
            "mini"
        }
        fn architecture(&self) -> Architecture {
            Architecture::NonSharded
        }
        fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError> {
            let id = tx.id;
            let mut blocks = self.blocks.lock();
            let height = blocks.len() as u64 + 1;
            let prev = blocks.last().map(|b| b.header.hash()).unwrap_or([0; 32]);
            blocks.push(Block::new(
                height,
                prev,
                Duration::from_millis(height),
                "mini-node",
                0,
                vec![id],
                vec![true],
            ));
            Ok(id)
        }
        fn latest_height(&self, _shard: u32) -> Result<u64, ChainError> {
            Ok(self.blocks.lock().len() as u64)
        }
        fn block_at(&self, _shard: u32, height: u64) -> Result<Option<Block>, ChainError> {
            if height == 0 {
                return Ok(None);
            }
            Ok(self.blocks.lock().get(height as usize - 1).cloned())
        }
        fn pending_txs(&self) -> Result<usize, ChainError> {
            Ok(0)
        }
        fn subscribe_commits(&self) -> Receiver<CommitEvent> {
            unbounded().1
        }
        fn shutdown(&self) {}
    }

    impl SimChain for MiniChain {
        fn seed_account(&self, account: Address, checking: u64, savings: u64) {
            self.accounts.lock().insert(
                account,
                AccountState {
                    checking,
                    savings,
                    version: 1,
                },
            );
        }
        fn account(&self, account: Address) -> Option<AccountState> {
            self.accounts.lock().get(&account).copied()
        }
        fn ingress_nodes(&self) -> Vec<String> {
            vec!["mini-node".to_owned()]
        }
        fn sealer_nodes(&self) -> Vec<String> {
            vec!["mini-node".to_owned()]
        }
        fn verify_ledgers(&self) -> Result<(), LedgerError> {
            Ok(())
        }
        fn progress_mark(&self) -> u64 {
            self.blocks.lock().len() as u64
        }
    }

    fn signed_tx(nonce: u64) -> SignedTransaction {
        Transaction {
            client_id: 1,
            server_id: 1,
            nonce,
            op: Op::KvPut {
                key: nonce,
                value: 7,
            },
            chain_name: "mini".to_owned(),
            contract_name: "kv".to_owned(),
        }
        .sign(&Keypair::from_seed(3), &SigParams::fast())
    }

    fn serve_mini(chain: Arc<MiniChain>, addr: &str) -> (hammer_net::TcpRpcServer, SocketAddr) {
        let server = serve_tcp(
            serve_sim(chain as Arc<dyn SimChain>),
            addr,
            TcpServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    #[test]
    fn loopback_simchain_roundtrip() {
        let chain = MiniChain::new();
        let (_server, addr) = serve_mini(Arc::clone(&chain), "127.0.0.1:0");
        let client =
            TcpChainClient::connect(addr, TcpClientConfig::default(), ReconnectPolicy::none())
                .unwrap();
        assert_eq!(client.chain_name(), "mini");
        assert_eq!(client.architecture(), Architecture::NonSharded);

        client.seed_account(Address(42), 100, 200);
        let acct = client.account(Address(42)).unwrap();
        assert_eq!((acct.checking, acct.savings), (100, 200));
        assert_eq!(client.account(Address(99)), None);

        let id = client.submit(signed_tx(1)).unwrap();
        assert_eq!(client.latest_height(0).unwrap(), 1);
        let block = client.block_at(0, 1).unwrap().unwrap();
        assert_eq!(block.tx_ids, vec![id]);
        assert!(client.block_at(0, 9).unwrap().is_none());

        assert_eq!(client.ingress_nodes(), vec!["mini-node"]);
        assert_eq!(client.sealer_nodes(), vec!["mini-node"]);
        assert!(client.verify_ledgers().is_ok());
        assert_eq!(client.progress_mark(), 1);
        assert_eq!(client.pending_txs().unwrap(), 0);
    }

    #[test]
    fn commit_events_synthesized_from_blocks() {
        let chain = MiniChain::new();
        let (_server, addr) = serve_mini(Arc::clone(&chain), "127.0.0.1:0");
        let client =
            TcpChainClient::connect(addr, TcpClientConfig::default(), ReconnectPolicy::none())
                .unwrap();
        let events = client.subscribe_commits();
        let mut expected = Vec::new();
        for nonce in 0..5 {
            expected.push(client.submit(signed_tx(nonce)).unwrap());
        }
        for _ in 0..5 {
            let ev = events.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(expected.contains(&ev.tx_id));
            assert!(ev.success);
        }
        client.stop_poller();
    }

    #[test]
    fn transient_outage_degrades_instead_of_erroring() {
        let chain = MiniChain::new();
        let (server, addr) = serve_mini(Arc::clone(&chain), "127.0.0.1:0");
        let client = TcpChainClient::connect(
            addr,
            TcpClientConfig {
                connect_timeout: Duration::from_millis(200),
                ..TcpClientConfig::default()
            },
            ReconnectPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                multiplier: 1.0,
                max_backoff: Duration::from_millis(1),
            },
        )
        .unwrap();
        client.submit(signed_tx(1)).unwrap();
        assert_eq!(client.latest_height(0).unwrap(), 1);

        // Kill the node: the monitor-facing reads degrade, never error.
        server.shutdown_and_join();
        drop(server);
        assert_eq!(client.latest_height(0).unwrap(), 1);
        assert!(client.block_at(0, 1).unwrap().is_none());
        // Submission errors DO propagate, as transient.
        let err = client.submit(signed_tx(2)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Transient);
    }

    #[test]
    fn restart_virtualizes_heights() {
        let chain = MiniChain::new();
        let (server, addr) = serve_mini(Arc::clone(&chain), "127.0.0.1:0");
        let client = TcpChainClient::connect(
            addr,
            TcpClientConfig {
                connect_timeout: Duration::from_millis(500),
                ..TcpClientConfig::default()
            },
            ReconnectPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(5),
                multiplier: 2.0,
                max_backoff: Duration::from_millis(50),
            },
        )
        .unwrap();
        // First incarnation seals 3 blocks.
        for nonce in 0..3 {
            client.submit(signed_tx(nonce)).unwrap();
        }
        assert_eq!(client.latest_height(0).unwrap(), 3);
        assert!(client.block_at(0, 2).unwrap().is_some());

        // "Crash" and restart with a fresh (empty) chain on the same port.
        server.shutdown_and_join();
        drop(server);
        let fresh = MiniChain::new();
        let (_server2, _addr2) = serve_mini(Arc::clone(&fresh), &addr.to_string());

        // The fresh node is at remote height 0 → virtual height stays 3.
        assert_eq!(client.latest_height(0).unwrap(), 3);
        // One new block on the fresh chain: virtual height 4, and the
        // block surfaces AT height 4, with pre-restart heights now lost.
        client.submit(signed_tx(100)).unwrap();
        assert_eq!(client.latest_height(0).unwrap(), 4);
        let b = client.block_at(0, 4).unwrap().unwrap();
        assert_eq!(b.header.height, 4);
        assert!(client.block_at(0, 2).unwrap().is_none());
    }
}
