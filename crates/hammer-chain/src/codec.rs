//! JSON encodings of the wire types, used by the generic RPC facade.
//!
//! Encodings are hand-rolled (the JSON layer is part of the system under
//! study). Every `encode_*` has a matching `decode_*`; round-trip equality
//! is property-tested.

use std::time::Duration;

use hammer_crypto::sig::Signature;
use hammer_crypto::{from_hex, to_hex, PublicKey};
use hammer_rpc::json::Value;

use crate::smallbank::Op;
use crate::types::{Address, Block, SignedTransaction, Transaction, TxId};

/// Codec failure: a field was missing or had the wrong shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, CodecError> {
    v.get(key)
        .ok_or_else(|| CodecError(format!("missing field '{key}'")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, CodecError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| CodecError(format!("field '{key}' is not a u64")))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, CodecError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| CodecError(format!("field '{key}' is not a string")))
}

/// 64-bit ids (addresses, keys, public keys) are encoded as decimal strings:
/// JSON numbers lose precision beyond 2^53.
fn encode_u64s(v: u64) -> Value {
    Value::from(v.to_string())
}

fn u64s_field(v: &Value, key: &str) -> Result<u64, CodecError> {
    str_field(v, key)?
        .parse::<u64>()
        .map_err(|_| CodecError(format!("field '{key}' is not a u64 string")))
}

/// Encodes an operation.
pub fn encode_op(op: &Op) -> Value {
    match *op {
        Op::CreateAccount {
            account,
            checking,
            savings,
        } => Value::object([
            ("type", Value::from("create_account")),
            ("account", encode_u64s(account.0)),
            ("checking", Value::from(checking)),
            ("savings", Value::from(savings)),
        ]),
        Op::DepositChecking { account, amount } => Value::object([
            ("type", Value::from("deposit")),
            ("account", encode_u64s(account.0)),
            ("amount", Value::from(amount)),
        ]),
        Op::WriteCheck { account, amount } => Value::object([
            ("type", Value::from("withdraw")),
            ("account", encode_u64s(account.0)),
            ("amount", Value::from(amount)),
        ]),
        Op::SendPayment { from, to, amount } => Value::object([
            ("type", Value::from("transfer")),
            ("from", encode_u64s(from.0)),
            ("to", encode_u64s(to.0)),
            ("amount", Value::from(amount)),
        ]),
        Op::Amalgamate { from, to } => Value::object([
            ("type", Value::from("amalgamate")),
            ("from", encode_u64s(from.0)),
            ("to", encode_u64s(to.0)),
        ]),
        Op::TransactSavings { account, amount } => Value::object([
            ("type", Value::from("transact_savings")),
            ("account", encode_u64s(account.0)),
            ("amount", Value::from(amount)),
        ]),
        Op::Balance { account } => Value::object([
            ("type", Value::from("balance")),
            ("account", encode_u64s(account.0)),
        ]),
        Op::KvPut { key, value } => Value::object([
            ("type", Value::from("kv_put")),
            ("key", encode_u64s(key)),
            ("value", Value::from(value)),
        ]),
        Op::KvGet { key } => {
            Value::object([("type", Value::from("kv_get")), ("key", encode_u64s(key))])
        }
    }
}

/// Decodes an operation.
pub fn decode_op(v: &Value) -> Result<Op, CodecError> {
    let ty = str_field(v, "type")?;
    let op = match ty {
        "create_account" => Op::CreateAccount {
            account: Address(u64s_field(v, "account")?),
            checking: u64_field(v, "checking")?,
            savings: u64_field(v, "savings")?,
        },
        "deposit" => Op::DepositChecking {
            account: Address(u64s_field(v, "account")?),
            amount: u64_field(v, "amount")?,
        },
        "withdraw" => Op::WriteCheck {
            account: Address(u64s_field(v, "account")?),
            amount: u64_field(v, "amount")?,
        },
        "transfer" => Op::SendPayment {
            from: Address(u64s_field(v, "from")?),
            to: Address(u64s_field(v, "to")?),
            amount: u64_field(v, "amount")?,
        },
        "amalgamate" => Op::Amalgamate {
            from: Address(u64s_field(v, "from")?),
            to: Address(u64s_field(v, "to")?),
        },
        "transact_savings" => Op::TransactSavings {
            account: Address(u64s_field(v, "account")?),
            amount: u64_field(v, "amount")?,
        },
        "balance" => Op::Balance {
            account: Address(u64s_field(v, "account")?),
        },
        "kv_put" => Op::KvPut {
            key: u64s_field(v, "key")?,
            value: u64_field(v, "value")?,
        },
        "kv_get" => Op::KvGet {
            key: u64s_field(v, "key")?,
        },
        other => return Err(CodecError(format!("unknown op type '{other}'"))),
    };
    Ok(op)
}

/// Encodes a signed transaction.
pub fn encode_signed_tx(tx: &SignedTransaction) -> Value {
    Value::object([
        ("client_id", Value::from(tx.tx.client_id as u64)),
        ("server_id", Value::from(tx.tx.server_id as u64)),
        ("nonce", Value::from(tx.tx.nonce)),
        ("op", encode_op(&tx.tx.op)),
        ("chain_name", Value::from(tx.tx.chain_name.clone())),
        ("contract_name", Value::from(tx.tx.contract_name.clone())),
        ("id", Value::from(to_hex(tx.id.as_bytes()))),
        ("sig", Value::from(to_hex(&tx.signature.to_bytes()))),
        ("pk", encode_u64s(tx.public_key.as_u64())),
    ])
}

/// Decodes a signed transaction, re-checking that the embedded id matches
/// the body.
pub fn decode_signed_tx(v: &Value) -> Result<SignedTransaction, CodecError> {
    let tx = Transaction {
        client_id: u64_field(v, "client_id")? as u32,
        server_id: u64_field(v, "server_id")? as u32,
        nonce: u64_field(v, "nonce")?,
        op: decode_op(field(v, "op")?)?,
        chain_name: str_field(v, "chain_name")?.to_owned(),
        contract_name: str_field(v, "contract_name")?.to_owned(),
    };
    let id_bytes =
        from_hex(str_field(v, "id")?).ok_or_else(|| CodecError("bad hex in 'id'".to_owned()))?;
    let id_arr: [u8; 32] = id_bytes
        .try_into()
        .map_err(|_| CodecError("'id' must be 32 bytes".to_owned()))?;
    let id = TxId(id_arr);
    if tx.id() != id {
        return Err(CodecError("transaction id does not match body".to_owned()));
    }
    let sig_bytes =
        from_hex(str_field(v, "sig")?).ok_or_else(|| CodecError("bad hex in 'sig'".to_owned()))?;
    let sig_arr: [u8; 16] = sig_bytes
        .try_into()
        .map_err(|_| CodecError("'sig' must be 16 bytes".to_owned()))?;
    let signature = Signature::from_bytes(&sig_arr)
        .ok_or_else(|| CodecError("signature components out of range".to_owned()))?;
    let public_key = PublicKey::from_u64(u64s_field(v, "pk")?)
        .ok_or_else(|| CodecError("public key out of range".to_owned()))?;
    Ok(SignedTransaction {
        tx,
        id,
        signature,
        public_key,
    })
}

/// Encodes a signed transaction straight to JSON text, appending to a
/// caller-supplied reusable buffer (the submission hot path clears and
/// reuses one buffer per thread).
pub fn encode_signed_tx_into(tx: &SignedTransaction, out: &mut String) {
    encode_signed_tx(tx).to_json_into(out);
}

/// Decodes a signed transaction from raw JSON bytes (e.g. a reused
/// transport receive buffer).
pub fn decode_signed_tx_bytes(bytes: &[u8]) -> Result<SignedTransaction, CodecError> {
    let v = Value::parse_bytes(bytes).map_err(|e| CodecError(format!("bad JSON: {e}")))?;
    decode_signed_tx(&v)
}

/// Encodes a block (ids + validity + header).
pub fn encode_block(block: &Block) -> Value {
    Value::object([
        ("height", Value::from(block.header.height)),
        ("prev_hash", Value::from(to_hex(&block.header.prev_hash))),
        (
            "merkle_root",
            Value::from(to_hex(&block.header.merkle_root)),
        ),
        (
            "timestamp_ns",
            Value::from(block.header.timestamp.as_nanos() as u64),
        ),
        ("proposer", Value::from(block.header.proposer.clone())),
        ("shard", Value::from(block.header.shard as u64)),
        (
            "tx_ids",
            Value::Array(
                block
                    .tx_ids
                    .iter()
                    .map(|t| Value::from(to_hex(t.as_bytes())))
                    .collect(),
            ),
        ),
        (
            "valid",
            Value::Array(block.valid.iter().map(|b| Value::Bool(*b)).collect()),
        ),
    ])
}

/// Encodes a block straight to JSON text, appending to a reusable buffer.
pub fn encode_block_into(block: &Block, out: &mut String) {
    encode_block(block).to_json_into(out);
}

/// Decodes a block from raw JSON bytes and verifies its Merkle root.
pub fn decode_block_bytes(bytes: &[u8]) -> Result<Block, CodecError> {
    let v = Value::parse_bytes(bytes).map_err(|e| CodecError(format!("bad JSON: {e}")))?;
    decode_block(&v)
}

/// Decodes a block and verifies its Merkle root.
pub fn decode_block(v: &Value) -> Result<Block, CodecError> {
    let parse_hash = |key: &str| -> Result<[u8; 32], CodecError> {
        let bytes = from_hex(str_field(v, key)?)
            .ok_or_else(|| CodecError(format!("bad hex in '{key}'")))?;
        bytes
            .try_into()
            .map_err(|_| CodecError(format!("'{key}' must be 32 bytes")))
    };
    let tx_ids: Result<Vec<TxId>, CodecError> = field(v, "tx_ids")?
        .as_array()
        .ok_or_else(|| CodecError("'tx_ids' is not an array".to_owned()))?
        .iter()
        .map(|item| {
            let bytes = item
                .as_str()
                .and_then(from_hex)
                .ok_or_else(|| CodecError("bad tx id hex".to_owned()))?;
            let arr: [u8; 32] = bytes
                .try_into()
                .map_err(|_| CodecError("tx id must be 32 bytes".to_owned()))?;
            Ok(TxId(arr))
        })
        .collect();
    let tx_ids = tx_ids?;
    let valid: Result<Vec<bool>, CodecError> = field(v, "valid")?
        .as_array()
        .ok_or_else(|| CodecError("'valid' is not an array".to_owned()))?
        .iter()
        .map(|item| {
            item.as_bool()
                .ok_or_else(|| CodecError("'valid' entries must be bools".to_owned()))
        })
        .collect();
    let valid = valid?;
    if valid.len() != tx_ids.len() {
        return Err(CodecError(
            "'valid' and 'tx_ids' length mismatch".to_owned(),
        ));
    }
    let block = Block {
        header: crate::types::BlockHeader {
            height: u64_field(v, "height")?,
            prev_hash: parse_hash("prev_hash")?,
            merkle_root: parse_hash("merkle_root")?,
            timestamp: Duration::from_nanos(u64_field(v, "timestamp_ns")?),
            proposer: str_field(v, "proposer")?.to_owned(),
            shard: u64_field(v, "shard")? as u32,
        },
        tx_ids,
        valid,
    };
    if !block.verify_merkle_root() {
        return Err(CodecError("merkle root mismatch".to_owned()));
    }
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_crypto::sig::SigParams;
    use hammer_crypto::Keypair;
    use proptest::prelude::*;

    fn sample_ops() -> Vec<Op> {
        let a = Address::from_name("a");
        let b = Address::from_name("b");
        vec![
            Op::CreateAccount {
                account: a,
                checking: 1,
                savings: 2,
            },
            Op::DepositChecking {
                account: a,
                amount: 3,
            },
            Op::WriteCheck {
                account: a,
                amount: 4,
            },
            Op::SendPayment {
                from: a,
                to: b,
                amount: 5,
            },
            Op::Amalgamate { from: a, to: b },
            Op::TransactSavings {
                account: a,
                amount: 6,
            },
            Op::Balance { account: a },
            Op::KvPut { key: 7, value: 8 },
            Op::KvGet { key: 9 },
        ]
    }

    #[test]
    fn op_roundtrip_all_variants() {
        for op in sample_ops() {
            let encoded = encode_op(&op);
            // Also force a text round trip.
            let reparsed = Value::parse(&encoded.to_json()).unwrap();
            assert_eq!(decode_op(&reparsed).unwrap(), op, "{op:?}");
        }
    }

    #[test]
    fn op_decode_rejects_unknown_type() {
        let v = Value::object([("type", Value::from("mint_nft"))]);
        assert!(decode_op(&v).is_err());
    }

    #[test]
    fn signed_tx_roundtrip() {
        let tx = Transaction {
            client_id: 3,
            server_id: 1,
            nonce: 42,
            op: Op::SendPayment {
                from: Address::from_name("x"),
                to: Address::from_name("y"),
                amount: 10,
            },
            chain_name: "fabric-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
        };
        let signed = tx.sign(&Keypair::from_seed(9), &SigParams::fast());
        let encoded = encode_signed_tx(&signed);
        let reparsed = Value::parse(&encoded.to_json()).unwrap();
        let decoded = decode_signed_tx(&reparsed).unwrap();
        assert_eq!(decoded, signed);
        assert!(decoded.verify(&SigParams::fast()));
    }

    #[test]
    fn signed_tx_text_roundtrip_with_reused_buffer() {
        let params = SigParams::fast();
        let kp = Keypair::from_seed(2);
        let mut buf = String::new();
        for nonce in 0..4u64 {
            let tx = Transaction {
                client_id: 1,
                server_id: 0,
                nonce,
                op: Op::KvPut {
                    key: nonce,
                    value: nonce,
                },
                chain_name: "c".to_owned(),
                contract_name: "k".to_owned(),
            };
            let signed = tx.sign(&kp, &params);
            buf.clear();
            encode_signed_tx_into(&signed, &mut buf);
            assert_eq!(decode_signed_tx_bytes(buf.as_bytes()).unwrap(), signed);
        }
    }

    #[test]
    fn block_text_roundtrip_with_reused_buffer() {
        let block = Block::new(3, [2u8; 32], Duration::from_secs(1), "n", 1, vec![], vec![]);
        let mut buf = String::from("stale contents");
        buf.clear();
        encode_block_into(&block, &mut buf);
        assert_eq!(decode_block_bytes(buf.as_bytes()).unwrap(), block);
        assert!(decode_block_bytes(b"{").is_err());
    }

    #[test]
    fn signed_tx_decode_rejects_id_mismatch() {
        let tx = Transaction {
            client_id: 3,
            server_id: 1,
            nonce: 42,
            op: Op::KvGet { key: 1 },
            chain_name: "c".to_owned(),
            contract_name: "k".to_owned(),
        };
        let signed = tx.sign(&Keypair::from_seed(9), &SigParams::fast());
        let mut encoded = encode_signed_tx(&signed);
        // Tamper with the nonce but keep the old id.
        if let Value::Object(pairs) = &mut encoded {
            for (k, v) in pairs.iter_mut() {
                if k == "nonce" {
                    *v = Value::from(43u64);
                }
            }
        }
        assert!(decode_signed_tx(&encoded).is_err());
    }

    #[test]
    fn block_roundtrip() {
        let ids: Vec<TxId> = (0..4)
            .map(|i| {
                Transaction {
                    client_id: 0,
                    server_id: 0,
                    nonce: i,
                    op: Op::KvGet { key: i },
                    chain_name: "c".to_owned(),
                    contract_name: "k".to_owned(),
                }
                .id()
            })
            .collect();
        let block = Block::new(
            5,
            [1u8; 32],
            Duration::from_millis(777),
            "orderer-0",
            2,
            ids,
            vec![true, false, true, true],
        );
        let encoded = encode_block(&block);
        let reparsed = Value::parse(&encoded.to_json()).unwrap();
        assert_eq!(decode_block(&reparsed).unwrap(), block);
    }

    #[test]
    fn block_decode_rejects_tampered_merkle() {
        let block = Block::new(1, [0u8; 32], Duration::ZERO, "n", 0, vec![], vec![]);
        let mut encoded = encode_block(&block);
        if let Value::Object(pairs) = &mut encoded {
            for (k, v) in pairs.iter_mut() {
                if k == "merkle_root" {
                    *v = Value::from(to_hex(&[7u8; 32]));
                }
            }
        }
        assert!(decode_block(&encoded).is_err());
    }

    proptest! {
        #[test]
        fn prop_signed_tx_roundtrip(nonce in 0u64..1_000_000, seed in 0u64..50, amount in 0u64..10_000) {
            let tx = Transaction {
                client_id: (seed % 7) as u32,
                server_id: (seed % 3) as u32,
                nonce,
                op: Op::SendPayment {
                    from: Address(seed),
                    to: Address(seed + 1),
                    amount,
                },
                chain_name: "sim".to_owned(),
                contract_name: "smallbank".to_owned(),
            };
            let signed = tx.sign(&Keypair::from_seed(seed), &SigParams::fast());
            let text = encode_signed_tx(&signed).to_json();
            let decoded = decode_signed_tx(&Value::parse(&text).unwrap()).unwrap();
            prop_assert_eq!(decoded, signed);
        }
    }
}
