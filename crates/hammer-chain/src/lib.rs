//! Common blockchain building blocks shared by every simulated chain in the
//! Hammer evaluation framework.
//!
//! The paper evaluates four very different systems — Ethereum (PoW),
//! Hyperledger Fabric (execute-order-validate), Neuchain (deterministic
//! ordering) and Meepo (sharded consortium) — through one generic driver.
//! This crate provides everything those simulators share:
//!
//! * [`types`] — addresses, transaction ids, transactions, blocks, receipts.
//! * [`smallbank`] — the SmallBank contract operations (the paper's
//!   workload) plus a YCSB-style KV extension.
//! * [`state`] — a versioned world state with read/write-set tracking
//!   (Fabric-style MVCC validation needs versions).
//! * [`ledger`] — an append-only block store with hash-chain verification
//!   and a transaction index.
//! * [`mempool`] — a bounded transaction pool with de-duplication.
//! * [`client`] — the [`client::BlockchainClient`] trait, the *generic
//!   interface* of the paper (§III-A2), which both the driver and the RPC
//!   facade program against, plus commit-event subscriptions used by
//!   Caliper-style interactive testing.
//! * [`codec`] — JSON encodings of the wire types.
//! * [`rpc_adapter`] — exposes any `BlockchainClient` over JSON-RPC and
//!   re-imports it as a client, proving language/architecture neutrality.
//! * [`remote`] — [`remote::TcpChainClient`], the same generic interface
//!   spoken over real TCP to a `node-host` process (multi-process deploy
//!   mode), with restart-aware height virtualisation and graceful
//!   degradation during fault windows.
//! * [`kernel`] — the chain-node runtime: thread lifecycle with joined
//!   shutdown, fault-gated mempool ingress, sealed-block accounting and
//!   observability, and gossip fan-out — everything chain-agnostic, so a
//!   simulator reduces to a [`kernel::ConsensusPolicy`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod codec;
pub mod events;
pub mod kernel;
pub mod ledger;
pub mod mempool;
pub mod remote;
pub mod rpc_adapter;
pub mod smallbank;
pub mod state;
pub mod types;

pub use client::{
    check_node_ingress, Architecture, BlockchainClient, ChainError, CommitEvent, ErrorKind,
};
pub use kernel::{
    ChainNode, ConsensusPolicy, Kernel, KernelStats, NodeKernelBuilder, Round, ShardCtx, SimChain,
    Worker,
};
pub use ledger::Ledger;
pub use mempool::Mempool;
pub use remote::TcpChainClient;
pub use smallbank::{ExecError, Op, OpOutput};
pub use state::{RwSet, VersionedState};
pub use types::{
    Address, Block, BlockHeader, Receipt, SignedTransaction, Transaction, TxId, TxStatus,
};
