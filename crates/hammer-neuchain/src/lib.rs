//! A Neuchain-style deterministic-ordering blockchain simulator.
//!
//! Neuchain (Peng et al., VLDB 2022) removes the ordering phase entirely:
//! transactions received within an epoch are ordered *deterministically*
//! (here: by transaction id) and executed by every block server, so no
//! consensus round trips sit on the critical path. That is why it is the
//! high-throughput / low-latency extreme of the paper's Fig. 6 (8 688 TPS
//! against Ethereum's 18.6).
//!
//! Roles, mirroring the paper's deployment (§V *Environment*): one **epoch
//! server** cutting epochs, one **client proxy** accepting submissions, and
//! the remaining nodes as **block servers** replicating blocks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError};
use hammer_chain::client::{
    check_node_ingress, Architecture, BlockchainClient, ChainError, CommitEvent,
};
use hammer_chain::events::CommitBus;
use hammer_chain::ledger::Ledger;
use hammer_chain::mempool::Mempool;
use hammer_chain::state::VersionedState;
use hammer_chain::types::{verify_signed_batch, Block, SignedTransaction, TxId};
use hammer_crypto::sig::SigParams;
use hammer_net::{SimClock, SimNetwork};
use parking_lot::{Mutex, RwLock};

/// Configuration of the simulated Neuchain deployment.
#[derive(Clone, Debug)]
pub struct NeuchainConfig {
    /// Number of block servers (the paper uses 3: 5 nodes minus the epoch
    /// server and the client proxy).
    pub block_servers: usize,
    /// Epoch length: every epoch the pending set becomes one block.
    pub epoch_interval: Duration,
    /// Maximum transactions per epoch block.
    pub max_block_txs: usize,
    /// Simulated deterministic-execution cost per transaction.
    pub exec_cost_per_tx: Duration,
    /// Client-proxy pool capacity.
    pub mempool_capacity: usize,
    /// Whether to verify client signatures at epoch cut.
    pub verify_signatures: bool,
    /// Signature scheme parameters.
    pub sig_params: SigParams,
}

impl Default for NeuchainConfig {
    fn default() -> Self {
        NeuchainConfig {
            block_servers: 3,
            epoch_interval: Duration::from_millis(100),
            max_block_txs: 2_000,
            exec_cost_per_tx: Duration::from_micros(8),
            mempool_capacity: 50_000,
            verify_signatures: true,
            sig_params: SigParams::fast(),
        }
    }
}

/// Activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeuchainStats {
    /// Epochs (blocks) cut.
    pub epochs: u64,
    /// Transactions committed successfully.
    pub committed: u64,
    /// Transactions included but failed execution.
    pub failed: u64,
    /// Transactions dropped for bad signatures.
    pub bad_sig: u64,
}

struct Inner {
    config: NeuchainConfig,
    clock: SimClock,
    net: SimNetwork,
    mempool: Mempool,
    ledger: RwLock<Ledger>,
    state: Mutex<VersionedState>,
    bus: CommitBus,
    shutdown: AtomicBool,
    epochs: AtomicU64,
    committed: AtomicU64,
    failed: AtomicU64,
    bad_sig: AtomicU64,
}

/// Handle to a running Neuchain simulation.
pub struct NeuchainSim {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for NeuchainSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeuchainSim")
            .field("height", &self.inner.ledger.read().height())
            .field("pending", &self.inner.mempool.len())
            .finish()
    }
}

impl NeuchainSim {
    fn server_name(i: usize) -> String {
        format!("neuchain-block-server-{i}")
    }

    /// Starts the deployment: epoch server thread, client proxy pool,
    /// block-server endpoints.
    pub fn start(config: NeuchainConfig, clock: SimClock, net: SimNetwork) -> Arc<Self> {
        assert!(config.block_servers >= 1);
        let inner = Arc::new(Inner {
            mempool: Mempool::new(config.mempool_capacity),
            config,
            clock,
            net,
            ledger: RwLock::new(Ledger::new()),
            state: Mutex::new(VersionedState::new()),
            bus: CommitBus::new(),
            shutdown: AtomicBool::new(false),
            epochs: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            bad_sig: AtomicU64::new(0),
        });

        inner.net.register("neuchain-epoch-server");
        inner.net.register("neuchain-client-proxy");
        for i in 0..inner.config.block_servers {
            let endpoint = inner.net.register(&Self::server_name(i));
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name(format!("neuchain-bs-{i}"))
                .spawn(move || loop {
                    match endpoint.recv_timeout(Duration::from_millis(100)) {
                        Ok(_) => {}
                        Err(RecvTimeoutError::Timeout) => match weak.upgrade() {
                            Some(inner) => {
                                if inner.shutdown.load(Ordering::Relaxed) {
                                    return;
                                }
                            }
                            None => return,
                        },
                        Err(_) => return,
                    }
                })
                .expect("spawn block server");
        }

        let epoch_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("neuchain-epoch".to_owned())
            .spawn(move || epoch_loop(epoch_inner))
            .expect("spawn epoch server");

        Arc::new(NeuchainSim { inner })
    }

    /// Seeds an account directly into world state (genesis allocation).
    pub fn seed_account(&self, account: hammer_chain::types::Address, checking: u64, savings: u64) {
        self.inner
            .state
            .lock()
            .seed_account(account, checking, savings);
    }

    /// Reads an account's state.
    pub fn account(
        &self,
        account: hammer_chain::types::Address,
    ) -> Option<hammer_chain::state::AccountState> {
        self.inner.state.lock().get(account)
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> NeuchainStats {
        NeuchainStats {
            epochs: self.inner.epochs.load(Ordering::Relaxed),
            committed: self.inner.committed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            bad_sig: self.inner.bad_sig.load(Ordering::Relaxed),
        }
    }

    /// Verifies the internal hash chain.
    pub fn verify_ledger(&self) -> Result<(), hammer_chain::ledger::LedgerError> {
        self.inner.ledger.read().verify_chain()
    }
}

fn epoch_loop(inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::Relaxed) {
        inner.clock.sleep(inner.config.epoch_interval);
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // A crashed epoch server cuts no epochs; pooled transactions wait
        // for the restart.
        if inner.net.node_crashed("neuchain-epoch-server") {
            continue;
        }
        let mut txs = inner.mempool.drain(inner.config.max_block_txs);
        if txs.is_empty() {
            // Neuchain still advances epochs, but empty blocks are elided
            // in the simulation to keep ledgers compact.
            continue;
        }
        // Deterministic order: sort by transaction id. Every block server
        // derives the same order with no communication.
        txs.sort_by_key(|t| t.id);

        // Signature verification: the whole epoch batch goes through the
        // shared-table batch verifier, amortising per-key precomputation.
        if inner.config.verify_signatures {
            let verdicts = verify_signed_batch(&txs, &inner.config.sig_params);
            let mut verdicts = verdicts.iter();
            txs.retain(|_| {
                let ok = *verdicts.next().expect("one verdict per tx");
                if !ok {
                    inner.bad_sig.fetch_add(1, Ordering::Relaxed);
                }
                ok
            });
        }

        // Deterministic execution cost.
        inner
            .clock
            .sleep(inner.config.exec_cost_per_tx * txs.len() as u32);

        let mut tx_ids = Vec::with_capacity(txs.len());
        let mut valid = Vec::with_capacity(txs.len());
        {
            let mut state = inner.state.lock();
            for tx in &txs {
                let ok = state.apply(&tx.tx.op).is_ok();
                tx_ids.push(tx.id);
                valid.push(ok);
                if ok {
                    inner.committed.fetch_add(1, Ordering::Relaxed);
                } else {
                    inner.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        let timestamp = inner.clock.now();
        let block = {
            let ledger = inner.ledger.read();
            Block::new(
                ledger.height() + 1,
                ledger.tip_hash(),
                timestamp,
                "neuchain-epoch-server",
                0,
                tx_ids,
                valid,
            )
        };

        // Distribute the epoch block to the block servers.
        let approx_size = 200 + block.len() * 110;
        for i in 0..inner.config.block_servers {
            let _ = inner.net.send(
                "neuchain-epoch-server",
                &NeuchainSim::server_name(i),
                vec![0u8; approx_size.min(1 << 20)],
            );
        }

        let events: Vec<CommitEvent> = block
            .entries()
            .map(|(tx_id, success)| CommitEvent {
                tx_id,
                success,
                block_height: block.header.height,
                shard: 0,
                committed_at: timestamp,
            })
            .collect();
        let height = block.header.height;
        let sealed_txs = block.len();
        inner
            .ledger
            .write()
            .append(block)
            .expect("epoch server builds sequential blocks");
        inner.epochs.fetch_add(1, Ordering::Relaxed);
        // Per-epoch observability.
        let obs = inner.net.obs();
        if obs.enabled() {
            let labels = &[("chain", "neuchain-sim")];
            let registry = obs.registry();
            registry
                .counter_with("hammer_chain_blocks_sealed_total", labels)
                .inc();
            registry
                .counter_with("hammer_chain_txs_sealed_total", labels)
                .add(sealed_txs as u64);
            registry
                .gauge_with("hammer_chain_mempool_depth", labels)
                .set(inner.mempool.len() as u64);
            obs.journal()
                .block_seal(timestamp, "neuchain-epoch-server", height, sealed_txs);
        }
        inner.bus.publish_all(&events);
    }
}

impl BlockchainClient for NeuchainSim {
    fn chain_name(&self) -> &str {
        "neuchain-sim"
    }

    fn architecture(&self) -> Architecture {
        Architecture::NonSharded
    }

    fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError> {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return Err(ChainError::shutdown());
        }
        check_node_ingress(&self.inner.net, "neuchain-client-proxy")?;
        let id = tx.id;
        self.inner.mempool.push(tx).map_err(ChainError::rejected)?;
        Ok(id)
    }

    fn latest_height(&self, shard: u32) -> Result<u64, ChainError> {
        if shard != 0 {
            return Err(ChainError::unknown_shard(shard));
        }
        Ok(self.inner.ledger.read().height())
    }

    fn block_at(&self, shard: u32, height: u64) -> Result<Option<Block>, ChainError> {
        if shard != 0 {
            return Err(ChainError::unknown_shard(shard));
        }
        Ok(self.inner.ledger.read().block_at(height).cloned())
    }

    fn pending_txs(&self) -> Result<usize, ChainError> {
        Ok(self.inner.mempool.len())
    }

    fn subscribe_commits(&self) -> Receiver<CommitEvent> {
        self.inner.bus.subscribe()
    }

    fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for NeuchainSim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::smallbank::Op;
    use hammer_chain::types::{Address, Transaction};
    use hammer_crypto::Keypair;
    use hammer_net::LinkConfig;

    fn fast_chain(config: NeuchainConfig) -> Arc<NeuchainSim> {
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        NeuchainSim::start(config, clock, net)
    }

    fn signed(nonce: u64, op: Op) -> SignedTransaction {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op,
            chain_name: "neuchain-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
        }
        .sign(&Keypair::from_seed(4), &SigParams::fast())
    }

    fn wait_until(pred: impl Fn() -> bool, wall_ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(wall_ms);
        while std::time::Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn commits_within_an_epoch() {
        let chain = fast_chain(NeuchainConfig::default());
        chain.seed_account(Address::from_name("a"), 100, 0);
        chain
            .submit(signed(
                1,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 1,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().committed == 1, 5000));
        assert_eq!(
            chain.account(Address::from_name("a")).unwrap().checking,
            101
        );
        chain.shutdown();
    }

    #[test]
    fn deterministic_order_within_block() {
        let chain = fast_chain(NeuchainConfig {
            epoch_interval: Duration::from_millis(500),
            ..NeuchainConfig::default()
        });
        chain.seed_account(Address::from_name("a"), 10_000, 0);
        let mut ids: Vec<TxId> = Vec::new();
        for i in 0..20 {
            ids.push(
                chain
                    .submit(signed(
                        i,
                        Op::DepositChecking {
                            account: Address::from_name("a"),
                            amount: 1,
                        },
                    ))
                    .unwrap(),
            );
        }
        assert!(wait_until(|| chain.stats().committed >= 20, 5000));
        // All landed in one (or few) blocks; within each block ids are sorted.
        for h in 1..=chain.latest_height(0).unwrap() {
            let b = chain.block_at(0, h).unwrap().unwrap();
            let mut sorted = b.tx_ids.clone();
            sorted.sort();
            assert_eq!(b.tx_ids, sorted, "block {h} not deterministically ordered");
        }
        chain.shutdown();
    }

    #[test]
    fn empty_epochs_produce_no_blocks() {
        let chain = fast_chain(NeuchainConfig {
            epoch_interval: Duration::from_millis(50),
            ..NeuchainConfig::default()
        });
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(chain.latest_height(0).unwrap(), 0);
        chain.shutdown();
    }

    #[test]
    fn bad_signature_dropped_entirely() {
        let chain = fast_chain(NeuchainConfig::default());
        chain.seed_account(Address::from_name("a"), 100, 0);
        let mut tx = signed(
            1,
            Op::DepositChecking {
                account: Address::from_name("a"),
                amount: 1,
            },
        );
        tx.tx.nonce = 999; // break the signature/id linkage
                           // The mempool accepts it (stateless), the epoch cut drops it.
                           // Note: tx.id no longer matches the body, so verify() fails.
        chain.submit(tx).unwrap();
        assert!(wait_until(|| chain.stats().bad_sig == 1, 5000));
        assert_eq!(chain.stats().committed, 0);
        chain.shutdown();
    }

    #[test]
    fn failed_execution_marked_invalid() {
        let chain = fast_chain(NeuchainConfig::default());
        let id = chain
            .submit(signed(
                1,
                Op::WriteCheck {
                    account: Address::from_name("ghost"),
                    amount: 1,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().failed == 1, 5000));
        let b = chain.block_at(0, 1).unwrap().unwrap();
        let pos = b.tx_ids.iter().position(|t| *t == id).unwrap();
        assert!(!b.valid[pos]);
        chain.shutdown();
    }

    #[test]
    fn sustains_high_throughput() {
        // 2000 txs committed in well under a simulated second.
        let chain = fast_chain(NeuchainConfig::default());
        chain.seed_account(Address::from_name("a"), 10_000_000, 0);
        for i in 0..2000 {
            chain
                .submit(signed(
                    i,
                    Op::DepositChecking {
                        account: Address::from_name("a"),
                        amount: 1,
                    },
                ))
                .unwrap();
        }
        assert!(wait_until(|| chain.stats().committed >= 2000, 10_000));
        chain.verify_ledger().unwrap();
        chain.shutdown();
    }

    #[test]
    fn crash_window_halts_epochs_and_fails_ingress() {
        use hammer_net::FaultPlan;
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        let chain = NeuchainSim::start(NeuchainConfig::default(), clock.clone(), net.clone());
        chain.seed_account(Address::from_name("a"), 10_000, 0);
        // Crash both roles from the epoch start; restart at 2s (simulated).
        net.install_faults(
            FaultPlan::new()
                .crash(
                    "neuchain-client-proxy",
                    Duration::ZERO,
                    Duration::from_secs(2),
                )
                .crash(
                    "neuchain-epoch-server",
                    Duration::ZERO,
                    Duration::from_secs(2),
                ),
        );
        let deposit = |n| {
            signed(
                n,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 1,
                },
            )
        };
        let err = chain.submit(deposit(1)).unwrap_err();
        assert!(err.is_unavailable(), "expected outage error, got {err}");
        assert!(err.is_retryable());
        assert_eq!(chain.latest_height(0).unwrap(), 0);
        // After the restart the same transaction goes through and commits.
        assert!(wait_until(|| chain.submit(deposit(2)).is_ok(), 5000));
        assert!(wait_until(|| chain.stats().committed >= 1, 5000));
        chain.shutdown();
    }

    #[test]
    fn max_block_txs_respected() {
        let chain = fast_chain(NeuchainConfig {
            max_block_txs: 7,
            epoch_interval: Duration::from_millis(100),
            ..NeuchainConfig::default()
        });
        chain.seed_account(Address::from_name("a"), 10_000, 0);
        for i in 0..30 {
            chain
                .submit(signed(
                    i,
                    Op::DepositChecking {
                        account: Address::from_name("a"),
                        amount: 1,
                    },
                ))
                .unwrap();
        }
        assert!(wait_until(|| chain.stats().committed >= 30, 8000));
        for h in 1..=chain.latest_height(0).unwrap() {
            let b = chain.block_at(0, h).unwrap().unwrap();
            assert!(b.len() <= 7);
        }
        chain.shutdown();
    }
}
