//! A Neuchain-style deterministic-ordering blockchain simulator.
//!
//! Neuchain (Peng et al., VLDB 2022) removes the ordering phase entirely:
//! transactions received within an epoch are ordered *deterministically*
//! (here: by transaction id) and executed by every block server, so no
//! consensus round trips sit on the critical path. That is why it is the
//! high-throughput / low-latency extreme of the paper's Fig. 6 (8 688 TPS
//! against Ethereum's 18.6).
//!
//! Roles, mirroring the paper's deployment (§V *Environment*): one **epoch
//! server** cutting epochs, one **client proxy** accepting submissions, and
//! the remaining nodes as **block servers** replicating blocks.
//!
//! Node scaffolding (threads, ingress gating, sealing, observability)
//! comes from the [`hammer_chain::kernel`]; this crate only contributes
//! the epoch-cut [`ConsensusPolicy`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use hammer_chain::impl_sim_handle;
use hammer_chain::kernel::{
    ChainNode, ConsensusPolicy, Kernel, NodeKernelBuilder, Round, SimChain,
};
use hammer_crypto::sig::SigParams;
use hammer_net::{SimClock, SimNetwork};

/// Configuration of the simulated Neuchain deployment.
#[derive(Clone, Debug)]
pub struct NeuchainConfig {
    /// Number of block servers (the paper uses 3: 5 nodes minus the epoch
    /// server and the client proxy).
    pub block_servers: usize,
    /// Epoch length: every epoch the pending set becomes one block.
    pub epoch_interval: Duration,
    /// Maximum transactions per epoch block.
    pub max_block_txs: usize,
    /// Simulated deterministic-execution cost per transaction.
    pub exec_cost_per_tx: Duration,
    /// Client-proxy pool capacity.
    pub mempool_capacity: usize,
    /// Whether to verify client signatures at epoch cut.
    pub verify_signatures: bool,
    /// Signature scheme parameters.
    pub sig_params: SigParams,
}

impl Default for NeuchainConfig {
    fn default() -> Self {
        NeuchainConfig {
            block_servers: 3,
            epoch_interval: Duration::from_millis(100),
            max_block_txs: 2_000,
            exec_cost_per_tx: Duration::from_micros(8),
            mempool_capacity: 50_000,
            verify_signatures: true,
            sig_params: SigParams::fast(),
        }
    }
}

/// Activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeuchainStats {
    /// Epochs (blocks) cut.
    pub epochs: u64,
    /// Transactions committed successfully.
    pub committed: u64,
    /// Transactions included but failed execution.
    pub failed: u64,
    /// Transactions dropped for bad signatures.
    pub bad_sig: u64,
}

/// The epoch-cut consensus core: drain the pool every epoch, order
/// deterministically by transaction id, execute, seal.
pub struct NeuchainPolicy {
    config: NeuchainConfig,
}

fn server_name(i: usize) -> String {
    format!("neuchain-block-server-{i}")
}

impl ConsensusPolicy for NeuchainPolicy {
    fn chain_name(&self) -> &'static str {
        "neuchain-sim"
    }

    fn ingress_node(&self, _shard: u32) -> String {
        "neuchain-client-proxy".to_owned()
    }

    fn sealer_node(&self, _shard: u32) -> String {
        "neuchain-epoch-server".to_owned()
    }

    fn seal_wait(&self, _shard: u32) -> Duration {
        self.config.epoch_interval
    }

    fn build_round(&self, kernel: &Kernel, shard: u32) -> Option<Round> {
        let ctx = kernel.shard(shard);
        let mut txs = ctx.mempool.drain(self.config.max_block_txs);
        if txs.is_empty() {
            // Neuchain still advances epochs, but empty blocks are elided
            // in the simulation to keep ledgers compact.
            return None;
        }
        // Deterministic order: sort by transaction id. Every block server
        // derives the same order with no communication.
        txs.sort_by_key(|t| t.id);

        if self.config.verify_signatures {
            kernel.verify_retain(&mut txs, &self.config.sig_params);
        }

        // Deterministic execution cost.
        kernel
            .clock()
            .sleep(self.config.exec_cost_per_tx * txs.len() as u32);

        let mut tx_ids = Vec::with_capacity(txs.len());
        let mut valid = Vec::with_capacity(txs.len());
        {
            let mut state = ctx.state.lock();
            for tx in &txs {
                tx_ids.push(tx.id);
                valid.push(state.apply(&tx.tx.op).is_ok());
            }
        }

        Some(Round {
            proposer: "neuchain-epoch-server".to_owned(),
            tx_ids,
            valid,
            gossip_to: (0..self.config.block_servers).map(server_name).collect(),
            mempool_depth: None,
        })
    }
}

/// Handle to a running Neuchain simulation.
pub struct NeuchainSim {
    node: Arc<ChainNode<NeuchainPolicy>>,
}

impl_sim_handle!(NeuchainSim);

impl NeuchainSim {
    /// Starts the deployment: epoch server, client proxy, and
    /// block-server endpoints on the kernel runtime.
    pub fn start(config: NeuchainConfig, clock: SimClock, net: SimNetwork) -> Arc<Self> {
        assert!(config.block_servers >= 1);
        let mut builder = NodeKernelBuilder::new(clock, net)
            .mempool_capacity(config.mempool_capacity)
            .endpoint("neuchain-epoch-server")
            .endpoint("neuchain-client-proxy");
        for i in 0..config.block_servers {
            builder = builder.sink_endpoint(&server_name(i));
        }
        let node = builder.start(NeuchainPolicy { config });
        Arc::new(NeuchainSim { node })
    }

    /// Seeds an account directly into world state (genesis allocation).
    pub fn seed_account(&self, account: hammer_chain::types::Address, checking: u64, savings: u64) {
        SimChain::seed_account(&*self.node, account, checking, savings);
    }

    /// Reads an account's state.
    pub fn account(
        &self,
        account: hammer_chain::types::Address,
    ) -> Option<hammer_chain::state::AccountState> {
        SimChain::account(&*self.node, account)
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> NeuchainStats {
        let stats = self.node.stats();
        NeuchainStats {
            epochs: stats.blocks,
            committed: stats.committed,
            failed: stats.failed,
            bad_sig: stats.bad_sig,
        }
    }

    /// Verifies the internal hash chain.
    pub fn verify_ledger(&self) -> Result<(), hammer_chain::ledger::LedgerError> {
        self.node.verify_ledgers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::client::{Architecture, BlockchainClient};
    use hammer_chain::smallbank::Op;
    use hammer_chain::types::{Address, SignedTransaction, Transaction, TxId};
    use hammer_crypto::Keypair;
    use hammer_net::LinkConfig;

    fn fast_chain(config: NeuchainConfig) -> Arc<NeuchainSim> {
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        NeuchainSim::start(config, clock, net)
    }

    fn signed(nonce: u64, op: Op) -> SignedTransaction {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op,
            chain_name: "neuchain-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
        }
        .sign(&Keypair::from_seed(4), &SigParams::fast())
    }

    fn wait_until(pred: impl Fn() -> bool, wall_ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(wall_ms);
        while std::time::Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn commits_within_an_epoch() {
        let chain = fast_chain(NeuchainConfig::default());
        chain.seed_account(Address::from_name("a"), 100, 0);
        chain
            .submit(signed(
                1,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 1,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().committed == 1, 5000));
        assert_eq!(
            chain.account(Address::from_name("a")).unwrap().checking,
            101
        );
        chain.shutdown();
    }

    #[test]
    fn deterministic_order_within_block() {
        let chain = fast_chain(NeuchainConfig {
            epoch_interval: Duration::from_millis(500),
            ..NeuchainConfig::default()
        });
        chain.seed_account(Address::from_name("a"), 10_000, 0);
        let mut ids: Vec<TxId> = Vec::new();
        for i in 0..20 {
            ids.push(
                chain
                    .submit(signed(
                        i,
                        Op::DepositChecking {
                            account: Address::from_name("a"),
                            amount: 1,
                        },
                    ))
                    .unwrap(),
            );
        }
        assert!(wait_until(|| chain.stats().committed >= 20, 5000));
        // All landed in one (or few) blocks; within each block ids are sorted.
        for h in 1..=chain.latest_height(0).unwrap() {
            let b = chain.block_at(0, h).unwrap().unwrap();
            let mut sorted = b.tx_ids.clone();
            sorted.sort();
            assert_eq!(b.tx_ids, sorted, "block {h} not deterministically ordered");
        }
        chain.shutdown();
    }

    #[test]
    fn empty_epochs_produce_no_blocks() {
        let chain = fast_chain(NeuchainConfig {
            epoch_interval: Duration::from_millis(50),
            ..NeuchainConfig::default()
        });
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(chain.latest_height(0).unwrap(), 0);
        chain.shutdown();
    }

    #[test]
    fn bad_signature_dropped_entirely() {
        let chain = fast_chain(NeuchainConfig::default());
        chain.seed_account(Address::from_name("a"), 100, 0);
        let mut tx = signed(
            1,
            Op::DepositChecking {
                account: Address::from_name("a"),
                amount: 1,
            },
        );
        tx.tx.nonce = 999; // break the signature/id linkage
                           // The mempool accepts it (stateless), the epoch cut drops it.
                           // Note: tx.id no longer matches the body, so verify() fails.
        chain.submit(tx).unwrap();
        assert!(wait_until(|| chain.stats().bad_sig == 1, 5000));
        assert_eq!(chain.stats().committed, 0);
        chain.shutdown();
    }

    #[test]
    fn failed_execution_marked_invalid() {
        let chain = fast_chain(NeuchainConfig::default());
        let id = chain
            .submit(signed(
                1,
                Op::WriteCheck {
                    account: Address::from_name("ghost"),
                    amount: 1,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().failed == 1, 5000));
        let b = chain.block_at(0, 1).unwrap().unwrap();
        let pos = b.tx_ids.iter().position(|t| *t == id).unwrap();
        assert!(!b.valid[pos]);
        chain.shutdown();
    }

    #[test]
    fn sustains_high_throughput() {
        // 2000 txs committed in well under a simulated second.
        let chain = fast_chain(NeuchainConfig::default());
        chain.seed_account(Address::from_name("a"), 10_000_000, 0);
        for i in 0..2000 {
            chain
                .submit(signed(
                    i,
                    Op::DepositChecking {
                        account: Address::from_name("a"),
                        amount: 1,
                    },
                ))
                .unwrap();
        }
        assert!(wait_until(|| chain.stats().committed >= 2000, 10_000));
        chain.verify_ledger().unwrap();
        chain.shutdown();
    }

    #[test]
    fn crash_window_halts_epochs_and_fails_ingress() {
        use hammer_net::FaultPlan;
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        let chain = NeuchainSim::start(NeuchainConfig::default(), clock.clone(), net.clone());
        chain.seed_account(Address::from_name("a"), 10_000, 0);
        // Crash both roles from the epoch start; restart at 2s (simulated).
        net.install_faults(
            FaultPlan::new()
                .crash(
                    "neuchain-client-proxy",
                    Duration::ZERO,
                    Duration::from_secs(2),
                )
                .crash(
                    "neuchain-epoch-server",
                    Duration::ZERO,
                    Duration::from_secs(2),
                ),
        );
        let deposit = |n| {
            signed(
                n,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 1,
                },
            )
        };
        let err = chain.submit(deposit(1)).unwrap_err();
        assert!(err.is_unavailable(), "expected outage error, got {err}");
        assert!(err.is_retryable());
        assert_eq!(chain.latest_height(0).unwrap(), 0);
        // After the restart the same transaction goes through and commits.
        assert!(wait_until(|| chain.submit(deposit(2)).is_ok(), 5000));
        assert!(wait_until(|| chain.stats().committed >= 1, 5000));
        chain.shutdown();
    }

    #[test]
    fn max_block_txs_respected() {
        let chain = fast_chain(NeuchainConfig {
            max_block_txs: 7,
            epoch_interval: Duration::from_millis(100),
            ..NeuchainConfig::default()
        });
        chain.seed_account(Address::from_name("a"), 10_000, 0);
        for i in 0..30 {
            chain
                .submit(signed(
                    i,
                    Op::DepositChecking {
                        account: Address::from_name("a"),
                        amount: 1,
                    },
                ))
                .unwrap();
        }
        assert!(wait_until(|| chain.stats().committed >= 30, 8000));
        for h in 1..=chain.latest_height(0).unwrap() {
            let b = chain.block_at(0, h).unwrap().unwrap();
            assert!(b.len() <= 7);
        }
        chain.shutdown();
    }

    #[test]
    fn reports_roles_for_fault_targeting() {
        let chain = fast_chain(NeuchainConfig::default());
        assert_eq!(chain.architecture(), Architecture::NonSharded);
        assert_eq!(
            SimChain::ingress_nodes(&*chain),
            vec!["neuchain-client-proxy".to_owned()]
        );
        assert_eq!(
            SimChain::sealer_nodes(&*chain),
            vec!["neuchain-epoch-server".to_owned()]
        );
        chain.shutdown();
    }
}
