//! A Hyperledger-Fabric-style execute-order-validate blockchain simulator.
//!
//! Reproduces the performance-relevant mechanics of a permissioned Fabric
//! network (the paper's primary correctness/usability target, §V-C/V-D):
//!
//! * **Endorsement** — a pool of endorser threads *simulates* each
//!   transaction against current state, producing a read/write set
//!   ([`hammer_chain::state::RwSet`]) without committing.
//! * **Ordering** — an orderer thread batches endorsed transactions into
//!   blocks by count ([`FabricConfig::max_batch`]) or timeout
//!   ([`FabricConfig::batch_timeout`]), like a Raft ordering service.
//! * **Validation (MVCC)** — a committer thread re-checks every read
//!   version and marks conflicting transactions invalid *inside the block*
//!   (Fabric commits invalid transactions with a validation-failure flag;
//!   they are visible on the ledger). Conflicts grow with client
//!   concurrency on hot accounts, which is exactly the effect behind the
//!   paper's Fig. 10.
//! * **Block distribution** — sealed blocks are pushed from the orderer to
//!   the peer endpoints over the simulated network.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use hammer_chain::client::{
    check_node_ingress, Architecture, BlockchainClient, ChainError, CommitEvent,
};
use hammer_chain::events::CommitBus;
use hammer_chain::ledger::Ledger;
use hammer_chain::mempool::MempoolError;
use hammer_chain::state::{RwSet, VersionedState};
use hammer_chain::types::verify_signed_batch;
use hammer_chain::types::{Block, SignedTransaction, TxId};
use hammer_crypto::sig::SigParams;
use hammer_net::{SimClock, SimNetwork};
use parking_lot::{Mutex, RwLock};

/// Configuration of the simulated Fabric network.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Number of peer nodes (the paper uses 4 peers + 1 orderer).
    pub peers: usize,
    /// Endorser worker threads (one per peer by default).
    pub endorser_threads: usize,
    /// Simulated cost of endorsing one transaction (execute + sign).
    pub endorse_cost: Duration,
    /// Maximum transactions per block.
    pub max_batch: usize,
    /// Ordering batch timeout.
    pub batch_timeout: Duration,
    /// Simulated cost of validating/committing one transaction.
    pub validate_cost: Duration,
    /// Capacity of the endorsement inbox; beyond it submissions are
    /// rejected (the node-overload rejection seen in the paper's Fig. 10).
    pub inbox_capacity: usize,
    /// CPU the node spends turning away one over-capacity request
    /// (gRPC handling + error response). Overload is not free: heavy
    /// rejection traffic eats into endorsement capacity, which is what
    /// makes throughput *decline* past the saturation point in Fig. 10.
    pub reject_handling_cost: Duration,
    /// Whether endorsers verify client signatures.
    pub verify_signatures: bool,
    /// Signature scheme parameters.
    pub sig_params: SigParams,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            peers: 4,
            endorser_threads: 4,
            endorse_cost: Duration::from_millis(2),
            max_batch: 120,
            batch_timeout: Duration::from_millis(500),
            // Validation/commit is Fabric's structural bottleneck (ledger
            // writes + VSCC): ~4 ms/tx caps the chain near 250 TPS, the
            // peak the paper reports.
            validate_cost: Duration::from_millis(4),
            inbox_capacity: 10_000,
            reject_handling_cost: Duration::from_millis(1),
            verify_signatures: true,
            sig_params: SigParams::fast(),
        }
    }
}

/// Activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    /// Blocks committed.
    pub blocks: u64,
    /// Transactions committed successfully.
    pub committed: u64,
    /// Transactions invalidated by MVCC conflicts.
    pub mvcc_conflicts: u64,
    /// Transactions that failed endorsement (execution error).
    pub endorse_failures: u64,
    /// Transactions dropped for bad signatures.
    pub bad_sig: u64,
    /// Submissions rejected because the inbox was full.
    pub rejected_overload: u64,
}

struct Inner {
    config: FabricConfig,
    clock: SimClock,
    net: SimNetwork,
    ledger: RwLock<Ledger>,
    state: Mutex<VersionedState>,
    bus: CommitBus,
    shutdown: AtomicBool,
    pending_ids: Mutex<HashSet<TxId>>,
    endorse_tx: Sender<SignedTransaction>,
    /// Rejected requests whose handling cost the endorser pool still owes.
    reject_debt: AtomicU64,
    blocks: AtomicU64,
    committed: AtomicU64,
    mvcc_conflicts: AtomicU64,
    endorse_failures: AtomicU64,
    bad_sig: AtomicU64,
    rejected_overload: AtomicU64,
}

/// Handle to a running Fabric simulation.
pub struct FabricSim {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FabricSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricSim")
            .field("height", &self.inner.ledger.read().height())
            .field("stats", &self.stats())
            .finish()
    }
}

/// An endorsed transaction waiting for ordering.
struct Endorsed {
    tx_id: TxId,
    /// `None` = endorsement failed (still ordered, marked invalid).
    rwset: Option<RwSet>,
}

impl FabricSim {
    fn peer_name(i: usize) -> String {
        format!("fabric-peer-{i}")
    }

    /// Starts the network: endorser pool, orderer, committer, peers.
    pub fn start(config: FabricConfig, clock: SimClock, net: SimNetwork) -> Arc<Self> {
        assert!(config.peers >= 1 && config.endorser_threads >= 1);
        let (endorse_tx, endorse_rx) = bounded::<SignedTransaction>(config.inbox_capacity);
        let (ordered_tx, ordered_rx) = bounded::<Endorsed>(config.inbox_capacity.max(1024));
        let (block_tx, block_rx) = bounded::<Vec<Endorsed>>(64);

        let inner = Arc::new(Inner {
            config,
            clock,
            net,
            ledger: RwLock::new(Ledger::new()),
            state: Mutex::new(VersionedState::new()),
            bus: CommitBus::new(),
            shutdown: AtomicBool::new(false),
            pending_ids: Mutex::new(HashSet::new()),
            endorse_tx,
            reject_debt: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            mvcc_conflicts: AtomicU64::new(0),
            endorse_failures: AtomicU64::new(0),
            bad_sig: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
        });

        // Peer endpoints: consume block distribution traffic.
        inner.net.register("fabric-orderer");
        for i in 0..inner.config.peers {
            let endpoint = inner.net.register(&Self::peer_name(i));
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name(format!("fabric-peer-{i}"))
                .spawn(move || loop {
                    match endpoint.recv_timeout(Duration::from_millis(100)) {
                        Ok(_) => {}
                        Err(RecvTimeoutError::Timeout) => match weak.upgrade() {
                            Some(inner) => {
                                if inner.shutdown.load(Ordering::Relaxed) {
                                    return;
                                }
                            }
                            None => return,
                        },
                        Err(_) => return,
                    }
                })
                .expect("spawn peer thread");
        }

        // Endorser pool.
        for t in 0..inner.config.endorser_threads {
            let inner2 = Arc::clone(&inner);
            let rx = endorse_rx.clone();
            let out = ordered_tx.clone();
            std::thread::Builder::new()
                .name(format!("fabric-endorser-{t}"))
                .spawn(move || endorser_loop(inner2, rx, out))
                .expect("spawn endorser");
        }
        drop(ordered_tx);

        // Orderer.
        {
            let inner2 = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("fabric-orderer".to_owned())
                .spawn(move || orderer_loop(inner2, ordered_rx, block_tx))
                .expect("spawn orderer");
        }

        // Committer.
        {
            let inner2 = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("fabric-committer".to_owned())
                .spawn(move || committer_loop(inner2, block_rx))
                .expect("spawn committer");
        }

        Arc::new(FabricSim { inner })
    }

    /// Seeds an account directly into world state (genesis allocation).
    pub fn seed_account(&self, account: hammer_chain::types::Address, checking: u64, savings: u64) {
        self.inner
            .state
            .lock()
            .seed_account(account, checking, savings);
    }

    /// Reads an account's state.
    pub fn account(
        &self,
        account: hammer_chain::types::Address,
    ) -> Option<hammer_chain::state::AccountState> {
        self.inner.state.lock().get(account)
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            blocks: self.inner.blocks.load(Ordering::Relaxed),
            committed: self.inner.committed.load(Ordering::Relaxed),
            mvcc_conflicts: self.inner.mvcc_conflicts.load(Ordering::Relaxed),
            endorse_failures: self.inner.endorse_failures.load(Ordering::Relaxed),
            bad_sig: self.inner.bad_sig.load(Ordering::Relaxed),
            rejected_overload: self.inner.rejected_overload.load(Ordering::Relaxed),
        }
    }

    /// Verifies the internal hash chain (used by correctness audits).
    pub fn verify_ledger(&self) -> Result<(), hammer_chain::ledger::LedgerError> {
        self.inner.ledger.read().verify_chain()
    }
}

fn endorser_loop(inner: Arc<Inner>, rx: Receiver<SignedTransaction>, out: Sender<Endorsed>) {
    loop {
        // Pay for any requests the node turned away since the last pass:
        // rejection is not free for the endorsement pool.
        let owed = inner.reject_debt.swap(0, Ordering::Relaxed);
        if owed > 0 {
            inner
                .clock
                .sleep(inner.config.reject_handling_cost * owed.min(10_000) as u32);
        }
        let first = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(tx) => tx,
            Err(RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        // Greedily drain whatever burst is already queued so signature
        // checks run through the batch verifier (shared per-key tables)
        // instead of one full modexp per transaction. The drain is capped
        // at a pool share of a block so a deep queue is still endorsed by
        // every endorser thread in parallel — one thread swallowing a
        // whole block serialises its endorsement cost, which inflates
        // read-set staleness and MVCC conflicts downstream.
        let burst_cap = (inner.config.max_batch / inner.config.endorser_threads).max(8);
        let mut burst = vec![first];
        while burst.len() < burst_cap {
            match rx.try_recv() {
                Ok(tx) => burst.push(tx),
                Err(_) => break,
            }
        }
        if inner.config.verify_signatures {
            let verdicts = verify_signed_batch(&burst, &inner.config.sig_params);
            let mut verdicts = verdicts.iter();
            burst.retain(|tx| {
                let ok = *verdicts.next().expect("one verdict per tx");
                if !ok {
                    inner.bad_sig.fetch_add(1, Ordering::Relaxed);
                    inner.pending_ids.lock().remove(&tx.id);
                }
                ok
            });
        }
        // Per-burst (not per-tx) observability.
        let obs = inner.net.obs();
        if obs.enabled() {
            obs.registry()
                .counter_with("hammer_fabric_endorsed_total", &[("chain", "fabric-sim")])
                .add(burst.len() as u64);
        }
        for tx in burst {
            // Endorsement = simulated execution cost + rwset.
            inner.clock.sleep(inner.config.endorse_cost);
            let rwset = inner.state.lock().simulate(&tx.tx.op).ok();
            if rwset.is_none() {
                inner.endorse_failures.fetch_add(1, Ordering::Relaxed);
            }
            if out
                .send(Endorsed {
                    tx_id: tx.id,
                    rwset,
                })
                .is_err()
            {
                return;
            }
        }
    }
}

fn orderer_loop(inner: Arc<Inner>, rx: Receiver<Endorsed>, out: Sender<Vec<Endorsed>>) {
    let mut batch: Vec<Endorsed> = Vec::new();
    let mut batch_deadline: Option<std::time::Instant> = None;
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let wall_timeout = match batch_deadline {
            Some(deadline) => deadline
                .saturating_duration_since(std::time::Instant::now())
                .min(Duration::from_millis(100)),
            None => Duration::from_millis(100),
        };
        match rx.recv_timeout(wall_timeout) {
            Ok(endorsed) => {
                if batch.is_empty() {
                    batch_deadline = Some(
                        std::time::Instant::now() + inner.clock.to_wall(inner.config.batch_timeout),
                    );
                }
                batch.push(endorsed);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(_) => return,
        }
        let timed_out = batch_deadline
            .map(|d| std::time::Instant::now() >= d)
            .unwrap_or(false);
        // A crashed orderer cuts no blocks; endorsed transactions pile up
        // in the batch until the restart.
        if inner.net.node_crashed("fabric-orderer") {
            continue;
        }
        if batch.len() >= inner.config.max_batch || (timed_out && !batch.is_empty()) {
            let full = std::mem::take(&mut batch);
            batch_deadline = None;
            // Block distribution traffic: orderer -> every peer.
            let approx_size = 200 + full.len() * 150;
            for i in 0..inner.config.peers {
                let _ = inner.net.send(
                    "fabric-orderer",
                    &FabricSim::peer_name(i),
                    vec![0u8; approx_size],
                );
            }
            if out.send(full).is_err() {
                return;
            }
        }
    }
}

fn committer_loop(inner: Arc<Inner>, rx: Receiver<Vec<Endorsed>>) {
    loop {
        let batch = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(b) => b,
            Err(RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        // Validation cost for the whole block.
        inner
            .clock
            .sleep(inner.config.validate_cost * batch.len() as u32);
        let mut tx_ids = Vec::with_capacity(batch.len());
        let mut valid = Vec::with_capacity(batch.len());
        {
            let mut state = inner.state.lock();
            for endorsed in &batch {
                let ok = match &endorsed.rwset {
                    Some(rwset) => state.validate_and_commit(rwset),
                    None => false,
                };
                tx_ids.push(endorsed.tx_id);
                valid.push(ok);
                if ok {
                    inner.committed.fetch_add(1, Ordering::Relaxed);
                } else if endorsed.rwset.is_some() {
                    inner.mvcc_conflicts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        {
            let mut pending = inner.pending_ids.lock();
            for id in &tx_ids {
                pending.remove(id);
            }
        }
        let timestamp = inner.clock.now();
        let block = {
            let ledger = inner.ledger.read();
            Block::new(
                ledger.height() + 1,
                ledger.tip_hash(),
                timestamp,
                "fabric-orderer",
                0,
                tx_ids,
                valid,
            )
        };
        let events: Vec<CommitEvent> = block
            .entries()
            .map(|(tx_id, success)| CommitEvent {
                tx_id,
                success,
                block_height: block.header.height,
                shard: 0,
                committed_at: timestamp,
            })
            .collect();
        let height = block.header.height;
        let sealed_txs = block.len();
        inner
            .ledger
            .write()
            .append(block)
            .expect("committer builds sequential blocks");
        inner.blocks.fetch_add(1, Ordering::Relaxed);
        // Per-block observability; in-flight endorsement depth stands in
        // for a mempool on this EOV pipeline.
        let obs = inner.net.obs();
        if obs.enabled() {
            let labels = &[("chain", "fabric-sim")];
            let registry = obs.registry();
            registry
                .counter_with("hammer_chain_blocks_sealed_total", labels)
                .inc();
            registry
                .counter_with("hammer_chain_txs_sealed_total", labels)
                .add(sealed_txs as u64);
            registry
                .gauge_with("hammer_chain_mempool_depth", labels)
                .set(inner.pending_ids.lock().len() as u64);
            obs.journal()
                .block_seal(timestamp, "fabric-orderer", height, sealed_txs);
        }
        inner.bus.publish_all(&events);
    }
}

impl BlockchainClient for FabricSim {
    fn chain_name(&self) -> &str {
        "fabric-sim"
    }

    fn architecture(&self) -> Architecture {
        Architecture::NonSharded
    }

    fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError> {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return Err(ChainError::shutdown());
        }
        // Submissions land on the first endorsing peer; an outage there
        // surfaces as a transient error rather than silent acceptance.
        check_node_ingress(&self.inner.net, &Self::peer_name(0))?;
        let id = tx.id;
        {
            let mut pending = self.inner.pending_ids.lock();
            if !pending.insert(id) {
                return Err(ChainError::rejected(MempoolError::Duplicate));
            }
        }
        match self.inner.endorse_tx.try_send(tx) {
            Ok(()) => Ok(id),
            Err(_) => {
                self.inner.pending_ids.lock().remove(&id);
                self.inner.rejected_overload.fetch_add(1, Ordering::Relaxed);
                self.inner.reject_debt.fetch_add(1, Ordering::Relaxed);
                // Backpressure, not a verdict on the transaction: the
                // submitter may back off and retry.
                Err(ChainError::rejected(MempoolError::Full))
            }
        }
    }

    fn latest_height(&self, shard: u32) -> Result<u64, ChainError> {
        if shard != 0 {
            return Err(ChainError::unknown_shard(shard));
        }
        Ok(self.inner.ledger.read().height())
    }

    fn block_at(&self, shard: u32, height: u64) -> Result<Option<Block>, ChainError> {
        if shard != 0 {
            return Err(ChainError::unknown_shard(shard));
        }
        Ok(self.inner.ledger.read().block_at(height).cloned())
    }

    fn pending_txs(&self) -> Result<usize, ChainError> {
        Ok(self.inner.pending_ids.lock().len())
    }

    fn subscribe_commits(&self) -> Receiver<CommitEvent> {
        self.inner.bus.subscribe()
    }

    fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for FabricSim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::smallbank::Op;
    use hammer_chain::types::{Address, Transaction};
    use hammer_crypto::Keypair;
    use hammer_net::LinkConfig;

    fn fast_chain(mut config: FabricConfig) -> Arc<FabricSim> {
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        config.batch_timeout = Duration::from_millis(200);
        FabricSim::start(config, clock, net)
    }

    fn signed(nonce: u64, op: Op) -> SignedTransaction {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op,
            chain_name: "fabric-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
        }
        .sign(&Keypair::from_seed(2), &SigParams::fast())
    }

    fn wait_until(pred: impl Fn() -> bool, wall_ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(wall_ms);
        while std::time::Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn endorse_order_validate_commits() {
        let chain = fast_chain(FabricConfig::default());
        chain.seed_account(Address::from_name("a"), 100, 0);
        let id = chain
            .submit(signed(
                1,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 11,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().committed == 1, 5000));
        assert_eq!(
            chain.account(Address::from_name("a")).unwrap().checking,
            111
        );
        let height = chain.latest_height(0).unwrap();
        let mut found = false;
        for h in 1..=height {
            let b = chain.block_at(0, h).unwrap().unwrap();
            if let Some(pos) = b.tx_ids.iter().position(|t| *t == id) {
                assert!(b.valid[pos]);
                found = true;
            }
        }
        assert!(found);
        chain.shutdown();
    }

    #[test]
    fn conflicting_txs_are_invalidated() {
        // One endorser, batched together: both endorsed against the same
        // snapshot -> later ones conflict at validation.
        let chain = fast_chain(FabricConfig {
            endorser_threads: 1,
            max_batch: 10,
            ..FabricConfig::default()
        });
        chain.seed_account(Address::from_name("hot"), 1000, 0);
        for i in 0..5 {
            chain
                .submit(signed(
                    i,
                    Op::WriteCheck {
                        account: Address::from_name("hot"),
                        amount: 1,
                    },
                ))
                .unwrap();
        }
        assert!(wait_until(
            || {
                let s = chain.stats();
                s.committed + s.mvcc_conflicts >= 5
            },
            8000
        ));
        let s = chain.stats();
        assert!(s.mvcc_conflicts >= 1, "expected conflicts, got {s:?}");
        assert!(s.committed >= 1);
        chain.shutdown();
    }

    #[test]
    fn endorsement_failure_marked_invalid() {
        let chain = fast_chain(FabricConfig::default());
        let id = chain
            .submit(signed(
                1,
                Op::WriteCheck {
                    account: Address::from_name("ghost"),
                    amount: 1,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().endorse_failures == 1, 5000));
        assert!(wait_until(|| chain.latest_height(0).unwrap() >= 1, 5000));
        let b = chain.block_at(0, 1).unwrap().unwrap();
        let pos = b.tx_ids.iter().position(|t| *t == id).unwrap();
        assert!(!b.valid[pos]);
        chain.shutdown();
    }

    #[test]
    fn overload_rejection() {
        let chain = fast_chain(FabricConfig {
            inbox_capacity: 4,
            endorse_cost: Duration::from_secs(60), // endorsers stall
            ..FabricConfig::default()
        });
        chain.seed_account(Address::from_name("a"), 100, 0);
        let mut rejected = 0;
        for i in 0..50 {
            if let Err(err) = chain.submit(signed(
                i,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 1,
                },
            )) {
                // Overload is observable backpressure: retryable, not fatal.
                assert_eq!(err.kind(), hammer_chain::ErrorKind::Backpressure);
                assert!(err.is_retryable());
                rejected += 1;
            }
        }
        assert!(rejected > 0, "expected overload rejections");
        assert_eq!(chain.stats().rejected_overload, rejected);
        chain.shutdown();
    }

    #[test]
    fn duplicate_pending_rejected() {
        let chain = fast_chain(FabricConfig {
            endorse_cost: Duration::from_secs(60),
            ..FabricConfig::default()
        });
        let tx = signed(1, Op::KvGet { key: 1 });
        chain.submit(tx.clone()).unwrap();
        let err = chain.submit(tx).unwrap_err();
        assert_eq!(err.rejection(), Some(MempoolError::Duplicate));
        assert!(!err.is_retryable());
        chain.shutdown();
    }

    #[test]
    fn commit_events_fire_per_tx() {
        let chain = fast_chain(FabricConfig::default());
        let rx = chain.subscribe_commits();
        chain.seed_account(Address::from_name("a"), 100, 50);
        for i in 0..3 {
            chain
                .submit(signed(
                    i,
                    Op::Balance {
                        account: Address::from_name("a"),
                    },
                ))
                .unwrap();
        }
        let mut seen = 0;
        while seen < 3 {
            let event = rx.recv_timeout(Duration::from_secs(5)).expect("event");
            assert!(event.success);
            seen += 1;
        }
        chain.shutdown();
    }

    #[test]
    fn ledger_verifies_after_run() {
        let chain = fast_chain(FabricConfig::default());
        // Distinct accounts: concurrent endorsement must not conflict.
        for i in 0..40 {
            chain.seed_account(Address::from_name(&format!("a{i}")), 10_000, 0);
        }
        for i in 0..40 {
            let _ = chain.submit(signed(
                i,
                Op::DepositChecking {
                    account: Address::from_name(&format!("a{i}")),
                    amount: 1,
                },
            ));
        }
        assert!(wait_until(|| chain.stats().committed >= 40, 8000));
        chain.verify_ledger().unwrap();
        chain.shutdown();
    }

    #[test]
    fn batch_size_respected() {
        let chain = fast_chain(FabricConfig {
            max_batch: 5,
            ..FabricConfig::default()
        });
        for i in 0..23 {
            chain.seed_account(Address::from_name(&format!("b{i}")), 10_000, 0);
        }
        for i in 0..23 {
            let _ = chain.submit(signed(
                i,
                Op::DepositChecking {
                    account: Address::from_name(&format!("b{i}")),
                    amount: 1,
                },
            ));
        }
        assert!(wait_until(|| chain.stats().committed >= 23, 8000));
        for h in 1..=chain.latest_height(0).unwrap() {
            let b = chain.block_at(0, h).unwrap().unwrap();
            assert!(b.len() <= 5);
        }
        chain.shutdown();
    }

    #[test]
    fn pending_count_drains() {
        let chain = fast_chain(FabricConfig::default());
        for i in 0..10 {
            chain.seed_account(Address::from_name(&format!("c{i}")), 10_000, 0);
        }
        for i in 0..10 {
            let _ = chain.submit(signed(
                i,
                Op::DepositChecking {
                    account: Address::from_name(&format!("c{i}")),
                    amount: 1,
                },
            ));
        }
        assert!(wait_until(|| chain.pending_txs().unwrap() == 0, 8000));
        chain.shutdown();
    }
}
