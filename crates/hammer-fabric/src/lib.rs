//! A Hyperledger-Fabric-style execute-order-validate blockchain simulator.
//!
//! Reproduces the performance-relevant mechanics of a permissioned Fabric
//! network (the paper's primary correctness/usability target, §V-C/V-D):
//!
//! * **Endorsement** — a pool of endorser threads *simulates* each
//!   transaction against current state, producing a read/write set
//!   ([`hammer_chain::state::RwSet`]) without committing.
//! * **Ordering** — an orderer thread batches endorsed transactions into
//!   blocks by count ([`FabricConfig::max_batch`]) or timeout
//!   ([`FabricConfig::batch_timeout`]), like a Raft ordering service.
//! * **Validation (MVCC)** — a committer thread re-checks every read
//!   version and marks conflicting transactions invalid *inside the block*
//!   (Fabric commits invalid transactions with a validation-failure flag;
//!   they are visible on the ledger). Conflicts grow with client
//!   concurrency on hot accounts, which is exactly the effect behind the
//!   paper's Fig. 10.
//! * **Block distribution** — sealed blocks are pushed from the orderer to
//!   the peer endpoints over the simulated network.
//!
//! Node scaffolding (thread lifecycle, ingress gating, sealed-block
//! accounting) comes from the [`hammer_chain::kernel`]. Unlike the
//! epoch-driven sims, Fabric's [`ConsensusPolicy`] does not use the
//! kernel's sealer loop: the endorse → order → validate pipeline runs as
//! policy workers, and the committer seals through
//! [`hammer_chain::kernel::Kernel::seal_block`] when a validated batch is
//! ready.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use hammer_chain::client::ChainError;
use hammer_chain::impl_sim_handle;
use hammer_chain::kernel::{
    ChainNode, ConsensusPolicy, Kernel, NodeKernelBuilder, Round, SimChain, Worker,
};
use hammer_chain::mempool::MempoolError;
use hammer_chain::state::RwSet;
use hammer_chain::types::{SignedTransaction, TxId};
use hammer_crypto::sig::SigParams;
use hammer_net::{SimClock, SimNetwork};
use parking_lot::Mutex;

/// Configuration of the simulated Fabric network.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Number of peer nodes (the paper uses 4 peers + 1 orderer).
    pub peers: usize,
    /// Endorser worker threads (one per peer by default).
    pub endorser_threads: usize,
    /// Simulated cost of endorsing one transaction (execute + sign).
    pub endorse_cost: Duration,
    /// Maximum transactions per block.
    pub max_batch: usize,
    /// Ordering batch timeout.
    pub batch_timeout: Duration,
    /// Simulated cost of validating/committing one transaction.
    pub validate_cost: Duration,
    /// Capacity of the endorsement inbox; beyond it submissions are
    /// rejected (the node-overload rejection seen in the paper's Fig. 10).
    pub inbox_capacity: usize,
    /// CPU the node spends turning away one over-capacity request
    /// (gRPC handling + error response). Overload is not free: heavy
    /// rejection traffic eats into endorsement capacity, which is what
    /// makes throughput *decline* past the saturation point in Fig. 10.
    pub reject_handling_cost: Duration,
    /// Whether endorsers verify client signatures.
    pub verify_signatures: bool,
    /// Signature scheme parameters.
    pub sig_params: SigParams,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            peers: 4,
            endorser_threads: 4,
            endorse_cost: Duration::from_millis(2),
            max_batch: 120,
            batch_timeout: Duration::from_millis(500),
            // Validation/commit is Fabric's structural bottleneck (ledger
            // writes + VSCC): ~4 ms/tx caps the chain near 250 TPS, the
            // peak the paper reports.
            validate_cost: Duration::from_millis(4),
            inbox_capacity: 10_000,
            reject_handling_cost: Duration::from_millis(1),
            verify_signatures: true,
            sig_params: SigParams::fast(),
        }
    }
}

/// Activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    /// Blocks committed.
    pub blocks: u64,
    /// Transactions committed successfully.
    pub committed: u64,
    /// Transactions invalidated by MVCC conflicts.
    pub mvcc_conflicts: u64,
    /// Transactions that failed endorsement (execution error).
    pub endorse_failures: u64,
    /// Transactions dropped for bad signatures.
    pub bad_sig: u64,
    /// Submissions rejected because the inbox was full.
    pub rejected_overload: u64,
}

/// An endorsed transaction waiting for ordering.
struct Endorsed {
    tx_id: TxId,
    /// `None` = endorsement failed (still ordered, marked invalid).
    rwset: Option<RwSet>,
}

fn peer_name(i: usize) -> String {
    format!("fabric-peer-{i}")
}

/// The execute-order-validate consensus core: an endorsement inbox with
/// overload rejection, and the endorser/orderer/committer pipeline run as
/// kernel workers.
pub struct FabricPolicy {
    config: FabricConfig,
    endorse_tx: Sender<SignedTransaction>,
    endorse_rx: Receiver<SignedTransaction>,
    pending_ids: Mutex<HashSet<TxId>>,
    /// Rejected requests whose handling cost the endorser pool still owes.
    reject_debt: AtomicU64,
    mvcc_conflicts: AtomicU64,
    endorse_failures: AtomicU64,
    rejected_overload: AtomicU64,
}

impl ConsensusPolicy for FabricPolicy {
    fn chain_name(&self) -> &'static str {
        "fabric-sim"
    }

    /// Submissions land on the first endorsing peer; an outage there
    /// surfaces as a transient error rather than silent acceptance.
    fn ingress_node(&self, _shard: u32) -> String {
        peer_name(0)
    }

    /// The orderer cuts the blocks; its crash halts sealing.
    fn sealer_node(&self, _shard: u32) -> String {
        "fabric-orderer".to_owned()
    }

    /// The EOV pipeline has its own inbox, not the kernel mempool.
    fn admit(
        &self,
        _kernel: &Kernel,
        _shard: u32,
        tx: SignedTransaction,
    ) -> Result<TxId, ChainError> {
        let id = tx.id;
        {
            let mut pending = self.pending_ids.lock();
            if !pending.insert(id) {
                return Err(ChainError::rejected(MempoolError::Duplicate));
            }
        }
        match self.endorse_tx.try_send(tx) {
            Ok(()) => Ok(id),
            Err(_) => {
                self.pending_ids.lock().remove(&id);
                self.rejected_overload.fetch_add(1, Ordering::Relaxed);
                self.reject_debt.fetch_add(1, Ordering::Relaxed);
                // Backpressure, not a verdict on the transaction: the
                // submitter may back off and retry.
                Err(ChainError::rejected(MempoolError::Full))
            }
        }
    }

    fn pending(&self, _kernel: &Kernel) -> usize {
        self.pending_ids.lock().len()
    }

    /// Blocks are cut by the committer worker, not a kernel sealer loop.
    fn drives_sealer(&self) -> bool {
        false
    }

    fn workers(self: &Arc<Self>, kernel: &Arc<Kernel>) -> Vec<Worker> {
        let (ordered_tx, ordered_rx) = bounded::<Endorsed>(self.config.inbox_capacity.max(1024));
        let (block_tx, block_rx) = bounded::<Vec<Endorsed>>(64);
        let mut workers = Vec::new();
        for t in 0..self.config.endorser_threads {
            let policy = Arc::clone(self);
            let kernel = Arc::clone(kernel);
            let rx = self.endorse_rx.clone();
            let out = ordered_tx.clone();
            workers.push(Worker::new(format!("fabric-endorser-{t}"), move || {
                endorser_loop(policy, kernel, rx, out)
            }));
        }
        drop(ordered_tx);
        {
            let policy = Arc::clone(self);
            let kernel = Arc::clone(kernel);
            workers.push(Worker::new("fabric-orderer", move || {
                orderer_loop(policy, kernel, ordered_rx, block_tx)
            }));
        }
        {
            let policy = Arc::clone(self);
            let kernel = Arc::clone(kernel);
            workers.push(Worker::new("fabric-committer", move || {
                committer_loop(policy, kernel, block_rx)
            }));
        }
        workers
    }
}

fn endorser_loop(
    policy: Arc<FabricPolicy>,
    kernel: Arc<Kernel>,
    rx: Receiver<SignedTransaction>,
    out: Sender<Endorsed>,
) {
    let config = &policy.config;
    loop {
        // Pay for any requests the node turned away since the last pass:
        // rejection is not free for the endorsement pool.
        let owed = policy.reject_debt.swap(0, Ordering::Relaxed);
        if owed > 0
            && !kernel.sleep_interruptible(config.reject_handling_cost * owed.min(10_000) as u32)
        {
            return;
        }
        let first = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(tx) => tx,
            Err(RecvTimeoutError::Timeout) => {
                if kernel.is_shutdown() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        // Greedily drain whatever burst is already queued so signature
        // checks run through the batch verifier (shared per-key tables)
        // instead of one full modexp per transaction. The drain is capped
        // at a pool share of a block so a deep queue is still endorsed by
        // every endorser thread in parallel — one thread swallowing a
        // whole block serialises its endorsement cost, which inflates
        // read-set staleness and MVCC conflicts downstream.
        let burst_cap = (config.max_batch / config.endorser_threads).max(8);
        let mut burst = vec![first];
        while burst.len() < burst_cap {
            match rx.try_recv() {
                Ok(tx) => burst.push(tx),
                Err(_) => break,
            }
        }
        if config.verify_signatures {
            kernel.verify_retain_with(&mut burst, &config.sig_params, |tx| {
                policy.pending_ids.lock().remove(&tx.id);
            });
        }
        // Per-burst (not per-tx) observability.
        let obs = kernel.net().obs();
        if obs.enabled() {
            obs.registry()
                .counter_with("hammer_fabric_endorsed_total", &[("chain", "fabric-sim")])
                .add(burst.len() as u64);
        }
        for tx in burst {
            // Endorsement = simulated execution cost + rwset. The sleep is
            // interruptible so a shutdown mid-burst (or under an hour-long
            // conformance stall) joins promptly instead of serving out the
            // remaining endorsements.
            if !kernel.sleep_interruptible(config.endorse_cost) {
                return;
            }
            let rwset = kernel.shard(0).state.lock().simulate(&tx.tx.op).ok();
            if rwset.is_none() {
                policy.endorse_failures.fetch_add(1, Ordering::Relaxed);
            }
            if out
                .send(Endorsed {
                    tx_id: tx.id,
                    rwset,
                })
                .is_err()
            {
                return;
            }
        }
    }
}

fn orderer_loop(
    policy: Arc<FabricPolicy>,
    kernel: Arc<Kernel>,
    rx: Receiver<Endorsed>,
    out: Sender<Vec<Endorsed>>,
) {
    let config = &policy.config;
    let peers: Vec<String> = (0..config.peers).map(peer_name).collect();
    let mut batch: Vec<Endorsed> = Vec::new();
    let mut batch_deadline: Option<std::time::Instant> = None;
    loop {
        if kernel.is_shutdown() {
            return;
        }
        let wall_timeout = match batch_deadline {
            Some(deadline) => deadline
                .saturating_duration_since(std::time::Instant::now())
                .min(Duration::from_millis(100)),
            None => Duration::from_millis(100),
        };
        match rx.recv_timeout(wall_timeout) {
            Ok(endorsed) => {
                if batch.is_empty() {
                    batch_deadline = Some(
                        std::time::Instant::now() + kernel.clock().to_wall(config.batch_timeout),
                    );
                }
                batch.push(endorsed);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(_) => return,
        }
        let timed_out = batch_deadline
            .map(|d| std::time::Instant::now() >= d)
            .unwrap_or(false);
        // A crashed orderer cuts no blocks; endorsed transactions pile up
        // in the batch until the restart.
        if kernel.net().node_crashed("fabric-orderer") {
            continue;
        }
        if batch.len() >= config.max_batch || (timed_out && !batch.is_empty()) {
            let full = std::mem::take(&mut batch);
            batch_deadline = None;
            // Block distribution traffic: orderer -> every peer, sent at
            // ordering time (before validation), as Fabric delivers raw
            // blocks to peers for local validation.
            kernel.gossip("fabric-orderer", &peers, full.len());
            if out.send(full).is_err() {
                return;
            }
        }
    }
}

fn committer_loop(policy: Arc<FabricPolicy>, kernel: Arc<Kernel>, rx: Receiver<Vec<Endorsed>>) {
    let config = &policy.config;
    loop {
        let batch = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(b) => b,
            Err(RecvTimeoutError::Timeout) => {
                if kernel.is_shutdown() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        // Validation cost for the whole block.
        kernel
            .clock()
            .sleep(config.validate_cost * batch.len() as u32);
        let mut tx_ids = Vec::with_capacity(batch.len());
        let mut valid = Vec::with_capacity(batch.len());
        {
            let mut state = kernel.shard(0).state.lock();
            for endorsed in &batch {
                let ok = match &endorsed.rwset {
                    Some(rwset) => state.validate_and_commit(rwset),
                    None => false,
                };
                tx_ids.push(endorsed.tx_id);
                valid.push(ok);
                if !ok && endorsed.rwset.is_some() {
                    policy.mvcc_conflicts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let depth = {
            let mut pending = policy.pending_ids.lock();
            for id in &tx_ids {
                pending.remove(id);
            }
            pending.len()
        };
        // Distribution already happened at ordering time; in-flight
        // endorsement depth stands in for a mempool on this EOV pipeline.
        kernel.seal_block(
            0,
            Round {
                proposer: "fabric-orderer".to_owned(),
                tx_ids,
                valid,
                gossip_to: Vec::new(),
                mempool_depth: Some(depth),
            },
        );
    }
}

/// Handle to a running Fabric simulation.
pub struct FabricSim {
    node: Arc<ChainNode<FabricPolicy>>,
}

impl_sim_handle!(FabricSim);

impl FabricSim {
    /// Starts the network: endorser pool, orderer, committer, peers.
    pub fn start(config: FabricConfig, clock: SimClock, net: SimNetwork) -> Arc<Self> {
        assert!(config.peers >= 1 && config.endorser_threads >= 1);
        let (endorse_tx, endorse_rx) = bounded::<SignedTransaction>(config.inbox_capacity);
        let mut builder = NodeKernelBuilder::new(clock, net)
            .gossip_sizing(200, 150)
            .endpoint("fabric-orderer");
        for i in 0..config.peers {
            builder = builder.sink_endpoint(&peer_name(i));
        }
        let node = builder.start(FabricPolicy {
            config,
            endorse_tx,
            endorse_rx,
            pending_ids: Mutex::new(HashSet::new()),
            reject_debt: AtomicU64::new(0),
            mvcc_conflicts: AtomicU64::new(0),
            endorse_failures: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
        });
        Arc::new(FabricSim { node })
    }

    /// Seeds an account directly into world state (genesis allocation).
    pub fn seed_account(&self, account: hammer_chain::types::Address, checking: u64, savings: u64) {
        SimChain::seed_account(&*self.node, account, checking, savings);
    }

    /// Reads an account's state.
    pub fn account(
        &self,
        account: hammer_chain::types::Address,
    ) -> Option<hammer_chain::state::AccountState> {
        SimChain::account(&*self.node, account)
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> FabricStats {
        let stats = self.node.stats();
        let policy = self.node.policy();
        FabricStats {
            blocks: stats.blocks,
            committed: stats.committed,
            mvcc_conflicts: policy.mvcc_conflicts.load(Ordering::Relaxed),
            endorse_failures: policy.endorse_failures.load(Ordering::Relaxed),
            bad_sig: stats.bad_sig,
            rejected_overload: policy.rejected_overload.load(Ordering::Relaxed),
        }
    }

    /// Verifies the internal hash chain (used by correctness audits).
    pub fn verify_ledger(&self) -> Result<(), hammer_chain::ledger::LedgerError> {
        SimChain::verify_ledgers(&*self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::client::BlockchainClient;
    use hammer_chain::smallbank::Op;
    use hammer_chain::types::{Address, Transaction};
    use hammer_crypto::Keypair;
    use hammer_net::LinkConfig;

    fn fast_chain(mut config: FabricConfig) -> Arc<FabricSim> {
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        config.batch_timeout = Duration::from_millis(200);
        FabricSim::start(config, clock, net)
    }

    fn signed(nonce: u64, op: Op) -> SignedTransaction {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op,
            chain_name: "fabric-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
        }
        .sign(&Keypair::from_seed(2), &SigParams::fast())
    }

    fn wait_until(pred: impl Fn() -> bool, wall_ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(wall_ms);
        while std::time::Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn endorse_order_validate_commits() {
        let chain = fast_chain(FabricConfig::default());
        chain.seed_account(Address::from_name("a"), 100, 0);
        let id = chain
            .submit(signed(
                1,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 11,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().committed == 1, 5000));
        assert_eq!(
            chain.account(Address::from_name("a")).unwrap().checking,
            111
        );
        let height = chain.latest_height(0).unwrap();
        let mut found = false;
        for h in 1..=height {
            let b = chain.block_at(0, h).unwrap().unwrap();
            if let Some(pos) = b.tx_ids.iter().position(|t| *t == id) {
                assert!(b.valid[pos]);
                found = true;
            }
        }
        assert!(found);
        chain.shutdown();
    }

    #[test]
    fn conflicting_txs_are_invalidated() {
        // One endorser, batched together: both endorsed against the same
        // snapshot -> later ones conflict at validation.
        let chain = fast_chain(FabricConfig {
            endorser_threads: 1,
            max_batch: 10,
            ..FabricConfig::default()
        });
        chain.seed_account(Address::from_name("hot"), 1000, 0);
        for i in 0..5 {
            chain
                .submit(signed(
                    i,
                    Op::WriteCheck {
                        account: Address::from_name("hot"),
                        amount: 1,
                    },
                ))
                .unwrap();
        }
        assert!(wait_until(
            || {
                let s = chain.stats();
                s.committed + s.mvcc_conflicts >= 5
            },
            8000
        ));
        let s = chain.stats();
        assert!(s.mvcc_conflicts >= 1, "expected conflicts, got {s:?}");
        assert!(s.committed >= 1);
        chain.shutdown();
    }

    #[test]
    fn endorsement_failure_marked_invalid() {
        let chain = fast_chain(FabricConfig::default());
        let id = chain
            .submit(signed(
                1,
                Op::WriteCheck {
                    account: Address::from_name("ghost"),
                    amount: 1,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().endorse_failures == 1, 5000));
        assert!(wait_until(|| chain.latest_height(0).unwrap() >= 1, 5000));
        let b = chain.block_at(0, 1).unwrap().unwrap();
        let pos = b.tx_ids.iter().position(|t| *t == id).unwrap();
        assert!(!b.valid[pos]);
        chain.shutdown();
    }

    #[test]
    fn overload_rejection() {
        let chain = fast_chain(FabricConfig {
            inbox_capacity: 4,
            endorse_cost: Duration::from_secs(60), // endorsers stall
            ..FabricConfig::default()
        });
        chain.seed_account(Address::from_name("a"), 100, 0);
        let mut rejected = 0;
        for i in 0..50 {
            if let Err(err) = chain.submit(signed(
                i,
                Op::DepositChecking {
                    account: Address::from_name("a"),
                    amount: 1,
                },
            )) {
                // Overload is observable backpressure: retryable, not fatal.
                assert_eq!(err.kind(), hammer_chain::ErrorKind::Backpressure);
                assert!(err.is_retryable());
                rejected += 1;
            }
        }
        assert!(rejected > 0, "expected overload rejections");
        assert_eq!(chain.stats().rejected_overload, rejected);
        chain.shutdown();
    }

    #[test]
    fn duplicate_pending_rejected() {
        let chain = fast_chain(FabricConfig {
            endorse_cost: Duration::from_secs(60),
            ..FabricConfig::default()
        });
        let tx = signed(1, Op::KvGet { key: 1 });
        chain.submit(tx.clone()).unwrap();
        let err = chain.submit(tx).unwrap_err();
        assert_eq!(err.rejection(), Some(MempoolError::Duplicate));
        assert!(!err.is_retryable());
        chain.shutdown();
    }

    #[test]
    fn commit_events_fire_per_tx() {
        let chain = fast_chain(FabricConfig::default());
        let rx = chain.subscribe_commits();
        chain.seed_account(Address::from_name("a"), 100, 50);
        for i in 0..3 {
            chain
                .submit(signed(
                    i,
                    Op::Balance {
                        account: Address::from_name("a"),
                    },
                ))
                .unwrap();
        }
        let mut seen = 0;
        while seen < 3 {
            let event = rx.recv_timeout(Duration::from_secs(5)).expect("event");
            assert!(event.success);
            seen += 1;
        }
        chain.shutdown();
    }

    #[test]
    fn ledger_verifies_after_run() {
        let chain = fast_chain(FabricConfig::default());
        // Distinct accounts: concurrent endorsement must not conflict.
        for i in 0..40 {
            chain.seed_account(Address::from_name(&format!("a{i}")), 10_000, 0);
        }
        for i in 0..40 {
            let _ = chain.submit(signed(
                i,
                Op::DepositChecking {
                    account: Address::from_name(&format!("a{i}")),
                    amount: 1,
                },
            ));
        }
        assert!(wait_until(|| chain.stats().committed >= 40, 8000));
        chain.verify_ledger().unwrap();
        chain.shutdown();
    }

    #[test]
    fn batch_size_respected() {
        let chain = fast_chain(FabricConfig {
            max_batch: 5,
            ..FabricConfig::default()
        });
        for i in 0..23 {
            chain.seed_account(Address::from_name(&format!("b{i}")), 10_000, 0);
        }
        for i in 0..23 {
            let _ = chain.submit(signed(
                i,
                Op::DepositChecking {
                    account: Address::from_name(&format!("b{i}")),
                    amount: 1,
                },
            ));
        }
        assert!(wait_until(|| chain.stats().committed >= 23, 8000));
        for h in 1..=chain.latest_height(0).unwrap() {
            let b = chain.block_at(0, h).unwrap().unwrap();
            assert!(b.len() <= 5);
        }
        chain.shutdown();
    }

    #[test]
    fn pending_count_drains() {
        let chain = fast_chain(FabricConfig::default());
        for i in 0..10 {
            chain.seed_account(Address::from_name(&format!("c{i}")), 10_000, 0);
        }
        for i in 0..10 {
            let _ = chain.submit(signed(
                i,
                Op::DepositChecking {
                    account: Address::from_name(&format!("c{i}")),
                    amount: 1,
                },
            ));
        }
        assert!(wait_until(|| chain.pending_txs().unwrap() == 0, 8000));
        chain.shutdown();
    }

    #[test]
    fn reports_roles_for_fault_targeting() {
        let chain = fast_chain(FabricConfig::default());
        assert_eq!(SimChain::ingress_nodes(&*chain), vec!["fabric-peer-0"]);
        assert_eq!(SimChain::sealer_nodes(&*chain), vec!["fabric-orderer"]);
        chain.shutdown();
    }
}
