//! A from-scratch JSON value model, parser, and serializer (RFC 8259).
//!
//! Object keys preserve insertion order (a `Vec` of pairs) so serialised
//! payloads are deterministic, which matters for signing.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Maximum nesting depth [`Value::parse`] accepts before returning a
/// [`JsonError`]. Bounds stack use on adversarial inputs like `[[[[…]]]]`.
pub const MAX_PARSE_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integral number that fits in `i64` (kept exact).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Errors produced by [`Value::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        if v <= i64::MAX as u64 {
            Value::Int(v as i64)
        } else {
            Value::Float(v as f64)
        }
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl Value {
    /// Builds an object from key/value pairs.
    ///
    /// ```
    /// use hammer_rpc::json::Value;
    /// let obj = Value::object([("a", Value::from(1)), ("b", Value::from(true))]);
    /// assert_eq!(obj.get("a"), Some(&Value::Int(1)));
    /// ```
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Self {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array; `None` out of range or for non-arrays.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialises to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.to_json_into(&mut out);
        out
    }

    /// Serialises to compact JSON text, appending to a caller-supplied
    /// buffer. Hot paths call `buf.clear()` and reuse one buffer across
    /// messages, so steady-state encoding allocates nothing.
    pub fn to_json_into(&self, out: &mut String) {
        self.write_json(out);
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(v) => {
                // Format into a stack buffer: no transient String per number.
                let mut buf = itoa_buf();
                out.push_str(itoa(*v, &mut buf));
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Ensure floats round-trip as floats. Formatting goes
                    // straight into `out`; the suffix check looks at the
                    // bytes just written.
                    let start = out.len();
                    write!(out, "{f}").expect("writing to String cannot fail");
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value.
    ///
    /// ```
    /// use hammer_rpc::json::Value;
    /// let v = Value::parse(r#"{"n": 42, "xs": [1, 2.5, "three"]}"#).unwrap();
    /// assert_eq!(v.get("n").unwrap().as_i64(), Some(42));
    /// assert_eq!(v.get("xs").unwrap().at(2).unwrap().as_str(), Some("three"));
    /// ```
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        Value::parse_bytes(input.as_bytes())
    }

    /// Parses JSON from raw bytes (e.g. a reused transport receive buffer),
    /// avoiding an up-front UTF-8 pass over the whole input: the parser is
    /// byte-oriented and only validates UTF-8 inside string literals.
    ///
    /// Nesting deeper than [`MAX_PARSE_DEPTH`] is rejected with an error
    /// rather than overflowing the stack.
    pub fn parse_bytes(input: &[u8]) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input,
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Canonical form: object keys sorted recursively, for stable hashing.
    pub fn canonicalize(&self) -> Value {
        match self {
            Value::Array(items) => Value::Array(items.iter().map(Value::canonicalize).collect()),
            Value::Object(pairs) => {
                let map: BTreeMap<&String, &Value> = pairs.iter().map(|(k, v)| (k, v)).collect();
                Value::Object(
                    map.into_iter()
                        .map(|(k, v)| (k.clone(), v.canonicalize()))
                        .collect(),
                )
            }
            other => other.clone(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Stack buffer sized for any `i64` in decimal (19 digits + sign).
fn itoa_buf() -> [u8; 20] {
    [0; 20]
}

/// Formats `v` into `buf` and returns the textual slice, with no heap
/// allocation.
fn itoa(v: i64, buf: &mut [u8; 20]) -> &str {
    let mut magnitude = v.unsigned_abs();
    let mut pos = buf.len();
    loop {
        pos -= 1;
        buf[pos] = b'0' + (magnitude % 10) as u8;
        magnitude /= 10;
        if magnitude == 0 {
            break;
        }
    }
    if v < 0 {
        pos -= 1;
        buf[pos] = b'-';
    }
    std::str::from_utf8(&buf[pos..]).expect("decimal digits are ASCII")
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    // Copy maximal runs of bytes that need no escaping in one push_str;
    // every byte that does need escaping is ASCII, so slicing at those
    // positions always lands on char boundaries.
    let bytes = s.as_bytes();
    let mut run_start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: Option<&str> = match b {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            0x08 => Some("\\b"),
            0x0c => Some("\\f"),
            b if b < 0x20 => None, // rare control chars: \uXXXX below
            _ => continue,
        };
        out.push_str(&s[run_start..i]);
        match escape {
            Some(esc) => out.push_str(esc),
            None => write!(out, "\\u{:04x}", b).expect("writing to String cannot fail"),
        }
        run_start = i + 1;
    }
    out.push_str(&s[run_start..]);
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("number out of range"))
    }

    /// Appends `bytes[run_start..self.pos]` to `out` after one UTF-8
    /// validation pass over the run.
    fn push_run(&self, out: &mut String, run_start: usize) -> Result<(), JsonError> {
        if run_start < self.pos {
            let run = std::str::from_utf8(&self.bytes[run_start..self.pos])
                .map_err(|_| self.err("invalid UTF-8"))?;
            out.push_str(run);
        }
        Ok(())
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Unescaped content is copied in maximal runs (one validation +
        // one memcpy per run), not char-by-char. Every byte that ends a
        // run (quote, backslash, control) is ASCII, so run boundaries are
        // always UTF-8 sequence boundaries.
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.push_run(&mut out, run_start)?;
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.push_run(&mut out, run_start)?;
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..=0xDBFF).contains(&cp) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..=0xDFFF).contains(&cp) {
                                return Err(self.err("unexpected low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            run_start = self.pos; // parse_hex4 already advanced
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                    run_start = self.pos;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => self.pos += 1, // part of the current run
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            Err(self.err("nesting depth limit exceeded"))
        } else {
            Ok(())
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("3.5").unwrap(), Value::Float(3.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::from("hi"));
    }

    #[test]
    fn parse_nested() {
        let v = Value::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().at(0).unwrap().as_i64(), Some(1));
        assert!(v
            .get("a")
            .unwrap()
            .at(1)
            .unwrap()
            .get("b")
            .unwrap()
            .is_null());
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn parse_string_escapes() {
        let v = Value::parse(r#""a\nb\t\"q\" \\ A é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nb\t\"q\" \\ A é"));
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = Value::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn reject_invalid() {
        for bad in [
            "",
            "tru",
            "nul",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "[1 2]",
            "{\"a\":1,}",
            "\"\\x\"",
            "42 43",
            "\"\\ud800\"", // lone high surrogate
        ] {
            assert!(Value::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn serialize_escapes() {
        let v = Value::from("line1\nline2\t\"q\"\\");
        let text = v.to_json();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn serialize_float_roundtrips_as_float() {
        let v = Value::Float(2.0);
        let text = v.to_json();
        assert_eq!(text, "2.0");
        assert_eq!(Value::parse(&text).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn big_integers_stay_exact() {
        let v = Value::parse("9223372036854775807").unwrap();
        assert_eq!(v, Value::Int(i64::MAX));
        // Larger than i64: becomes float.
        let v = Value::parse("92233720368547758080").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Value::object([("z", Value::from(1)), ("a", Value::from(2))]);
        assert_eq!(v.to_json(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn canonicalize_sorts_keys() {
        let v = Value::object([
            ("z", Value::from(1)),
            (
                "a",
                Value::object([("y", Value::from(2)), ("b", Value::from(3))]),
            ),
        ]);
        assert_eq!(v.canonicalize().to_json(), r#"{"a":{"b":3,"y":2},"z":1}"#);
    }

    #[test]
    fn accessors_on_wrong_types() {
        let v = Value::from(5);
        assert_eq!(v.as_str(), None);
        assert_eq!(v.get("k"), None);
        assert_eq!(v.at(0), None);
        assert_eq!(v.as_bool(), None);
        assert_eq!(Value::from("x").as_i64(), None);
    }

    #[test]
    fn deep_nesting_returns_error_not_overflow() {
        // Arrays, objects, and a mixed tower all hit the depth limit.
        let deep_array = "[".repeat(4096) + &"]".repeat(4096);
        let err = Value::parse(&deep_array).unwrap_err();
        assert!(err.message.contains("depth"), "{err}");

        let deep_object = "{\"k\":".repeat(4096) + "1" + &"}".repeat(4096);
        assert!(Value::parse(&deep_object).is_err());

        let mixed = "[{\"k\":".repeat(2048) + "1" + &"}]".repeat(2048);
        assert!(Value::parse(&mixed).is_err());
    }

    #[test]
    fn nesting_below_limit_is_accepted() {
        let depth = MAX_PARSE_DEPTH - 1;
        let ok = "[".repeat(depth) + &"]".repeat(depth);
        assert!(Value::parse(&ok).is_ok());
        let too_deep = "[".repeat(MAX_PARSE_DEPTH + 1) + &"]".repeat(MAX_PARSE_DEPTH + 1);
        assert!(Value::parse(&too_deep).is_err());
    }

    #[test]
    fn parse_bytes_matches_parse() {
        let text = r#"{"a": [1, 2.5, "é😀\n"], "b": null}"#;
        assert_eq!(
            Value::parse_bytes(text.as_bytes()).unwrap(),
            Value::parse(text).unwrap()
        );
        // Invalid UTF-8 inside a string literal is rejected.
        assert!(Value::parse_bytes(b"\"\xff\xfe\"").is_err());
        // ...and outside string literals too.
        assert!(Value::parse_bytes(b"\xff").is_err());
    }

    #[test]
    fn to_json_into_appends_to_buffer() {
        let v = Value::object([("k", Value::from(1))]);
        let mut buf = String::from("prefix:");
        v.to_json_into(&mut buf);
        assert_eq!(buf, "prefix:{\"k\":1}");
        buf.clear();
        v.to_json_into(&mut buf);
        assert_eq!(buf, v.to_json());
    }

    #[test]
    fn itoa_formats_extremes() {
        for v in [0i64, 1, -1, 42, -9, i64::MAX, i64::MIN] {
            let mut buf = itoa_buf();
            assert_eq!(itoa(v, &mut buf), v.to_string());
        }
    }

    #[test]
    fn as_u64_rejects_negative() {
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Int(5).as_u64(), Some(5));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert_eq!(Value::from(u64::MAX), Value::Float(u64::MAX as f64));
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1e15f64..1e15f64).prop_map(Value::Float),
            "[a-zA-Z0-9 _\\\\\"\n\t\u{e9}\u{1F600}]{0,12}".prop_map(Value::String),
        ];
        leaf.prop_recursive(3, 24, 6, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
                proptest::collection::vec(("[a-z]{1,6}", inner), 0..6).prop_map(Value::Object),
            ]
        })
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in arb_value()) {
            let text = v.to_json();
            let parsed = Value::parse(&text).unwrap();
            // Floats may not compare bit-exactly after formatting; compare
            // re-serialised text instead.
            prop_assert_eq!(parsed.to_json(), text);
        }

        #[test]
        fn prop_parse_bytes_to_json_into_roundtrip(v in arb_value()) {
            // parse_bytes ∘ to_json_into == id (modulo float reformatting,
            // so compare re-serialised text).
            let mut buf = String::new();
            v.to_json_into(&mut buf);
            let parsed = Value::parse_bytes(buf.as_bytes()).unwrap();
            let mut buf2 = String::new();
            parsed.to_json_into(&mut buf2);
            prop_assert_eq!(buf, buf2);
        }

        #[test]
        fn prop_canonicalize_idempotent(v in arb_value()) {
            let c1 = v.canonicalize();
            let c2 = c1.canonicalize();
            prop_assert_eq!(c1.to_json(), c2.to_json());
        }
    }
}
