//! JSON-RPC 2.0 request/response framing.

use std::fmt;

use crate::json::Value;

/// Standard JSON-RPC 2.0 error codes, plus an application range.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RpcErrorCode {
    /// -32700: invalid JSON.
    ParseError,
    /// -32600: request object invalid.
    InvalidRequest,
    /// -32601: method does not exist.
    MethodNotFound,
    /// -32602: invalid method parameters.
    InvalidParams,
    /// -32603: internal server error.
    InternalError,
    /// Application-defined code (the blockchain adapters use these for
    /// chain-side failures such as mempool-full or unknown-shard).
    Application(i64),
}

impl RpcErrorCode {
    /// The numeric wire code.
    pub fn code(&self) -> i64 {
        match self {
            RpcErrorCode::ParseError => -32700,
            RpcErrorCode::InvalidRequest => -32600,
            RpcErrorCode::MethodNotFound => -32601,
            RpcErrorCode::InvalidParams => -32602,
            RpcErrorCode::InternalError => -32603,
            RpcErrorCode::Application(c) => *c,
        }
    }

    /// Reconstructs from a numeric wire code.
    pub fn from_code(code: i64) -> Self {
        match code {
            -32700 => RpcErrorCode::ParseError,
            -32600 => RpcErrorCode::InvalidRequest,
            -32601 => RpcErrorCode::MethodNotFound,
            -32602 => RpcErrorCode::InvalidParams,
            -32603 => RpcErrorCode::InternalError,
            c => RpcErrorCode::Application(c),
        }
    }
}

/// A JSON-RPC error object.
#[derive(Clone, Debug, PartialEq)]
pub struct RpcError {
    /// The error code.
    pub code: RpcErrorCode,
    /// Short description.
    pub message: String,
    /// Optional structured details.
    pub data: Option<Value>,
}

impl RpcError {
    /// Convenience constructor without data.
    pub fn new(code: RpcErrorCode, message: impl Into<String>) -> Self {
        RpcError {
            code,
            message: message.into(),
            data: None,
        }
    }

    /// A `MethodNotFound` error for `method`.
    pub fn method_not_found(method: &str) -> Self {
        Self::new(
            RpcErrorCode::MethodNotFound,
            format!("method not found: {method}"),
        )
    }

    /// An `InvalidParams` error.
    pub fn invalid_params(detail: impl Into<String>) -> Self {
        Self::new(RpcErrorCode::InvalidParams, detail)
    }

    /// An application error with the given code.
    pub fn application(code: i64, message: impl Into<String>) -> Self {
        Self::new(RpcErrorCode::Application(code), message)
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RPC error {}: {}", self.code.code(), self.message)
    }
}

impl std::error::Error for RpcError {}

/// A JSON-RPC 2.0 request.
#[derive(Clone, Debug, PartialEq)]
pub struct RpcRequest {
    /// Request id (the transport fills this in).
    pub id: u64,
    /// Method name.
    pub method: String,
    /// Parameters value (commonly an object or array).
    pub params: Value,
}

impl RpcRequest {
    /// Serialises to a JSON-RPC 2.0 wire object.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("jsonrpc", Value::from("2.0")),
            ("id", Value::from(self.id)),
            ("method", Value::from(self.method.clone())),
            ("params", self.params.clone()),
        ])
    }

    /// Parses a wire object, validating the envelope.
    pub fn from_value(v: &Value) -> Result<Self, RpcError> {
        if v.get("jsonrpc").and_then(Value::as_str) != Some("2.0") {
            return Err(RpcError::new(
                RpcErrorCode::InvalidRequest,
                "missing or wrong jsonrpc version",
            ));
        }
        let id = v
            .get("id")
            .and_then(Value::as_u64)
            .ok_or_else(|| RpcError::new(RpcErrorCode::InvalidRequest, "missing id"))?;
        let method = v
            .get("method")
            .and_then(Value::as_str)
            .ok_or_else(|| RpcError::new(RpcErrorCode::InvalidRequest, "missing method"))?
            .to_owned();
        let params = v.get("params").cloned().unwrap_or(Value::Null);
        Ok(RpcRequest { id, method, params })
    }

    /// Serialises to JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Serialises to JSON text, appending to a reusable buffer.
    pub fn to_json_into(&self, out: &mut String) {
        self.to_value().to_json_into(out);
    }

    /// Parses from JSON text.
    pub fn parse(text: &str) -> Result<Self, RpcError> {
        Self::parse_bytes(text.as_bytes())
    }

    /// Parses from raw JSON bytes (e.g. a reused receive buffer).
    pub fn parse_bytes(bytes: &[u8]) -> Result<Self, RpcError> {
        let v = Value::parse_bytes(bytes)
            .map_err(|e| RpcError::new(RpcErrorCode::ParseError, e.to_string()))?;
        Self::from_value(&v)
    }
}

/// A JSON-RPC 2.0 response.
#[derive(Clone, Debug, PartialEq)]
pub struct RpcResponse {
    /// Echoed request id.
    pub id: u64,
    /// Either a result or an error.
    pub outcome: Result<Value, RpcError>,
}

impl RpcResponse {
    /// A success response.
    pub fn success(id: u64, result: Value) -> Self {
        RpcResponse {
            id,
            outcome: Ok(result),
        }
    }

    /// An error response.
    pub fn error(id: u64, error: RpcError) -> Self {
        RpcResponse {
            id,
            outcome: Err(error),
        }
    }

    /// Serialises to a wire object.
    pub fn to_value(&self) -> Value {
        match &self.outcome {
            Ok(result) => Value::object([
                ("jsonrpc", Value::from("2.0")),
                ("id", Value::from(self.id)),
                ("result", result.clone()),
            ]),
            Err(err) => {
                let mut error_obj = vec![
                    ("code".to_owned(), Value::from(err.code.code())),
                    ("message".to_owned(), Value::from(err.message.clone())),
                ];
                if let Some(data) = &err.data {
                    error_obj.push(("data".to_owned(), data.clone()));
                }
                Value::object([
                    ("jsonrpc", Value::from("2.0")),
                    ("id", Value::from(self.id)),
                    ("error", Value::Object(error_obj)),
                ])
            }
        }
    }

    /// Parses a wire object, validating the envelope.
    pub fn from_value(v: &Value) -> Result<Self, RpcError> {
        if v.get("jsonrpc").and_then(Value::as_str) != Some("2.0") {
            return Err(RpcError::new(
                RpcErrorCode::InvalidRequest,
                "missing or wrong jsonrpc version",
            ));
        }
        let id = v
            .get("id")
            .and_then(Value::as_u64)
            .ok_or_else(|| RpcError::new(RpcErrorCode::InvalidRequest, "missing id"))?;
        if let Some(err) = v.get("error") {
            let code = err
                .get("code")
                .and_then(Value::as_i64)
                .ok_or_else(|| RpcError::new(RpcErrorCode::InvalidRequest, "missing error code"))?;
            let message = err
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_owned();
            return Ok(RpcResponse::error(
                id,
                RpcError {
                    code: RpcErrorCode::from_code(code),
                    message,
                    data: err.get("data").cloned(),
                },
            ));
        }
        let result = v
            .get("result")
            .cloned()
            .ok_or_else(|| RpcError::new(RpcErrorCode::InvalidRequest, "missing result"))?;
        Ok(RpcResponse::success(id, result))
    }

    /// Serialises to JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Serialises to JSON text, appending to a reusable buffer.
    pub fn to_json_into(&self, out: &mut String) {
        self.to_value().to_json_into(out);
    }

    /// Parses from JSON text.
    pub fn parse(text: &str) -> Result<Self, RpcError> {
        Self::parse_bytes(text.as_bytes())
    }

    /// Parses from raw JSON bytes (e.g. a reused receive buffer).
    pub fn parse_bytes(bytes: &[u8]) -> Result<Self, RpcError> {
        let v = Value::parse_bytes(bytes)
            .map_err(|e| RpcError::new(RpcErrorCode::ParseError, e.to_string()))?;
        Self::from_value(&v)
    }
}

/// A JSON-RPC 2.0 batch: several requests in one wire message
/// (the spec's array form). Empty batches are invalid per the spec.
#[derive(Clone, Debug, PartialEq)]
pub struct RpcBatch(pub Vec<RpcRequest>);

impl RpcBatch {
    /// Serialises to the wire array.
    pub fn to_json(&self) -> String {
        Value::Array(self.0.iter().map(RpcRequest::to_value).collect()).to_json()
    }

    /// Parses a wire array, validating every envelope.
    pub fn parse(text: &str) -> Result<Self, RpcError> {
        let v = Value::parse(text)
            .map_err(|e| RpcError::new(RpcErrorCode::ParseError, e.to_string()))?;
        let items = v
            .as_array()
            .ok_or_else(|| RpcError::new(RpcErrorCode::InvalidRequest, "batch must be an array"))?;
        if items.is_empty() {
            return Err(RpcError::new(
                RpcErrorCode::InvalidRequest,
                "batch must not be empty",
            ));
        }
        let requests: Result<Vec<RpcRequest>, RpcError> =
            items.iter().map(RpcRequest::from_value).collect();
        Ok(RpcBatch(requests?))
    }
}

/// Serialises a batch of responses to the wire array.
pub fn batch_responses_to_json(responses: &[RpcResponse]) -> String {
    Value::Array(responses.iter().map(RpcResponse::to_value).collect()).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = RpcRequest {
            id: 7,
            method: "send_transaction".to_owned(),
            params: Value::object([("payload", Value::from("abc"))]),
        };
        let parsed = RpcRequest::parse(&req.to_json()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn response_success_roundtrip() {
        let resp = RpcResponse::success(3, Value::from(vec![1i64, 2, 3]));
        let parsed = RpcResponse::parse(&resp.to_json()).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn response_error_roundtrip() {
        let resp = RpcResponse::error(
            9,
            RpcError {
                code: RpcErrorCode::Application(-1001),
                message: "mempool full".to_owned(),
                data: Some(Value::from(42)),
            },
        );
        let parsed = RpcResponse::parse(&resp.to_json()).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn request_rejects_missing_fields() {
        assert!(RpcRequest::parse(r#"{"id":1,"method":"x"}"#).is_err()); // no version
        assert!(RpcRequest::parse(r#"{"jsonrpc":"2.0","method":"x"}"#).is_err()); // no id
        assert!(RpcRequest::parse(r#"{"jsonrpc":"2.0","id":1}"#).is_err()); // no method
        assert!(RpcRequest::parse("not json").is_err());
    }

    #[test]
    fn response_requires_result_or_error() {
        assert!(RpcResponse::parse(r#"{"jsonrpc":"2.0","id":1}"#).is_err());
    }

    #[test]
    fn error_codes_map_both_ways() {
        for code in [
            RpcErrorCode::ParseError,
            RpcErrorCode::InvalidRequest,
            RpcErrorCode::MethodNotFound,
            RpcErrorCode::InvalidParams,
            RpcErrorCode::InternalError,
            RpcErrorCode::Application(-1234),
        ] {
            assert_eq!(RpcErrorCode::from_code(code.code()), code);
        }
    }

    #[test]
    fn params_default_to_null() {
        let req = RpcRequest::parse(r#"{"jsonrpc":"2.0","id":1,"method":"ping"}"#).unwrap();
        assert!(req.params.is_null());
    }

    #[test]
    fn batch_roundtrip() {
        let batch = RpcBatch(vec![
            RpcRequest {
                id: 1,
                method: "a".into(),
                params: Value::Null,
            },
            RpcRequest {
                id: 2,
                method: "b".into(),
                params: Value::from(7),
            },
        ]);
        let parsed = RpcBatch::parse(&batch.to_json()).unwrap();
        assert_eq!(parsed, batch);
    }

    #[test]
    fn batch_rejects_empty_and_non_array() {
        assert!(RpcBatch::parse("[]").is_err());
        assert!(RpcBatch::parse("{}").is_err());
        assert!(RpcBatch::parse(r#"[{"jsonrpc":"2.0","id":1}]"#).is_err());
    }

    #[test]
    fn batch_response_serialisation() {
        let out = batch_responses_to_json(&[
            RpcResponse::success(1, Value::from(1)),
            RpcResponse::error(2, RpcError::method_not_found("x")),
        ]);
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
    }

    #[test]
    fn display_formats() {
        let e = RpcError::method_not_found("foo");
        assert_eq!(e.to_string(), "RPC error -32601: method not found: foo");
    }
}
