//! The generic RPC interface layer of the Hammer blockchain evaluation
//! framework.
//!
//! The paper (§III-A2) resolves the "no unified communication mechanism"
//! problem by putting a JSON-RPC facade in front of every blockchain SDK,
//! so one driver can talk to sharded and non-sharded systems written in any
//! language. This crate implements that facade from scratch:
//!
//! * [`json`] — a JSON value model with a hand-written parser and
//!   serializer (JSON is part of the system under study here, not an
//!   external dependency).
//! * [`jsonrpc`] — JSON-RPC 2.0 request/response framing with the standard
//!   error codes.
//! * [`transport`] — an in-process transport: a [`transport::RpcServer`]
//!   dispatches method calls to registered handlers, and an
//!   [`transport::RpcClient`] issues calls from any thread. It stands in
//!   for the TCP transport of a real deployment.
//! * [`frame`] — length-prefixed wire framing for byte-stream transports.
//!   `hammer-net`'s TCP layer composes this codec with real sockets to run
//!   the same JSON-RPC exchange across process boundaries.
//!
//! # Example
//!
//! ```
//! use hammer_rpc::json::Value;
//! use hammer_rpc::transport::RpcServer;
//!
//! let server = RpcServer::new("demo-chain");
//! server.register("echo", |params| Ok(params));
//! let client = server.client();
//! let reply = client.call("echo", Value::from("hi")).unwrap();
//! assert_eq!(reply, Value::from("hi"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod frame;
pub mod json;
pub mod jsonrpc;
pub mod transport;

pub use frame::{FrameDecoder, FrameError, MAX_FRAME_LEN};
pub use json::{JsonError, Value};
pub use jsonrpc::{RpcError, RpcErrorCode, RpcRequest, RpcResponse};
pub use transport::{RpcClient, RpcServer};
