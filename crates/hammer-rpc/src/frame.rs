//! Length-prefixed wire framing for RPC over byte streams.
//!
//! The in-process transport ([`crate::transport`]) hands complete JSON
//! texts around by reference, so it needs no framing. A TCP transport
//! sees an undifferentiated byte stream and must recover message
//! boundaries itself. This module implements the classic length-prefix
//! scheme: every frame is a 4-byte big-endian payload length followed by
//! exactly that many payload bytes.
//!
//! Design constraints (these are what the proptests pin down):
//!
//! * **Never panic** on hostile input. A peer can send truncated
//!   headers, truncated bodies, zero lengths, absurd lengths, or plain
//!   garbage; the decoder answers with a typed [`FrameError`] or waits
//!   for more bytes — it never indexes out of bounds or unwraps.
//! * **Never over-allocate.** The declared length is checked against
//!   [`MAX_FRAME_LEN`] *before* any buffer is sized from it, so a
//!   4-byte header claiming a 4 GiB body cannot balloon memory. The
//!   decoder's internal buffer only ever grows by bytes actually
//!   received.
//! * **Incremental.** [`FrameDecoder::extend`] accepts bytes in
//!   arbitrary chunks (TCP reads split anywhere, including inside the
//!   header) and [`FrameDecoder::next_frame`] yields complete frames as
//!   they become available.
//!
//! The codec is transport-agnostic and socket-free on purpose: the
//! property tests exercise it exhaustively without ever opening a
//! connection, and `hammer-net`'s TCP layer composes it with real
//! sockets.

/// Size of the length prefix, in bytes.
pub const HEADER_LEN: usize = 4;

/// Maximum payload length a frame may carry (8 MiB).
///
/// Large enough for any realistic JSON-RPC body (a whole block with
/// thousands of transactions serialises well under 1 MiB); small enough
/// that a malicious or corrupt length header cannot drive allocation.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Why a frame could not be encoded or decoded.
///
/// Every variant is a *protocol* violation: the stream is unrecoverable
/// after one (the decoder cannot resynchronise on a byte stream whose
/// framing it no longer trusts), so transports should close the
/// connection. Callers map these to fatal errors in the chain-error
/// taxonomy, in contrast to resets and timeouts which are transient.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The declared (or to-be-encoded) payload length exceeds
    /// [`MAX_FRAME_LEN`].
    Oversized {
        /// The offending length.
        len: usize,
        /// The limit it exceeds.
        max: usize,
    },
    /// A frame declared a zero-length payload. No valid RPC message is
    /// empty, so an all-zero header is far more likely desynchronised
    /// garbage than an intentional message.
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one frame (header + payload) to `out`.
///
/// Returns [`FrameError::Oversized`] / [`FrameError::Empty`] without
/// touching `out` if the payload violates the protocol limits.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<(), FrameError> {
    if payload.is_empty() {
        return Err(FrameError::Empty);
    }
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len: payload.len(),
            max: MAX_FRAME_LEN,
        });
    }
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Incremental frame decoder over an arbitrary byte stream.
///
/// Feed received bytes with [`FrameDecoder::extend`] in whatever chunks
/// the transport delivers, then drain complete frames with
/// [`FrameDecoder::next_frame`]:
///
/// ```
/// use hammer_rpc::frame::{encode_frame, FrameDecoder};
///
/// let mut wire = Vec::new();
/// encode_frame(b"{\"id\":1}", &mut wire).unwrap();
/// let mut dec = FrameDecoder::new();
/// // Bytes may arrive split anywhere, even inside the header.
/// dec.extend(&wire[..3]);
/// assert_eq!(dec.next_frame().unwrap(), None);
/// dec.extend(&wire[3..]);
/// assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"{\"id\":1}"[..]));
/// ```
///
/// After the first error the decoder is poisoned: framing on the stream
/// can no longer be trusted, so every later call returns the same error
/// and the connection should be dropped.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames.
    pos: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as part of a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns the next complete frame's payload, `Ok(None)` if more
    /// bytes are needed, or the poisoning [`FrameError`] on a protocol
    /// violation.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let avail = self.buf.len() - self.pos;
        if avail < HEADER_LEN {
            self.compact();
            return Ok(None);
        }
        let hdr: [u8; HEADER_LEN] = self.buf[self.pos..self.pos + HEADER_LEN]
            .try_into()
            .expect("slice length matches HEADER_LEN");
        let len = u32::from_be_bytes(hdr) as usize;
        if len == 0 {
            return Err(self.poison(FrameError::Empty));
        }
        if len > MAX_FRAME_LEN {
            return Err(self.poison(FrameError::Oversized {
                len,
                max: MAX_FRAME_LEN,
            }));
        }
        if avail < HEADER_LEN + len {
            self.compact();
            return Ok(None);
        }
        let start = self.pos + HEADER_LEN;
        let frame = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(frame))
    }

    /// Reclaims the consumed prefix so the buffer never retains bytes of
    /// frames already handed out.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn poison(&mut self, err: FrameError) -> FrameError {
        self.poisoned = Some(err.clone());
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_frame(payload, &mut out).unwrap();
        out
    }

    #[test]
    fn roundtrip_single_frame() {
        let wire = framed(b"hello");
        assert_eq!(wire.len(), HEADER_LEN + 5);
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut wire = framed(b"one");
        wire.extend_from_slice(&framed(b"two"));
        wire.extend_from_slice(&framed(b"three"));
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"two"[..]));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"three"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_split_reads() {
        let wire = framed(b"split me");
        let mut dec = FrameDecoder::new();
        for (i, b) in wire.iter().enumerate() {
            dec.extend(std::slice::from_ref(b));
            let got = dec.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(got, None, "frame completed early at byte {i}");
            } else {
                assert_eq!(got.as_deref(), Some(&b"split me"[..]));
            }
        }
    }

    #[test]
    fn truncated_body_waits_for_more() {
        let wire = framed(b"truncated");
        let mut dec = FrameDecoder::new();
        dec.extend(&wire[..wire.len() - 1]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.extend(&wire[wire.len() - 1..]);
        assert_eq!(
            dec.next_frame().unwrap().as_deref(),
            Some(&b"truncated"[..])
        );
    }

    #[test]
    fn oversized_header_rejected_before_allocation() {
        let mut dec = FrameDecoder::new();
        // Header claims u32::MAX bytes; only the 4 header bytes exist.
        dec.extend(&u32::MAX.to_be_bytes());
        let err = dec.next_frame().unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                len: u32::MAX as usize,
                max: MAX_FRAME_LEN,
            }
        );
        // No allocation happened on behalf of the declared length.
        assert!(dec.buffered() <= HEADER_LEN);
        // The decoder stays poisoned.
        dec.extend(&framed(b"after"));
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn boundary_length_is_accepted() {
        // Exactly MAX_FRAME_LEN must pass; one more must fail.
        let payload = vec![7u8; MAX_FRAME_LEN];
        let mut wire = Vec::new();
        encode_frame(&payload, &mut wire).unwrap();
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap().len(), MAX_FRAME_LEN);

        let over = vec![7u8; MAX_FRAME_LEN + 1];
        let mut out = Vec::new();
        assert!(matches!(
            encode_frame(&over, &mut out),
            Err(FrameError::Oversized { .. })
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&0u32.to_be_bytes());
        assert_eq!(dec.next_frame().unwrap_err(), FrameError::Empty);
        let mut out = Vec::new();
        assert_eq!(encode_frame(b"", &mut out), Err(FrameError::Empty));
    }

    #[test]
    fn consumed_bytes_are_reclaimed() {
        let mut dec = FrameDecoder::new();
        for _ in 0..100 {
            dec.extend(&framed(b"payload"));
            assert!(dec.next_frame().unwrap().is_some());
        }
        // Nothing pending: the internal buffer must not retain 100
        // frames' worth of consumed bytes.
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn error_display_formats() {
        let e = FrameError::Oversized { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        assert!(FrameError::Empty.to_string().contains("zero-length"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any sequence of payloads, chunked arbitrarily, decodes back to
        /// exactly the same payloads in order.
        #[test]
        fn prop_roundtrip_under_arbitrary_chunking(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..512),
                1..8,
            ),
            chunk_sizes in proptest::collection::vec(1usize..64, 1..64),
        ) {
            let mut wire = Vec::new();
            for p in &payloads {
                encode_frame(p, &mut wire).unwrap();
            }
            let mut dec = FrameDecoder::new();
            let mut decoded: Vec<Vec<u8>> = Vec::new();
            let mut offset = 0;
            let mut chunk_iter = chunk_sizes.iter().cycle();
            while offset < wire.len() {
                let take = (*chunk_iter.next().unwrap()).min(wire.len() - offset);
                dec.extend(&wire[offset..offset + take]);
                offset += take;
                while let Some(frame) = dec.next_frame().unwrap() {
                    decoded.push(frame);
                }
            }
            prop_assert_eq!(decoded, payloads);
            prop_assert_eq!(dec.buffered(), 0);
        }

        /// Garbage bytes never panic the decoder and never make it buffer
        /// more than it was fed: every call returns a frame, `None`, or a
        /// typed error.
        #[test]
        fn prop_garbage_never_panics_or_overallocates(
            chunks in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..128),
                0..16,
            ),
        ) {
            let mut dec = FrameDecoder::new();
            let mut fed = 0usize;
            let mut returned = 0usize;
            for chunk in &chunks {
                dec.extend(chunk);
                fed += chunk.len();
                loop {
                    match dec.next_frame() {
                        Ok(Some(frame)) => returned += HEADER_LEN + frame.len(),
                        Ok(None) => break,
                        Err(_) => break, // typed error, by construction
                    }
                }
                // The decoder can only hold bytes it was actually fed.
                prop_assert!(dec.buffered() <= fed - returned);
            }
        }

        /// A poisoned decoder keeps returning the same error.
        #[test]
        fn prop_poison_is_sticky(tail in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut dec = FrameDecoder::new();
            dec.extend(&0u32.to_be_bytes());
            let first = dec.next_frame().unwrap_err();
            dec.extend(&tail);
            prop_assert_eq!(dec.next_frame().unwrap_err(), first);
        }

        /// Truncating a valid wire image anywhere yields `None` (waiting),
        /// never an error or a bogus frame.
        #[test]
        fn prop_truncation_waits(payload in proptest::collection::vec(any::<u8>(), 1..256)) {
            let mut wire = Vec::new();
            encode_frame(&payload, &mut wire).unwrap();
            for cut in 0..wire.len() {
                let mut dec = FrameDecoder::new();
                dec.extend(&wire[..cut]);
                prop_assert_eq!(dec.next_frame().unwrap(), None);
            }
        }
    }
}
