//! In-process RPC transport.
//!
//! An [`RpcServer`] owns a dispatch table of method handlers. An
//! [`RpcClient`] (cheap to clone, usable from any thread) serialises a
//! [`RpcRequest`] to JSON text, hands the text to the server, and parses the
//! JSON text that comes back — so every call crosses a real
//! serialise/deserialise boundary exactly as it would over TCP, which keeps
//! the measured framing costs honest.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::json::Value;
use crate::jsonrpc::{RpcError, RpcRequest, RpcResponse};

/// A method handler: receives the params value, returns a result or error.
pub type Handler = Box<dyn Fn(Value) -> Result<Value, RpcError> + Send + Sync>;

struct ServerInner {
    name: String,
    handlers: RwLock<HashMap<String, Handler>>,
    calls: AtomicU64,
}

/// An RPC server with named method handlers.
#[derive(Clone)]
pub struct RpcServer {
    inner: Arc<ServerInner>,
}

impl std::fmt::Debug for RpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcServer")
            .field("name", &self.inner.name)
            .field("methods", &self.method_names())
            .field("calls", &self.inner.calls.load(Ordering::Relaxed))
            .finish()
    }
}

impl RpcServer {
    /// Creates a server with a display name (e.g. the chain it fronts).
    pub fn new(name: &str) -> Self {
        RpcServer {
            inner: Arc::new(ServerInner {
                name: name.to_owned(),
                handlers: RwLock::new(HashMap::new()),
                calls: AtomicU64::new(0),
            }),
        }
    }

    /// The server's display name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Registers (or replaces) a handler for `method`.
    pub fn register<F>(&self, method: &str, handler: F)
    where
        F: Fn(Value) -> Result<Value, RpcError> + Send + Sync + 'static,
    {
        self.inner
            .handlers
            .write()
            .insert(method.to_owned(), Box::new(handler));
    }

    /// Registered method names, sorted.
    pub fn method_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.handlers.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total calls dispatched so far.
    pub fn call_count(&self) -> u64 {
        self.inner.calls.load(Ordering::Relaxed)
    }

    /// Handles raw JSON-RPC request text, returning response text.
    ///
    /// This is the wire entry point a TCP listener would call.
    pub fn handle_text(&self, text: &str) -> String {
        let mut out = String::new();
        self.handle_bytes_into(text.as_bytes(), &mut out);
        out
    }

    /// Handles raw JSON-RPC request bytes, appending the response text to a
    /// caller-supplied buffer — the allocation-free twin of
    /// [`RpcServer::handle_text`] for transports that reuse wire buffers.
    pub fn handle_bytes_into(&self, request: &[u8], out: &mut String) {
        let response = match RpcRequest::parse_bytes(request) {
            Ok(req) => self.handle(req),
            Err(err) => RpcResponse::error(0, err),
        };
        response.to_json_into(out);
    }

    /// Handles a JSON-RPC 2.0 batch (array) of requests, returning the
    /// array of responses in request order.
    pub fn handle_batch_text(&self, text: &str) -> String {
        match crate::jsonrpc::RpcBatch::parse(text) {
            Ok(batch) => {
                let responses: Vec<RpcResponse> =
                    batch.0.into_iter().map(|req| self.handle(req)).collect();
                crate::jsonrpc::batch_responses_to_json(&responses)
            }
            Err(err) => RpcResponse::error(0, err).to_json(),
        }
    }

    /// Handles a parsed request.
    pub fn handle(&self, req: RpcRequest) -> RpcResponse {
        self.inner.calls.fetch_add(1, Ordering::Relaxed);
        let handlers = self.inner.handlers.read();
        match handlers.get(&req.method) {
            Some(handler) => match handler(req.params) {
                Ok(result) => RpcResponse::success(req.id, result),
                Err(err) => RpcResponse::error(req.id, err),
            },
            None => RpcResponse::error(req.id, RpcError::method_not_found(&req.method)),
        }
    }

    /// Creates a client bound to this server.
    pub fn client(&self) -> RpcClient {
        RpcClient {
            server: self.clone(),
            next_id: Arc::new(AtomicU64::new(1)),
        }
    }
}

/// A client handle for issuing calls against one [`RpcServer`].
///
/// Clones share the id counter, so ids stay unique across threads.
#[derive(Clone, Debug)]
pub struct RpcClient {
    server: RpcServer,
    next_id: Arc<AtomicU64>,
}

thread_local! {
    /// Per-thread (request, response) wire buffers reused across calls, so
    /// steady-state submission does no transient text allocations.
    static WIRE_BUFS: std::cell::RefCell<(String, String)> =
        const { std::cell::RefCell::new((String::new(), String::new())) };
}

impl RpcClient {
    /// Calls `method` with `params`, crossing a full JSON encode/decode
    /// round trip, and returns the result value.
    ///
    /// The wire text on both directions goes through thread-local reusable
    /// buffers; the encode/parse work still happens on every call (the
    /// framing cost stays honest), only the allocations are amortised.
    pub fn call(&self, method: &str, params: Value) -> Result<Value, RpcError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let req = RpcRequest {
            id,
            method: method.to_owned(),
            params,
        };
        // Take the buffers out of the slot (a re-entrant call from a
        // handler on this thread just starts from fresh empty ones).
        let (mut req_buf, mut resp_buf) = WIRE_BUFS.with(|b| std::mem::take(&mut *b.borrow_mut()));
        req_buf.clear();
        resp_buf.clear();
        req.to_json_into(&mut req_buf);
        self.server
            .handle_bytes_into(req_buf.as_bytes(), &mut resp_buf);
        let parsed = RpcResponse::parse_bytes(resp_buf.as_bytes());
        WIRE_BUFS.with(|b| *b.borrow_mut() = (req_buf, resp_buf));
        let resp = parsed?;
        debug_assert_eq!(resp.id, id, "transport must echo the request id");
        resp.outcome
    }

    /// The server this client talks to.
    pub fn server_name(&self) -> &str {
        self.server.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonrpc::RpcErrorCode;

    #[test]
    fn call_roundtrip() {
        let server = RpcServer::new("test");
        server.register("add", |params| {
            let a = params.get("a").and_then(Value::as_i64).unwrap_or(0);
            let b = params.get("b").and_then(Value::as_i64).unwrap_or(0);
            Ok(Value::from(a + b))
        });
        let client = server.client();
        let result = client
            .call(
                "add",
                Value::object([("a", Value::from(2)), ("b", Value::from(40))]),
            )
            .unwrap();
        assert_eq!(result, Value::Int(42));
    }

    #[test]
    fn unknown_method_errors() {
        let server = RpcServer::new("test");
        let client = server.client();
        let err = client.call("nope", Value::Null).unwrap_err();
        assert_eq!(err.code, RpcErrorCode::MethodNotFound);
    }

    #[test]
    fn handler_errors_propagate() {
        let server = RpcServer::new("test");
        server.register("fail", |_| {
            Err(RpcError::application(-1001, "chain stalled"))
        });
        let client = server.client();
        let err = client.call("fail", Value::Null).unwrap_err();
        assert_eq!(err.code, RpcErrorCode::Application(-1001));
        assert_eq!(err.message, "chain stalled");
    }

    #[test]
    fn malformed_wire_text_yields_parse_error() {
        let server = RpcServer::new("test");
        let resp_text = server.handle_text("this is not json");
        let resp = RpcResponse::parse(&resp_text).unwrap();
        assert!(matches!(
            resp.outcome,
            Err(RpcError {
                code: RpcErrorCode::ParseError,
                ..
            })
        ));
    }

    #[test]
    fn ids_unique_across_cloned_clients() {
        let server = RpcServer::new("test");
        server.register("id", |_| Ok(Value::Null));
        let c1 = server.client();
        let c2 = c1.clone();
        // Exercise concurrently.
        let h1 = std::thread::spawn(move || {
            for _ in 0..100 {
                c1.call("id", Value::Null).unwrap();
            }
        });
        let h2 = std::thread::spawn(move || {
            for _ in 0..100 {
                c2.call("id", Value::Null).unwrap();
            }
        });
        h1.join().unwrap();
        h2.join().unwrap();
        assert_eq!(server.call_count(), 200);
    }

    #[test]
    fn batch_dispatch_preserves_order_and_isolation() {
        let server = RpcServer::new("test");
        server.register("double", |params| {
            let v = params.as_i64().unwrap_or(0);
            Ok(Value::from(v * 2))
        });
        let batch = crate::jsonrpc::RpcBatch(vec![
            RpcRequest {
                id: 1,
                method: "double".into(),
                params: Value::from(4),
            },
            RpcRequest {
                id: 2,
                method: "missing".into(),
                params: Value::Null,
            },
            RpcRequest {
                id: 3,
                method: "double".into(),
                params: Value::from(5),
            },
        ]);
        let out = server.handle_batch_text(&batch.to_json());
        let v = Value::parse(&out).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("result").unwrap().as_i64(), Some(8));
        assert!(items[1].get("error").is_some());
        assert_eq!(items[2].get("result").unwrap().as_i64(), Some(10));
        // A failing element must not poison its neighbours.
        assert_eq!(server.call_count(), 3);
    }

    #[test]
    fn register_replaces_handler() {
        let server = RpcServer::new("test");
        server.register("v", |_| Ok(Value::from(1)));
        server.register("v", |_| Ok(Value::from(2)));
        assert_eq!(
            server.client().call("v", Value::Null).unwrap(),
            Value::Int(2)
        );
        assert_eq!(server.method_names(), vec!["v"]);
    }

    #[test]
    fn debug_includes_name() {
        let server = RpcServer::new("fabric-rpc");
        assert!(format!("{server:?}").contains("fabric-rpc"));
    }
}
