//! An in-memory key/value store standing in for Redis.
//!
//! The paper's driver keeps per-server transaction-status vector lists in
//! Redis and periodically merges them (Fig. 2, step ④/⑥). This store
//! offers the operations that flow needs: binary values, atomic counters,
//! list append/range, prefix scans, and a merge-friendly `getset` —
//! all behind sharded locks so driver threads don't serialise on one
//! mutex.

use std::collections::HashMap;

use parking_lot::RwLock;

const SHARDS: usize = 16;

/// A value stored under a key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvValue {
    /// An opaque byte blob.
    Bytes(Vec<u8>),
    /// A 64-bit signed counter.
    Counter(i64),
    /// An append-only list of blobs.
    List(Vec<Vec<u8>>),
}

/// A sharded, thread-safe key/value store.
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<RwLock<HashMap<String, KvValue>>>,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, KvValue>> {
        // FNV-1a over the key bytes.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Stores bytes under `key`, replacing any previous value.
    pub fn set(&self, key: &str, value: Vec<u8>) {
        self.shard(key)
            .write()
            .insert(key.to_owned(), KvValue::Bytes(value));
    }

    /// Reads the bytes stored under `key` (`None` for missing keys or
    /// non-byte values).
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        match self.shard(key).read().get(key) {
            Some(KvValue::Bytes(b)) => Some(b.clone()),
            _ => None,
        }
    }

    /// Atomically replaces the bytes under `key`, returning the old value.
    /// This is the merge primitive: the poller `getset`s each vector-list
    /// key to claim its contents exactly once.
    pub fn getset(&self, key: &str, value: Vec<u8>) -> Option<Vec<u8>> {
        match self
            .shard(key)
            .write()
            .insert(key.to_owned(), KvValue::Bytes(value))
        {
            Some(KvValue::Bytes(old)) => Some(old),
            _ => None,
        }
    }

    /// Removes `key`, returning whether it existed.
    pub fn del(&self, key: &str) -> bool {
        self.shard(key).write().remove(key).is_some()
    }

    /// Atomically adds `delta` to the counter at `key` (initialising to 0)
    /// and returns the new value. Overwrites non-counter values.
    pub fn incr(&self, key: &str, delta: i64) -> i64 {
        let mut shard = self.shard(key).write();
        let entry = shard.entry(key.to_owned()).or_insert(KvValue::Counter(0));
        match entry {
            KvValue::Counter(v) => {
                *v += delta;
                *v
            }
            other => {
                *other = KvValue::Counter(delta);
                delta
            }
        }
    }

    /// Reads a counter (0 when missing).
    pub fn counter(&self, key: &str) -> i64 {
        match self.shard(key).read().get(key) {
            Some(KvValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Appends an item to the list at `key` (creating it), returning the
    /// new length. Overwrites non-list values.
    pub fn rpush(&self, key: &str, item: Vec<u8>) -> usize {
        let mut shard = self.shard(key).write();
        let entry = shard
            .entry(key.to_owned())
            .or_insert(KvValue::List(Vec::new()));
        match entry {
            KvValue::List(items) => {
                items.push(item);
                items.len()
            }
            other => {
                *other = KvValue::List(vec![item]);
                1
            }
        }
    }

    /// Reads list items in `[start, stop)` (clamped).
    pub fn lrange(&self, key: &str, start: usize, stop: usize) -> Vec<Vec<u8>> {
        match self.shard(key).read().get(key) {
            Some(KvValue::List(items)) => {
                let start = start.min(items.len());
                let stop = stop.min(items.len());
                items[start..stop].to_vec()
            }
            _ => Vec::new(),
        }
    }

    /// Atomically takes the entire list at `key`, leaving it empty.
    pub fn ltake(&self, key: &str) -> Vec<Vec<u8>> {
        let mut shard = self.shard(key).write();
        match shard.get_mut(key) {
            Some(KvValue::List(items)) => std::mem::take(items),
            _ => Vec::new(),
        }
    }

    /// All keys starting with `prefix`, sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for key in shard.read().keys() {
                if key.starts_with(prefix) {
                    out.push(key.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Number of keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every key.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_get_del() {
        let kv = KvStore::new();
        kv.set("a", b"1".to_vec());
        assert_eq!(kv.get("a"), Some(b"1".to_vec()));
        assert!(kv.del("a"));
        assert_eq!(kv.get("a"), None);
        assert!(!kv.del("a"));
    }

    #[test]
    fn getset_claims_once() {
        let kv = KvStore::new();
        kv.set("vl", b"batch1".to_vec());
        assert_eq!(kv.getset("vl", b"".to_vec()), Some(b"batch1".to_vec()));
        assert_eq!(kv.getset("vl", b"".to_vec()), Some(b"".to_vec()));
    }

    #[test]
    fn counters() {
        let kv = KvStore::new();
        assert_eq!(kv.incr("c", 5), 5);
        assert_eq!(kv.incr("c", -2), 3);
        assert_eq!(kv.counter("c"), 3);
        assert_eq!(kv.counter("missing"), 0);
    }

    #[test]
    fn incr_overwrites_bytes() {
        let kv = KvStore::new();
        kv.set("k", b"text".to_vec());
        assert_eq!(kv.incr("k", 7), 7);
        assert_eq!(kv.get("k"), None); // no longer bytes
    }

    #[test]
    fn lists() {
        let kv = KvStore::new();
        assert_eq!(kv.rpush("l", b"a".to_vec()), 1);
        assert_eq!(kv.rpush("l", b"b".to_vec()), 2);
        assert_eq!(kv.lrange("l", 0, 10), vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(kv.lrange("l", 1, 2), vec![b"b".to_vec()]);
        assert_eq!(kv.ltake("l"), vec![b"a".to_vec(), b"b".to_vec()]);
        assert!(kv.lrange("l", 0, 10).is_empty());
    }

    #[test]
    fn prefix_scan_sorted() {
        let kv = KvStore::new();
        kv.set("status:2", vec![]);
        kv.set("status:1", vec![]);
        kv.set("other", vec![]);
        assert_eq!(kv.keys_with_prefix("status:"), vec!["status:1", "status:2"]);
    }

    #[test]
    fn len_and_clear() {
        let kv = KvStore::new();
        for i in 0..100 {
            kv.set(&format!("k{i}"), vec![]);
        }
        assert_eq!(kv.len(), 100);
        kv.clear();
        assert!(kv.is_empty());
    }

    #[test]
    fn concurrent_counters_are_exact() {
        let kv = Arc::new(KvStore::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let kv = Arc::clone(&kv);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    kv.incr("shared", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.counter("shared"), 8000);
    }

    #[test]
    fn concurrent_rpush_keeps_all() {
        let kv = Arc::new(KvStore::new());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let kv = Arc::clone(&kv);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u16 {
                    kv.rpush("list", vec![t, (i % 256) as u8]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.ltake("list").len(), 2000);
    }
}
