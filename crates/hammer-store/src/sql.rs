//! A miniature SQL engine over the `Performance` table.
//!
//! The paper's visualisation layer "employs the SQL engine to provide
//! complex queries, pull data from MySQL, and display it", and Table II
//! gives the two statements it uses. This module implements enough of
//! SQL — verbatim including `TIMESTAMPDIFF` — to execute those statements
//! and their obvious variations against a [`TableStore`]:
//!
//! ```sql
//! SELECT COUNT(*) AS TPS FROM Performance
//!   WHERE STATUS = '1' AND TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1
//!
//! SELECT tx_id, start_time, end_time,
//!        TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency
//!   FROM Performance
//! ```
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT items FROM Performance [WHERE conj]
//! items   := item (',' item)*
//! item    := '*' | COUNT '(' '*' ')' [AS ident]
//!          | expr [AS ident]
//! expr    := column | TIMESTAMPDIFF '(' unit ',' column ',' column ')'
//! conj    := cmp (AND cmp)*
//! cmp     := expr op literal
//! op      := '=' | '!=' | '<' | '<=' | '>' | '>='
//! literal := number | quoted string
//! unit    := SECOND | MILLISECOND
//! column  := tx_id | client_id | server_id | chain | start_time
//!          | end_time | status
//! ```

use std::fmt;

use crate::table::{PerfRow, TableStore};

/// A SQL parse or execution error, with a human-readable description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlError(pub String);

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error: {}", self.0)
    }
}

impl std::error::Error for SqlError {}

/// Result of a query: a header and stringly-typed rows (what a
/// MySQL-client/Grafana boundary would carry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultSet {
    /// Column labels.
    pub columns: Vec<String>,
    /// Row values, formatted.
    pub rows: Vec<Vec<String>>,
}

// ---------------------------------------------------------------- lexer

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Star,
    Comma,
    LParen,
    RParen,
    Op(String),
    End,
}

fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Op("=".into()));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op("!=".into()));
                    i += 2;
                } else {
                    return Err(SqlError("lone '!'".into()));
                }
            }
            '<' | '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(format!("{c}=")));
                    i += 2;
                } else {
                    tokens.push(Token::Op(c.to_string()));
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(SqlError("unterminated string literal".into()));
                }
                tokens.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            '0'..='9' | '.' | '-' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len()
                    && matches!(bytes[j] as char, '0'..='9' | '.' | 'e' | 'E' | '-' | '+')
                {
                    j += 1;
                }
                let text = &input[start..j];
                let value: f64 = text
                    .parse()
                    .map_err(|_| SqlError(format!("bad number '{text}'")))?;
                tokens.push(Token::Number(value));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                tokens.push(Token::Ident(input[start..j].to_owned()));
                i = j;
            }
            other => return Err(SqlError(format!("unexpected character '{other}'"))),
        }
    }
    tokens.push(Token::End);
    Ok(tokens)
}

// ------------------------------------------------------------------ AST

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Column {
    TxId,
    ClientId,
    ServerId,
    Chain,
    StartTime,
    EndTime,
    Status,
    Outcome,
}

impl Column {
    fn parse(name: &str) -> Option<Column> {
        match name.to_ascii_lowercase().as_str() {
            "tx_id" => Some(Column::TxId),
            "client_id" => Some(Column::ClientId),
            "server_id" => Some(Column::ServerId),
            "chain" => Some(Column::Chain),
            "start_time" => Some(Column::StartTime),
            "end_time" => Some(Column::EndTime),
            "status" => Some(Column::Status),
            "outcome" => Some(Column::Outcome),
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Column::TxId => "tx_id",
            Column::ClientId => "client_id",
            Column::ServerId => "server_id",
            Column::Chain => "chain",
            Column::StartTime => "start_time",
            Column::EndTime => "end_time",
            Column::Status => "status",
            Column::Outcome => "outcome",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Unit {
    Second,
    Millisecond,
}

#[derive(Clone, Debug, PartialEq)]
enum Expr {
    Col(Column),
    /// `TIMESTAMPDIFF(unit, a, b)` = `b - a` in `unit`.
    TimestampDiff(Unit, Column, Column),
}

#[derive(Clone, Debug, PartialEq)]
enum SelectItem {
    AllColumns,
    CountStar { alias: Option<String> },
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Clone, Debug, PartialEq)]
struct Comparison {
    lhs: Expr,
    op: String,
    rhs: Literal,
}

#[derive(Clone, Debug, PartialEq)]
enum Literal {
    Number(f64),
    Str(String),
}

#[derive(Clone, Debug, PartialEq)]
struct Query {
    items: Vec<SelectItem>,
    predicates: Vec<Comparison>,
}

// --------------------------------------------------------------- parser

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Token::Ident(word) if word.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(SqlError(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn expect(&mut self, token: Token) -> Result<(), SqlError> {
        let got = self.next();
        if got == token {
            Ok(())
        } else {
            Err(SqlError(format!("expected {token:?}, found {got:?}")))
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(word) if word.eq_ignore_ascii_case(kw))
    }

    fn parse_query(&mut self) -> Result<Query, SqlError> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.parse_item()?];
        while self.peek() == &Token::Comma {
            self.next();
            items.push(self.parse_item()?);
        }
        self.expect_keyword("FROM")?;
        match self.next() {
            Token::Ident(table) if table.eq_ignore_ascii_case("performance") => {}
            other => return Err(SqlError(format!("unknown table {other:?}"))),
        }
        let mut predicates = Vec::new();
        if self.keyword_is("WHERE") {
            self.next();
            predicates.push(self.parse_comparison()?);
            while self.keyword_is("AND") {
                self.next();
                predicates.push(self.parse_comparison()?);
            }
        }
        self.expect(Token::End)?;
        Ok(Query { items, predicates })
    }

    fn parse_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.keyword_is("AS") {
            self.next();
            match self.next() {
                Token::Ident(alias) => Ok(Some(alias)),
                other => Err(SqlError(format!("expected alias, found {other:?}"))),
            }
        } else {
            Ok(None)
        }
    }

    fn parse_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.peek() == &Token::Star {
            self.next();
            return Ok(SelectItem::AllColumns);
        }
        if self.keyword_is("COUNT") {
            self.next();
            self.expect(Token::LParen)?;
            self.expect(Token::Star)?;
            self.expect(Token::RParen)?;
            let alias = self.parse_alias()?;
            return Ok(SelectItem::CountStar { alias });
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        if self.keyword_is("TIMESTAMPDIFF") {
            self.next();
            self.expect(Token::LParen)?;
            let unit = match self.next() {
                Token::Ident(u) if u.eq_ignore_ascii_case("SECOND") => Unit::Second,
                Token::Ident(u) if u.eq_ignore_ascii_case("MILLISECOND") => Unit::Millisecond,
                other => return Err(SqlError(format!("unknown unit {other:?}"))),
            };
            self.expect(Token::Comma)?;
            let a = self.parse_column()?;
            self.expect(Token::Comma)?;
            let b = self.parse_column()?;
            self.expect(Token::RParen)?;
            return Ok(Expr::TimestampDiff(unit, a, b));
        }
        Ok(Expr::Col(self.parse_column()?))
    }

    fn parse_column(&mut self) -> Result<Column, SqlError> {
        match self.next() {
            Token::Ident(name) => {
                Column::parse(&name).ok_or_else(|| SqlError(format!("unknown column '{name}'")))
            }
            other => Err(SqlError(format!("expected column, found {other:?}"))),
        }
    }

    fn parse_comparison(&mut self) -> Result<Comparison, SqlError> {
        let lhs = self.parse_expr()?;
        let op = match self.next() {
            Token::Op(op) => op,
            other => return Err(SqlError(format!("expected operator, found {other:?}"))),
        };
        let rhs = match self.next() {
            Token::Number(v) => Literal::Number(v),
            Token::Str(s) => Literal::Str(s),
            other => return Err(SqlError(format!("expected literal, found {other:?}"))),
        };
        Ok(Comparison { lhs, op, rhs })
    }
}

// ------------------------------------------------------------- executor

/// A cell value during evaluation.
#[derive(Clone, Debug, PartialEq)]
enum Cell {
    Num(f64),
    Text(String),
    Null,
}

impl Cell {
    fn format(&self) -> String {
        match self {
            Cell::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v}")
                }
            }
            Cell::Text(s) => s.clone(),
            Cell::Null => "NULL".to_owned(),
        }
    }
}

fn eval_column(row: &PerfRow, column: Column) -> Cell {
    match column {
        Column::TxId => Cell::Num(row.tx_id as f64),
        Column::ClientId => Cell::Num(row.client_id as f64),
        Column::ServerId => Cell::Num(row.server_id as f64),
        Column::Chain => Cell::Text(row.chain.clone()),
        Column::StartTime => Cell::Num(row.start_time.as_secs_f64()),
        Column::EndTime => match row.end_time {
            Some(end) => Cell::Num(end.as_secs_f64()),
            None => Cell::Null,
        },
        // The paper's schema stores STATUS as '1'/'0' strings.
        Column::Status => Cell::Text(if row.status_ok() { "1" } else { "0" }.to_owned()),
        // Fault-injection extension: the terminal outcome label.
        Column::Outcome => Cell::Text(row.outcome.as_str().to_owned()),
    }
}

fn eval_expr(row: &PerfRow, expr: &Expr) -> Cell {
    match expr {
        Expr::Col(column) => eval_column(row, *column),
        Expr::TimestampDiff(unit, a, b) => {
            let (a, b) = (eval_column(row, *a), eval_column(row, *b));
            match (a, b) {
                (Cell::Num(from), Cell::Num(to)) => {
                    let diff = to - from;
                    Cell::Num(match unit {
                        // MySQL TIMESTAMPDIFF truncates toward zero.
                        Unit::Second => diff.trunc(),
                        Unit::Millisecond => (diff * 1e3).trunc(),
                    })
                }
                _ => Cell::Null,
            }
        }
    }
}

fn matches(row: &PerfRow, cmp: &Comparison) -> bool {
    let lhs = eval_expr(row, &cmp.lhs);
    match (&lhs, &cmp.rhs) {
        (Cell::Null, _) => false, // SQL three-valued logic: NULL never matches
        (Cell::Num(l), Literal::Number(r)) => compare(*l, *r, &cmp.op),
        (Cell::Text(l), Literal::Str(r)) => match cmp.op.as_str() {
            "=" => l == r,
            "!=" => l != r,
            _ => false,
        },
        // Numeric column vs quoted number (MySQL coerces).
        (Cell::Num(l), Literal::Str(r)) => r
            .parse::<f64>()
            .map(|r| compare(*l, r, &cmp.op))
            .unwrap_or(false),
        (Cell::Text(l), Literal::Number(r)) => l
            .parse::<f64>()
            .map(|l| compare(l, *r, &cmp.op))
            .unwrap_or(false),
    }
}

fn compare(l: f64, r: f64, op: &str) -> bool {
    match op {
        "=" => l == r,
        "!=" => l != r,
        "<" => l < r,
        "<=" => l <= r,
        ">" => l > r,
        ">=" => l >= r,
        _ => false,
    }
}

const ALL_COLUMNS: [Column; 8] = [
    Column::TxId,
    Column::ClientId,
    Column::ServerId,
    Column::Chain,
    Column::StartTime,
    Column::EndTime,
    Column::Status,
    Column::Outcome,
];

/// Parses and executes a query against the table.
pub fn query(store: &TableStore, sql: &str) -> Result<ResultSet, SqlError> {
    let tokens = lex(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let parsed = parser.parse_query()?;

    let rows = store.all_rows();
    let selected: Vec<&PerfRow> = rows
        .iter()
        .filter(|row| parsed.predicates.iter().all(|p| matches(row, p)))
        .collect();

    // Aggregate query? (COUNT(*) mixed with columns is rejected, like
    // MySQL in ONLY_FULL_GROUP_BY mode.)
    let has_count = parsed
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::CountStar { .. }));
    if has_count {
        if parsed.items.len() != 1 {
            return Err(SqlError(
                "COUNT(*) cannot be mixed with other select items".into(),
            ));
        }
        let alias = match &parsed.items[0] {
            SelectItem::CountStar { alias } => {
                alias.clone().unwrap_or_else(|| "COUNT(*)".to_owned())
            }
            _ => unreachable!(),
        };
        return Ok(ResultSet {
            columns: vec![alias],
            rows: vec![vec![selected.len().to_string()]],
        });
    }

    // Projection.
    let mut columns = Vec::new();
    for item in &parsed.items {
        match item {
            SelectItem::AllColumns => {
                columns.extend(ALL_COLUMNS.iter().map(|c| c.name().to_owned()));
            }
            SelectItem::Expr { expr, alias } => {
                let label = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Col(c) => c.name().to_owned(),
                    Expr::TimestampDiff(..) => "TIMESTAMPDIFF".to_owned(),
                });
                columns.push(label);
            }
            SelectItem::CountStar { .. } => unreachable!(),
        }
    }
    let mut out_rows = Vec::with_capacity(selected.len());
    for row in selected {
        let mut cells = Vec::with_capacity(columns.len());
        for item in &parsed.items {
            match item {
                SelectItem::AllColumns => {
                    for c in ALL_COLUMNS {
                        cells.push(eval_column(row, c).format());
                    }
                }
                SelectItem::Expr { expr, .. } => cells.push(eval_expr(row, expr).format()),
                SelectItem::CountStar { .. } => unreachable!(),
            }
        }
        out_rows.push(cells);
    }
    Ok(ResultSet {
        columns,
        rows: out_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn seeded_store() -> TableStore {
        let store = TableStore::new();
        // 3 committed (latencies 0.4s, 0.9s, 1.5s), 1 failed, 1 pending.
        let mk = |tx: u64, start_ms: u64, end_ms: Option<u64>, ok: bool| PerfRow {
            tx_id: tx,
            client_id: (tx % 2) as u32,
            server_id: 0,
            chain: "fabric-sim".to_owned(),
            start_time: Duration::from_millis(start_ms),
            end_time: end_ms.map(Duration::from_millis),
            outcome: if ok {
                crate::table::RowOutcome::Committed
            } else {
                crate::table::RowOutcome::Failed
            },
        };
        store.insert(mk(1, 0, Some(400), true));
        store.insert(mk(2, 100, Some(1000), true));
        store.insert(mk(3, 0, Some(1500), true));
        store.insert(mk(4, 0, Some(200), false));
        store.insert(mk(5, 0, None, false));
        store
    }

    #[test]
    fn paper_tps_statement() {
        // Verbatim Table II (modulo whitespace).
        let store = seeded_store();
        let result = query(
            &store,
            "SELECT COUNT(*) AS TPS FROM Performance \
             WHERE STATUS = '1' AND TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1",
        )
        .unwrap();
        assert_eq!(result.columns, vec!["TPS"]);
        // Latencies 0.4 and 0.9 truncate to 0 s, 1.5 truncates to 1 s:
        // all three committed rows pass `<= 1`; failed/pending do not.
        assert_eq!(result.rows, vec![vec!["3".to_owned()]]);
    }

    #[test]
    fn paper_latency_statement() {
        let store = seeded_store();
        let result = query(
            &store,
            "SELECT tx_id, start_time, end_time, \
             TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency \
             FROM Performance",
        )
        .unwrap();
        assert_eq!(
            result.columns,
            vec!["tx_id", "start_time", "end_time", "Latency"]
        );
        assert_eq!(result.rows.len(), 5);
        assert_eq!(result.rows[0], vec!["1", "0", "0.4", "400"]);
        // Pending row: NULL end time and latency.
        assert_eq!(result.rows[4][2], "NULL");
        assert_eq!(result.rows[4][3], "NULL");
    }

    #[test]
    fn select_star() {
        let store = seeded_store();
        let result = query(&store, "select * from performance where status = '0'").unwrap();
        assert_eq!(result.columns.len(), 8);
        assert_eq!(result.rows.len(), 2);
    }

    #[test]
    fn outcome_column_queryable() {
        let store = seeded_store();
        let result = query(
            &store,
            "SELECT COUNT(*) FROM Performance WHERE outcome = 'committed'",
        )
        .unwrap();
        assert_eq!(result.rows[0][0], "3");
        let result = query(&store, "SELECT outcome FROM Performance WHERE tx_id = 4").unwrap();
        assert_eq!(result.rows, vec![vec!["failed".to_owned()]]);
    }

    #[test]
    fn numeric_comparisons() {
        let store = seeded_store();
        let result = query(&store, "SELECT tx_id FROM Performance WHERE tx_id > 3").unwrap();
        assert_eq!(
            result.rows,
            vec![vec!["4".to_owned()], vec!["5".to_owned()]]
        );
        let result = query(&store, "SELECT tx_id FROM Performance WHERE client_id != 0").unwrap();
        assert_eq!(result.rows.len(), 3); // tx 1, 3, 5 have client_id 1
    }

    #[test]
    fn string_equality_on_chain() {
        let store = seeded_store();
        let result = query(
            &store,
            "SELECT COUNT(*) FROM Performance WHERE chain = 'fabric-sim'",
        )
        .unwrap();
        assert_eq!(result.rows[0][0], "5");
        let result = query(
            &store,
            "SELECT COUNT(*) FROM Performance WHERE chain = 'other'",
        )
        .unwrap();
        assert_eq!(result.rows[0][0], "0");
    }

    #[test]
    fn null_never_matches() {
        let store = seeded_store();
        // end_time of the pending row is NULL; no predicate matches it.
        let result = query(
            &store,
            "SELECT tx_id FROM Performance WHERE TIMESTAMPDIFF(SECOND, start_time, end_time) >= 0",
        )
        .unwrap();
        assert_eq!(result.rows.len(), 4);
    }

    #[test]
    fn parse_errors() {
        let store = seeded_store();
        for bad in [
            "SELEC * FROM Performance",
            "SELECT * FROM Accounts",
            "SELECT nope FROM Performance",
            "SELECT * FROM Performance WHERE",
            "SELECT COUNT(*), tx_id FROM Performance",
            "SELECT * FROM Performance WHERE tx_id ! 1",
            "SELECT * FROM Performance WHERE tx_id = 'unterminated",
            "SELECT TIMESTAMPDIFF(FORTNIGHT, start_time, end_time) FROM Performance",
        ] {
            assert!(query(&store, bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn count_star_default_alias() {
        let store = seeded_store();
        let result = query(&store, "SELECT COUNT(*) FROM Performance").unwrap();
        assert_eq!(result.columns, vec!["COUNT(*)"]);
        assert_eq!(result.rows[0][0], "5");
    }

    #[test]
    fn keywords_case_insensitive() {
        let store = seeded_store();
        let result = query(
            &store,
            "sElEcT cOuNt(*) aS n FrOm pErFoRmAnCe wHeRe StAtUs = '1'",
        )
        .unwrap();
        assert_eq!(result.columns, vec!["n"]);
        assert_eq!(result.rows[0][0], "3");
    }

    #[test]
    fn sql_truncation_vs_typed_exact_semantics() {
        // A faithful detail: MySQL's TIMESTAMPDIFF(SECOND, ...) *truncates*,
        // so the paper's SQL admits a 1.5 s transaction into "latency <= 1"
        // while the typed `tps_query` (exact duration comparison) does not.
        let store = seeded_store();
        let via_sql = query(
            &store,
            "SELECT COUNT(*) AS TPS FROM Performance \
             WHERE STATUS = '1' AND TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1",
        )
        .unwrap();
        assert_eq!(via_sql.rows[0][0], "3"); // includes the 1.5 s row
        assert_eq!(store.tps_query(), 2); // exact semantics exclude it
    }
}
