//! A resource monitor standing in for Prometheus + node-exporter.
//!
//! The paper's visualisation phase (§III-B3) pulls CPU, memory, and network
//! consumption from every node during the run. This monitor samples
//! process-level proxies on a fixed period and keeps the time series in
//! memory for the report layer:
//!
//! * **network in/out** — read from the [`hammer_net::SimNetwork`] counters;
//! * **work counters** — arbitrary named gauges registered by components
//!   (blocks sealed, transactions committed, queue depths), mirroring how
//!   node-exporter scrapes application metrics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hammer_net::SimNetwork;
use parking_lot::{Mutex, RwLock};

/// One scrape of all metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceSample {
    /// Simulated timestamp of the scrape.
    pub at: Duration,
    /// Total bytes accepted by the network so far.
    pub net_bytes_sent: u64,
    /// Total messages delivered so far.
    pub net_messages_delivered: u64,
    /// Values of every registered gauge at scrape time.
    pub gauges: Vec<(String, u64)>,
}

/// A shared named gauge that components bump.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Adds to the gauge.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct Inner {
    net: SimNetwork,
    gauges: RwLock<HashMap<String, Gauge>>,
    samples: Mutex<Vec<ResourceSample>>,
    stop: AtomicBool,
}

/// The scraping monitor. Cheap to clone.
#[derive(Clone)]
pub struct ResourceMonitor {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ResourceMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceMonitor")
            .field("samples", &self.inner.samples.lock().len())
            .finish()
    }
}

impl ResourceMonitor {
    /// Creates a monitor over the given network (not yet scraping).
    pub fn new(net: SimNetwork) -> Self {
        ResourceMonitor {
            inner: Arc::new(Inner {
                net,
                gauges: RwLock::new(HashMap::new()),
                samples: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
            }),
        }
    }

    /// Registers (or fetches) a named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.write();
        gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Takes one scrape immediately.
    pub fn scrape(&self) -> ResourceSample {
        let stats = self.inner.net.stats();
        let mut gauges: Vec<(String, u64)> = self
            .inner
            .gauges
            .read()
            .iter()
            .map(|(k, g)| (k.clone(), g.value()))
            .collect();
        gauges.sort();
        let sample = ResourceSample {
            at: self.inner.net.clock().now(),
            net_bytes_sent: stats.bytes_sent,
            net_messages_delivered: stats.delivered,
            gauges,
        };
        self.inner.samples.lock().push(sample.clone());
        sample
    }

    /// Starts a background scraper with the given wall-clock period;
    /// returns a handle that stops it when dropped.
    pub fn start_scraping(&self, period: Duration) -> ScrapeHandle {
        let monitor = self.clone();
        let handle = std::thread::Builder::new()
            .name("resource-monitor".to_owned())
            .spawn(move || {
                while !monitor.inner.stop.load(Ordering::Relaxed) {
                    monitor.scrape();
                    std::thread::sleep(period);
                }
            })
            .expect("spawn monitor");
        ScrapeHandle {
            inner: Arc::clone(&self.inner),
            thread: Some(handle),
        }
    }

    /// All samples collected so far.
    pub fn samples(&self) -> Vec<ResourceSample> {
        self.inner.samples.lock().clone()
    }
}

/// Stops the background scraper when dropped.
pub struct ScrapeHandle {
    inner: Arc<Inner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ScrapeHandle {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_net::{LinkConfig, SimClock};

    fn net() -> SimNetwork {
        SimNetwork::new(SimClock::with_speedup(1000.0), LinkConfig::ideal())
    }

    #[test]
    fn scrape_captures_network_counters() {
        let net = net();
        let _a = net.register("a");
        let _b = net.register("b");
        net.send("a", "b", vec![0u8; 64]).unwrap();
        let monitor = ResourceMonitor::new(net);
        let sample = monitor.scrape();
        assert_eq!(sample.net_bytes_sent, 64);
    }

    #[test]
    fn gauges_shared_by_name() {
        let monitor = ResourceMonitor::new(net());
        let g1 = monitor.gauge("blocks");
        let g2 = monitor.gauge("blocks");
        g1.add(3);
        g2.add(2);
        assert_eq!(monitor.gauge("blocks").value(), 5);
        let sample = monitor.scrape();
        assert_eq!(sample.gauges, vec![("blocks".to_owned(), 5)]);
    }

    #[test]
    fn gauge_set_overrides() {
        let monitor = ResourceMonitor::new(net());
        let g = monitor.gauge("queue_depth");
        g.set(42);
        assert_eq!(g.value(), 42);
        g.set(7);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn background_scraper_collects_and_stops() {
        let monitor = ResourceMonitor::new(net());
        {
            let _handle = monitor.start_scraping(Duration::from_millis(10));
            std::thread::sleep(Duration::from_millis(80));
        } // handle dropped -> scraper stops
        let n = monitor.samples().len();
        assert!(n >= 3, "collected {n} samples");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(monitor.samples().len(), n, "scraper kept running");
    }

    #[test]
    fn samples_are_ordered_in_time() {
        let monitor = ResourceMonitor::new(net());
        for _ in 0..5 {
            monitor.scrape();
            std::thread::sleep(Duration::from_millis(2));
        }
        let samples = monitor.samples();
        for pair in samples.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }
}
