//! A resource monitor standing in for Prometheus + node-exporter.
//!
//! The paper's visualisation phase (§III-B3) pulls CPU, memory, and network
//! consumption from every node during the run. This monitor samples
//! process-level proxies on a fixed period and keeps the time series in
//! memory for the report layer:
//!
//! * **network in/out** — read from the [`hammer_net::SimNetwork`] counters;
//! * **work counters** — named gauges registered by components (blocks
//!   sealed, transactions committed, queue depths), mirroring how
//!   node-exporter scrapes application metrics.
//!
//! Gauges live on a [`hammer_obs::Registry`]: when the network carries an
//! installed observability bundle ([`hammer_net::SimNetwork::install_obs`])
//! the monitor joins that registry, so its gauges appear in the Prometheus
//! exposition and the dashboard alongside every other metric; otherwise it
//! runs on a private registry and behaves as before.
//!
//! Scraping follows **simulated** time by default: the requested period is
//! interpreted on the network's [`hammer_net::SimClock`], so samples stay
//! aligned with fault windows and block intervals at any speedup. The old
//! wall-clock behaviour remains available via
//! [`ResourceMonitor::start_scraping_wall`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hammer_net::SimNetwork;
pub use hammer_obs::Gauge;
use hammer_obs::Registry;
use parking_lot::Mutex;

/// One scrape of all metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceSample {
    /// Simulated timestamp of the scrape.
    pub at: Duration,
    /// Total bytes accepted by the network so far.
    pub net_bytes_sent: u64,
    /// Total messages delivered so far.
    pub net_messages_delivered: u64,
    /// Values of every registered gauge at scrape time, sorted by name.
    pub gauges: Vec<(String, u64)>,
}

struct Inner {
    net: SimNetwork,
    registry: Registry,
    samples: Mutex<Vec<ResourceSample>>,
    stop: AtomicBool,
    /// Whether `registry` is the network's shared obs registry (in which
    /// case scrapes also mirror the network counters into gauges).
    shared_registry: bool,
}

/// The scraping monitor. Cheap to clone.
#[derive(Clone)]
pub struct ResourceMonitor {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ResourceMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceMonitor")
            .field("samples", &self.inner.samples.lock().len())
            .finish()
    }
}

impl ResourceMonitor {
    /// Creates a monitor over the given network (not yet scraping). When
    /// the network carries an enabled observability bundle, the monitor's
    /// gauges are registered on that bundle's registry.
    pub fn new(net: SimNetwork) -> Self {
        let obs = net.obs();
        let (registry, shared_registry) = if obs.enabled() {
            (obs.registry().clone(), true)
        } else {
            (Registry::new(), false)
        };
        ResourceMonitor {
            inner: Arc::new(Inner {
                net,
                registry,
                samples: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
                shared_registry,
            }),
        }
    }

    /// The registry this monitor's gauges live on.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Registers (or fetches) a named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.registry.gauge(name)
    }

    /// Takes one scrape immediately.
    pub fn scrape(&self) -> ResourceSample {
        let stats = self.inner.net.stats();
        if self.inner.shared_registry {
            // Mirror the network counters into the shared registry so the
            // exposition and dashboard carry them without a special case.
            self.inner
                .registry
                .gauge("hammer_net_bytes_sent")
                .set(stats.bytes_sent);
            self.inner
                .registry
                .gauge("hammer_net_messages_delivered")
                .set(stats.delivered);
            self.inner
                .registry
                .gauge("hammer_net_messages_lost")
                .set(stats.lost);
            self.inner
                .registry
                .gauge("hammer_net_messages_faulted")
                .set(stats.faulted);
        }
        let sample = ResourceSample {
            at: self.inner.net.clock().now(),
            net_bytes_sent: stats.bytes_sent,
            net_messages_delivered: stats.delivered,
            gauges: self.inner.registry.gauges(),
        };
        self.inner.samples.lock().push(sample.clone());
        sample
    }

    /// Starts a background scraper on a **simulated-time** period: scrapes
    /// land on absolute sim-clock deadlines, so at 1000x speedup a 100 ms
    /// period yields samples 100 ms of *simulated* time apart, aligned
    /// with fault windows. Deadlines missed during a wall-clock stall are
    /// skipped rather than bursting catch-up scrapes. Returns a handle
    /// that stops the scraper when dropped.
    pub fn start_scraping(&self, period: Duration) -> ScrapeHandle {
        assert!(!period.is_zero(), "scrape period must be positive");
        let monitor = self.clone();
        let clock = self.inner.net.clock().clone();
        let handle = std::thread::Builder::new()
            .name("resource-monitor".to_owned())
            .spawn(move || {
                let mut deadline = clock.now();
                'scraper: loop {
                    if monitor.inner.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    monitor.scrape();
                    // Next absolute deadline; skip any missed while stalled.
                    deadline = (deadline + period).max(clock.now());
                    // Wait in short wall chunks so dropping the handle stays
                    // responsive even when the sim period is long, finishing
                    // with the clock's precise sleep for the tail.
                    loop {
                        if monitor.inner.stop.load(Ordering::Relaxed) {
                            break 'scraper;
                        }
                        let now = clock.now();
                        if now >= deadline {
                            break;
                        }
                        let wall = clock.to_wall(deadline - now);
                        if wall <= Duration::from_millis(20) {
                            clock.sleep_until(deadline);
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            })
            .expect("spawn monitor");
        ScrapeHandle {
            inner: Arc::clone(&self.inner),
            thread: Some(handle),
        }
    }

    /// Starts a background scraper with a **wall-clock** period (the
    /// pre-observability behaviour): samples drift relative to simulated
    /// time as the speedup grows. Opt-in for callers that genuinely want
    /// wall cadence, e.g. when watching a live run interactively.
    pub fn start_scraping_wall(&self, period: Duration) -> ScrapeHandle {
        let monitor = self.clone();
        let handle = std::thread::Builder::new()
            .name("resource-monitor".to_owned())
            .spawn(move || {
                while !monitor.inner.stop.load(Ordering::Relaxed) {
                    monitor.scrape();
                    std::thread::sleep(period);
                }
            })
            .expect("spawn monitor");
        ScrapeHandle {
            inner: Arc::clone(&self.inner),
            thread: Some(handle),
        }
    }

    /// All samples collected so far.
    pub fn samples(&self) -> Vec<ResourceSample> {
        self.inner.samples.lock().clone()
    }
}

/// Stops the background scraper when dropped.
pub struct ScrapeHandle {
    inner: Arc<Inner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ScrapeHandle {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_net::{LinkConfig, SimClock};

    fn net() -> SimNetwork {
        SimNetwork::new(SimClock::with_speedup(1000.0), LinkConfig::ideal())
    }

    #[test]
    fn scrape_captures_network_counters() {
        let net = net();
        let _a = net.register("a");
        let _b = net.register("b");
        net.send("a", "b", vec![0u8; 64]).unwrap();
        let monitor = ResourceMonitor::new(net);
        let sample = monitor.scrape();
        assert_eq!(sample.net_bytes_sent, 64);
    }

    #[test]
    fn gauges_shared_by_name() {
        let monitor = ResourceMonitor::new(net());
        let g1 = monitor.gauge("blocks");
        let g2 = monitor.gauge("blocks");
        g1.add(3);
        g2.add(2);
        assert_eq!(monitor.gauge("blocks").value(), 5);
        let sample = monitor.scrape();
        assert_eq!(sample.gauges, vec![("blocks".to_owned(), 5)]);
    }

    #[test]
    fn gauge_set_overrides() {
        let monitor = ResourceMonitor::new(net());
        let g = monitor.gauge("queue_depth");
        g.set(42);
        assert_eq!(g.value(), 42);
        g.set(7);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn monitor_joins_installed_obs_registry() {
        let net = net();
        let _a = net.register("a");
        let _b = net.register("b");
        let obs = hammer_obs::Obs::new();
        net.install_obs(obs.clone());
        let monitor = ResourceMonitor::new(net.clone());
        monitor.gauge("blocks_sealed").set(9);
        net.send("a", "b", vec![0u8; 32]).unwrap();
        let sample = monitor.scrape();
        // The gauge landed on the shared registry ...
        assert_eq!(obs.registry().gauge("blocks_sealed").value(), 9);
        // ... and the scrape mirrored the network counters into it.
        assert_eq!(obs.registry().gauge("hammer_net_bytes_sent").value(), 32);
        assert!(sample
            .gauges
            .iter()
            .any(|(n, v)| n == "hammer_net_bytes_sent" && *v == 32));
    }

    #[test]
    fn background_scraper_collects_and_stops() {
        // 10 ms of simulated time at 1000x is 10 us of wall time, so the
        // 80 ms run collects far more than the asserted floor.
        let monitor = ResourceMonitor::new(net());
        {
            let _handle = monitor.start_scraping(Duration::from_millis(10));
            std::thread::sleep(Duration::from_millis(80));
        } // handle dropped -> scraper stops
        let n = monitor.samples().len();
        assert!(n >= 3, "collected {n} samples");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(monitor.samples().len(), n, "scraper kept running");
    }

    #[test]
    fn sim_scraper_aligns_samples_to_sim_period() {
        // Period of 2 s simulated = 20 ms wall at 100x, wide enough that
        // scheduler stalls on a busy 1-core host stay well under it.
        let clock = SimClock::with_speedup(100.0);
        let network = SimNetwork::new(clock, LinkConfig::ideal());
        let monitor = ResourceMonitor::new(network);
        let period = Duration::from_secs(2);
        {
            let _handle = monitor.start_scraping(period);
            std::thread::sleep(Duration::from_millis(170));
        }
        let samples = monitor.samples();
        assert!(samples.len() >= 3, "collected {}", samples.len());
        // Consecutive samples must be at least ~a period of *simulated*
        // time apart: the deadline ladder never fires early, and missed
        // deadlines are skipped instead of bursting.
        for pair in samples.windows(2) {
            let delta = pair[1].at - pair[0].at;
            assert!(
                delta >= period / 2,
                "samples only {delta:?} of sim time apart"
            );
        }
    }

    #[test]
    fn wall_scraper_remains_available() {
        let monitor = ResourceMonitor::new(net());
        {
            let _handle = monitor.start_scraping_wall(Duration::from_millis(5));
            std::thread::sleep(Duration::from_millis(40));
        }
        assert!(monitor.samples().len() >= 2);
    }

    #[test]
    fn samples_are_ordered_in_time() {
        let monitor = ResourceMonitor::new(net());
        for _ in 0..5 {
            monitor.scrape();
            std::thread::sleep(Duration::from_millis(2));
        }
        let samples = monitor.samples();
        for pair in samples.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }
}
