//! Storage and monitoring substrates for the Hammer evaluation framework.
//!
//! The paper's deployment (Fig. 2) wires four infrastructure services
//! around the driver; this crate provides in-process equivalents of each:
//!
//! | Paper | Module | Role |
//! |---|---|---|
//! | Redis | [`kv`] | fast shared store the driver flushes vector-list transaction statuses into |
//! | MySQL | [`table`] + [`sql`] | durable `Performance` table and the SQL engine the visualisation layer queries (Table II) |
//! | Prometheus + node-exporter | [`monitor`] | periodic resource sampling of every node |
//! | Grafana | [`report`] | human-readable tables and line charts, plus CSV export |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kv;
pub mod monitor;
pub mod report;
pub mod sql;
pub mod table;

pub use kv::KvStore;
pub use monitor::{ResourceMonitor, ResourceSample};
pub use report::{render_series, render_table};
pub use sql::{query, ResultSet, SqlError};
pub use table::{PerfRow, RowOutcome, TableStore};
