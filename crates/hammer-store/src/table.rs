//! The analytic `Performance` table, standing in for MySQL.
//!
//! Rows mirror the paper's schema (Table II and §III-B3): one row per
//! transaction with start/end timestamps and a success flag. Query methods
//! implement the exact semantics of the paper's two SQL statements plus
//! the aggregations the figures need (per-second TPS series, latency
//! percentiles).

use std::time::Duration;

use parking_lot::RwLock;

/// Terminal outcome of a transaction, as recorded in the `Performance`
/// table. The paper's schema only stores a `'1'`/`'0'` STATUS flag; the
/// fault-injection extension needs to distinguish *why* a transaction
/// never committed (dropped by the retry budget vs. expired past the
/// per-slice deadline vs. simply unobserved).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// Committed successfully (`STATUS = '1'`).
    Committed,
    /// Included on-chain but invalid (execution/MVCC failure).
    Failed,
    /// Never observed before the drain deadline.
    TimedOut,
    /// Abandoned after exhausting the submission retry budget.
    Dropped,
    /// Abandoned after the per-slice retry deadline passed.
    Expired,
}

impl RowOutcome {
    /// Stable lowercase label (CSV/SQL rendering).
    pub fn as_str(&self) -> &'static str {
        match self {
            RowOutcome::Committed => "committed",
            RowOutcome::Failed => "failed",
            RowOutcome::TimedOut => "timed_out",
            RowOutcome::Dropped => "dropped",
            RowOutcome::Expired => "expired",
        }
    }

    /// Stable one-byte wire code (the Fig. 2 status pipeline).
    pub fn code(&self) -> u8 {
        match self {
            RowOutcome::Committed => 1,
            RowOutcome::Failed => 0,
            RowOutcome::TimedOut => 2,
            RowOutcome::Dropped => 3,
            RowOutcome::Expired => 4,
        }
    }

    /// Inverse of [`RowOutcome::code`]; `None` on an unknown byte.
    pub fn from_code(code: u8) -> Option<RowOutcome> {
        match code {
            1 => Some(RowOutcome::Committed),
            0 => Some(RowOutcome::Failed),
            2 => Some(RowOutcome::TimedOut),
            3 => Some(RowOutcome::Dropped),
            4 => Some(RowOutcome::Expired),
            _ => None,
        }
    }
}

impl std::fmt::Display for RowOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One row of the `Performance` table.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfRow {
    /// Transaction id fingerprint (64-bit prefix of the full id).
    pub tx_id: u64,
    /// Workload client that generated the transaction.
    pub client_id: u32,
    /// Driver server that submitted it.
    pub server_id: u32,
    /// Target chain name.
    pub chain: String,
    /// Submission timestamp (simulated).
    pub start_time: Duration,
    /// Commit timestamp (simulated); `None` while pending / timed out.
    pub end_time: Option<Duration>,
    /// Terminal outcome (`'1'` in the paper's schema ⇔ `Committed`).
    pub outcome: RowOutcome,
}

impl PerfRow {
    /// Transaction latency, when completed.
    pub fn latency(&self) -> Option<Duration> {
        self.end_time.map(|e| e.saturating_sub(self.start_time))
    }

    /// The paper's boolean STATUS flag: committed successfully.
    pub fn status_ok(&self) -> bool {
        self.outcome == RowOutcome::Committed
    }
}

/// An append-mostly analytic table with the paper's queries.
#[derive(Debug, Default)]
pub struct TableStore {
    rows: RwLock<Vec<PerfRow>>,
}

/// Summary statistics over completed transactions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of completed transactions measured.
    pub count: usize,
    /// Mean latency in seconds.
    pub mean_s: f64,
    /// Median (p50) latency in seconds.
    pub p50_s: f64,
    /// 95th percentile latency in seconds.
    pub p95_s: f64,
    /// 99th percentile latency in seconds.
    pub p99_s: f64,
    /// Maximum latency in seconds.
    pub max_s: f64,
}

impl TableStore {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// A table pre-populated with rows.
    pub fn new_from_rows(rows: Vec<PerfRow>) -> Self {
        TableStore {
            rows: RwLock::new(rows),
        }
    }

    /// Appends one row.
    pub fn insert(&self, row: PerfRow) {
        self.rows.write().push(row);
    }

    /// Appends many rows with one lock acquisition.
    pub fn insert_batch(&self, batch: Vec<PerfRow>) {
        self.rows.write().extend(batch);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones out every row (test/diagnostic use).
    pub fn all_rows(&self) -> Vec<PerfRow> {
        self.rows.read().clone()
    }

    /// The paper's TPS statement:
    ///
    /// ```sql
    /// SELECT COUNT(*) AS TPS FROM Performance
    /// WHERE STATUS = '1' AND TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1
    /// ```
    ///
    /// i.e. committed transactions whose latency is at most one second.
    pub fn tps_query(&self) -> usize {
        self.rows
            .read()
            .iter()
            .filter(|r| r.status_ok())
            .filter(|r| r.latency().is_some_and(|l| l <= Duration::from_secs(1)))
            .count()
    }

    /// The paper's latency statement: per-transaction
    /// `(tx_id, start, end, latency_ms)` for every completed transaction.
    pub fn latency_query(&self) -> Vec<(u64, Duration, Duration, u128)> {
        self.rows
            .read()
            .iter()
            .filter_map(|r| {
                let end = r.end_time?;
                Some((
                    r.tx_id,
                    r.start_time,
                    end,
                    end.saturating_sub(r.start_time).as_millis(),
                ))
            })
            .collect()
    }

    /// Committed-transaction count per `bucket` of *commit* time — the TPS
    /// time series a Grafana panel plots. Buckets span `[0, horizon)` where
    /// `horizon` is the max end time seen; empty buckets are included.
    pub fn tps_series(&self, bucket: Duration) -> Vec<usize> {
        assert!(!bucket.is_zero(), "bucket must be positive");
        let rows = self.rows.read();
        let horizon = rows
            .iter()
            .filter(|r| r.status_ok())
            .filter_map(|r| r.end_time)
            .max()
            .unwrap_or(Duration::ZERO);
        if horizon.is_zero() {
            return Vec::new();
        }
        let n_buckets = (horizon.as_secs_f64() / bucket.as_secs_f64()).floor() as usize + 1;
        let mut series = vec![0usize; n_buckets];
        for row in rows.iter().filter(|r| r.status_ok()) {
            if let Some(end) = row.end_time {
                let idx = (end.as_secs_f64() / bucket.as_secs_f64()).floor() as usize;
                series[idx.min(n_buckets - 1)] += 1;
            }
        }
        series
    }

    /// Overall committed throughput: committed transactions divided by the
    /// span from first submission to last commit.
    pub fn overall_tps(&self) -> f64 {
        let rows = self.rows.read();
        let committed: Vec<&PerfRow> = rows.iter().filter(|r| r.status_ok()).collect();
        if committed.is_empty() {
            return 0.0;
        }
        let first = rows.iter().map(|r| r.start_time).min().unwrap_or_default();
        let last = committed
            .iter()
            .filter_map(|r| r.end_time)
            .max()
            .unwrap_or_default();
        let span = last.saturating_sub(first).as_secs_f64();
        if span <= 0.0 {
            return committed.len() as f64;
        }
        committed.len() as f64 / span
    }

    /// Latency summary over committed transactions.
    pub fn latency_summary(&self) -> LatencySummary {
        let rows = self.rows.read();
        let mut lats: Vec<f64> = rows
            .iter()
            .filter(|r| r.status_ok())
            .filter_map(|r| r.latency())
            .map(|l| l.as_secs_f64())
            .collect();
        if lats.is_empty() {
            return LatencySummary::default();
        }
        lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pct = |p: f64| -> f64 {
            let idx = ((lats.len() as f64 - 1.0) * p).round() as usize;
            lats[idx]
        };
        LatencySummary {
            count: lats.len(),
            mean_s: lats.iter().sum::<f64>() / lats.len() as f64,
            p50_s: pct(0.50),
            p95_s: pct(0.95),
            p99_s: pct(0.99),
            max_s: *lats.last().expect("nonempty"),
        }
    }

    /// `(committed, failed, pending)` counts.
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let rows = self.rows.read();
        let mut committed = 0;
        let mut failed = 0;
        let mut pending = 0;
        for r in rows.iter() {
            if r.status_ok() {
                committed += 1;
            } else if r.end_time.is_some() {
                failed += 1;
            } else {
                pending += 1;
            }
        }
        (committed, failed, pending)
    }

    /// Per-client committed counts, sorted by client id (load monitoring,
    /// one of the two roles `c_id` plays in Algorithm 1).
    pub fn per_client_committed(&self) -> Vec<(u32, usize)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<u32, usize> = BTreeMap::new();
        for r in self.rows.read().iter().filter(|r| r.status_ok()) {
            *map.entry(r.client_id).or_default() += 1;
        }
        map.into_iter().collect()
    }

    /// Removes every row.
    pub fn clear(&self) {
        self.rows.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(tx: u64, start_ms: u64, end_ms: Option<u64>, ok: bool) -> PerfRow {
        PerfRow {
            tx_id: tx,
            client_id: (tx % 3) as u32,
            server_id: 0,
            chain: "test".to_owned(),
            start_time: Duration::from_millis(start_ms),
            end_time: end_ms.map(Duration::from_millis),
            outcome: if ok {
                RowOutcome::Committed
            } else {
                RowOutcome::Failed
            },
        }
    }

    #[test]
    fn tps_query_counts_fast_committed_only() {
        let t = TableStore::new();
        t.insert(row(1, 0, Some(500), true)); // fast, committed
        t.insert(row(2, 0, Some(1500), true)); // slow, committed
        t.insert(row(3, 0, Some(100), false)); // fast, failed
        t.insert(row(4, 0, None, true)); // pending (no end)
        assert_eq!(t.tps_query(), 1);
    }

    #[test]
    fn latency_query_returns_ms() {
        let t = TableStore::new();
        t.insert(row(1, 100, Some(400), true));
        t.insert(row(2, 0, None, false));
        let result = t.latency_query();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].0, 1);
        assert_eq!(result[0].3, 300);
    }

    #[test]
    fn tps_series_buckets_by_commit_time() {
        let t = TableStore::new();
        t.insert(row(1, 0, Some(100), true));
        t.insert(row(2, 0, Some(900), true));
        t.insert(row(3, 0, Some(1100), true));
        t.insert(row(4, 0, Some(2500), true));
        let series = t.tps_series(Duration::from_secs(1));
        assert_eq!(series, vec![2, 1, 1]);
    }

    #[test]
    fn tps_series_empty_table() {
        let t = TableStore::new();
        assert!(t.tps_series(Duration::from_secs(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket must be positive")]
    fn tps_series_zero_bucket_panics() {
        let t = TableStore::new();
        let _ = t.tps_series(Duration::ZERO);
    }

    #[test]
    fn overall_tps_spans_first_submit_to_last_commit() {
        let t = TableStore::new();
        t.insert(row(1, 0, Some(1000), true));
        t.insert(row(2, 0, Some(2000), true));
        // 2 committed over 2 seconds = 1 TPS.
        assert!((t.overall_tps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_percentiles() {
        let t = TableStore::new();
        for i in 1..=100u64 {
            t.insert(row(i, 0, Some(i * 10), true)); // 10ms..1000ms
        }
        let s = t.latency_summary();
        assert_eq!(s.count, 100);
        assert!((s.p50_s - 0.50).abs() < 0.02, "p50 = {}", s.p50_s);
        assert!((s.p95_s - 0.95).abs() < 0.02, "p95 = {}", s.p95_s);
        assert!((s.max_s - 1.0).abs() < 1e-9);
        assert!((s.mean_s - 0.505).abs() < 0.01);
    }

    #[test]
    fn latency_summary_empty() {
        let t = TableStore::new();
        assert_eq!(t.latency_summary(), LatencySummary::default());
    }

    #[test]
    fn status_counts_classify() {
        let t = TableStore::new();
        t.insert(row(1, 0, Some(1), true));
        t.insert(row(2, 0, Some(1), false));
        t.insert(row(3, 0, None, false));
        assert_eq!(t.status_counts(), (1, 1, 1));
    }

    #[test]
    fn per_client_counts() {
        let t = TableStore::new();
        for i in 0..9u64 {
            t.insert(row(i, 0, Some(1), true)); // client = i % 3
        }
        assert_eq!(t.per_client_committed(), vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn insert_batch_appends_all() {
        let t = TableStore::new();
        t.insert_batch((0..50).map(|i| row(i, 0, Some(1), true)).collect());
        assert_eq!(t.len(), 50);
        t.clear();
        assert!(t.is_empty());
    }
}
