//! Text rendering of evaluation results, standing in for Grafana.
//!
//! Two chart types cover everything the paper's figures use: aligned
//! tables (histogo-style comparisons) and Unicode line/bar charts for time
//! series. A CSV exporter feeds external plotting.

/// Renders an aligned text table. The first row is the header.
///
/// ```
/// let out = hammer_store::report::render_table(
///     &["chain", "tps"],
///     &[vec!["ethereum".into(), "18.6".into()],
///       vec!["neuchain".into(), "8688".into()]],
/// );
/// assert!(out.contains("ethereum"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            out.push(' ');
            out.push_str(cell);
            for _ in cell.len()..*w {
                out.push(' ');
            }
            out.push_str(" |");
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    fmt_row(&header_cells, &widths, &mut out);
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Renders a series as a horizontal-bar chart, one row per point:
/// `label | value | bar`.
pub fn render_bars(title: &str, points: &[(String, f64)], width: usize) -> String {
    let max = points
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in points {
        let bar_len = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} {value:>12.2} {}\n",
            "█".repeat(bar_len)
        ));
    }
    out
}

/// Renders a numeric series as a compact sparkline-style line chart with a
/// y-axis legend. `height` rows tall.
pub fn render_series(title: &str, series: &[f64], height: usize) -> String {
    if series.is_empty() {
        return format!("{title}\n(empty series)\n");
    }
    let height = height.max(2);
    let max = series.iter().copied().fold(f64::MIN, f64::max);
    let min = series.iter().copied().fold(f64::MAX, f64::min);
    let span = (max - min).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; series.len()]; height];
    for (x, v) in series.iter().enumerate() {
        let level = (((v - min) / span) * (height as f64 - 1.0)).round() as usize;
        for (y, row) in grid.iter_mut().enumerate() {
            if height - 1 - y == level {
                row[x] = '●';
            } else if height - 1 - y < level {
                row[x] = '·';
            }
        }
    }
    let mut out = format!(
        "{title}  (min={min:.2}, max={max:.2}, n={})\n",
        series.len()
    );
    for (y, row) in grid.iter().enumerate() {
        let axis_val = max - span * (y as f64) / (height as f64 - 1.0);
        out.push_str(&format!("{axis_val:>10.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

/// Serialises rows as CSV with a header line. Cells containing commas,
/// quotes or newlines are quoted.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_owned()
        }
    }
    let mut out = header
        .iter()
        .map(|h| escape(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(out.contains("longer-name"));
    }

    #[test]
    fn table_handles_short_rows() {
        let out = render_table(&["a", "b"], &[vec!["only-one".into()]]);
        assert!(out.contains("only-one"));
    }

    #[test]
    fn bars_scale_to_max() {
        let out = render_bars("tps", &[("eth".into(), 10.0), ("neu".into(), 100.0)], 20);
        let eth_bar = out.lines().find(|l| l.starts_with("eth")).unwrap();
        let neu_bar = out.lines().find(|l| l.starts_with("neu")).unwrap();
        let count = |s: &str| s.chars().filter(|c| *c == '█').count();
        assert_eq!(count(neu_bar), 20);
        assert_eq!(count(eth_bar), 2);
    }

    #[test]
    fn series_renders_extremes() {
        let out = render_series("load", &[0.0, 5.0, 10.0, 5.0, 0.0], 5);
        assert!(out.contains("max=10.00"));
        assert!(out.contains("min=0.00"));
        assert!(out.contains('●'));
    }

    #[test]
    fn series_empty() {
        assert!(render_series("x", &[], 5).contains("empty"));
    }

    #[test]
    fn series_constant_values() {
        // Zero span must not divide by zero.
        let out = render_series("flat", &[3.0, 3.0, 3.0], 4);
        assert!(out.contains("min=3.00"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let out = to_csv(&["k", "v"], &[vec!["a,b".into(), "say \"hi\"".into()]]);
        assert_eq!(out, "k,v\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn csv_plain_passthrough() {
        let out = to_csv(&["x"], &[vec!["1".into()], vec!["2".into()]]);
        assert_eq!(out, "x\n1\n2\n");
    }
}
