//! A Meepo-style sharded consortium blockchain simulator.
//!
//! Meepo (Zheng et al., ICDE 2021) splits a consortium chain into shards
//! that process transactions in parallel and settle cross-shard calls at
//! epoch boundaries ("cross-epoch"). This simulator reproduces the
//! behaviour the Hammer paper needs (§V *Sharding*):
//!
//! * **Static sharding** — accounts are routed to a shard by account id
//!   (`id % shards`); the paper seeds 5 000 accounts per shard.
//! * **Per-shard epochs** — each shard cuts a block every
//!   [`MeepoConfig::epoch_interval`] from its own mempool, so aggregate
//!   throughput scales with the shard count.
//! * **Cross-epoch settlement** — a transfer whose sender and receiver
//!   live on different shards executes its debit in the source shard's
//!   block, relays the credit, and the destination shard applies it at its
//!   next epoch boundary. The transaction is reported committed at the
//!   source block (the relay is deterministic), matching the paper's
//!   decision not to distinguish intra-/inter-shard transactions.
//!
//! Throughput lands between Fabric and Neuchain, with high confirmation
//! latency from the long consortium epochs — the shape Fig. 6 shows.
//!
//! Node scaffolding (per-shard sealer loops, ingress gating, sealed-block
//! accounting, gossip) comes from the [`hammer_chain::kernel`]; this
//! crate contributes the sharded-routing [`ConsensusPolicy`] and the
//! cross-epoch relay.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hammer_chain::client::Architecture;
use hammer_chain::impl_sim_handle;
use hammer_chain::kernel::{
    ChainNode, ConsensusPolicy, Kernel, NodeKernelBuilder, Round, SimChain,
};
use hammer_chain::smallbank::Op;
use hammer_chain::state::VersionedState;
use hammer_chain::types::{Address, SignedTransaction};
use hammer_crypto::sig::SigParams;
use hammer_net::{SimClock, SimNetwork};
use parking_lot::Mutex;

/// Configuration of the simulated Meepo deployment.
#[derive(Clone, Debug)]
pub struct MeepoConfig {
    /// Number of shards (the paper deploys 2).
    pub shards: u32,
    /// Nodes participating in each shard (the paper configures 3 nodes
    /// serving both shards).
    pub nodes_per_shard: usize,
    /// Epoch length per shard (consortium block time).
    pub epoch_interval: Duration,
    /// Maximum transactions per shard block.
    pub max_block_txs: usize,
    /// Simulated execution cost per transaction.
    pub exec_cost_per_tx: Duration,
    /// Per-shard mempool capacity.
    pub mempool_capacity: usize,
    /// Whether to verify client signatures at epoch cut.
    pub verify_signatures: bool,
    /// Signature scheme parameters.
    pub sig_params: SigParams,
}

impl Default for MeepoConfig {
    fn default() -> Self {
        MeepoConfig {
            shards: 2,
            nodes_per_shard: 3,
            epoch_interval: Duration::from_millis(800),
            max_block_txs: 1_200,
            exec_cost_per_tx: Duration::from_micros(60),
            mempool_capacity: 30_000,
            verify_signatures: true,
            sig_params: SigParams::fast(),
        }
    }
}

/// Activity counters (aggregated across shards).
#[derive(Clone, Copy, Debug, Default)]
pub struct MeepoStats {
    /// Blocks cut across all shards.
    pub blocks: u64,
    /// Transactions committed successfully.
    pub committed: u64,
    /// Transactions included but failed execution.
    pub failed: u64,
    /// Cross-shard transactions settled.
    pub cross_shard: u64,
    /// Transactions dropped for bad signatures.
    pub bad_sig: u64,
}

/// A pending cross-shard credit: `(account, amount)` to apply to checking.
#[derive(Clone, Copy, Debug)]
struct Credit {
    account: Address,
    amount: u64,
}

fn node_name(shard: u32, i: usize) -> String {
    format!("meepo-s{shard}-node-{i}")
}

/// The sharded consensus core: static account routing, per-shard epochs,
/// and cross-epoch credit relay.
pub struct MeepoPolicy {
    config: MeepoConfig,
    /// Inbound cross-epoch credits, one inbox per shard.
    relay_in: Vec<Mutex<Vec<Credit>>>,
    cross_shard: AtomicU64,
}

impl MeepoPolicy {
    fn shard_of(&self, account: Address) -> u32 {
        (account.as_u64() % self.config.shards as u64) as u32
    }
}

impl ConsensusPolicy for MeepoPolicy {
    fn chain_name(&self) -> &'static str {
        "meepo-sim"
    }

    fn architecture(&self) -> Architecture {
        Architecture::Sharded {
            shards: self.config.shards,
        }
    }

    /// Ingress goes through the target shard's leader; a fault there only
    /// affects that shard.
    fn ingress_node(&self, shard: u32) -> String {
        node_name(shard, 0)
    }

    /// Route by the first touched account (the transaction's home shard,
    /// where its debit executes).
    fn route(&self, tx: &SignedTransaction) -> u32 {
        tx.tx
            .op
            .touched_accounts()
            .first()
            .map(|a| self.shard_of(*a))
            .unwrap_or(0)
    }

    fn home_shard(&self, account: Address) -> u32 {
        self.shard_of(account)
    }

    fn seal_wait(&self, _shard: u32) -> Duration {
        self.config.epoch_interval
    }

    fn build_round(&self, kernel: &Kernel, shard_id: u32) -> Option<Round> {
        let shard = kernel.shard(shard_id);

        // 1. Apply cross-epoch credits relayed from other shards.
        let credits: Vec<Credit> = std::mem::take(&mut *self.relay_in[shard_id as usize].lock());
        if !credits.is_empty() {
            let mut state = shard.state.lock();
            for c in &credits {
                let (checking, savings) = state
                    .get(c.account)
                    .map(|a| (a.checking, a.savings))
                    .unwrap_or((0, 0));
                state.force_write(c.account, checking.saturating_add(c.amount), savings);
            }
        }

        // 2. Cut this shard's block.
        let mut txs = shard.mempool.drain(self.config.max_block_txs);
        if txs.is_empty() && credits.is_empty() {
            return None;
        }
        if self.config.verify_signatures {
            kernel.verify_retain(&mut txs, &self.config.sig_params);
        }
        kernel
            .clock()
            .sleep(self.config.exec_cost_per_tx * txs.len() as u32);

        let mut tx_ids = Vec::with_capacity(txs.len());
        let mut valid = Vec::with_capacity(txs.len());
        {
            let mut state = shard.state.lock();
            for tx in &txs {
                let outcome = self.execute_on_shard(&mut state, &tx.tx.op, shard_id);
                let ok = match outcome {
                    ExecOutcome::Ok => true,
                    ExecOutcome::OkCrossShard(dest, credit) => {
                        self.cross_shard.fetch_add(1, Ordering::Relaxed);
                        self.relay_in[dest as usize].lock().push(credit);
                        // Cross-epoch relay traffic to one node of the
                        // destination shard.
                        let _ = kernel.net().send(
                            &node_name(shard_id, 0),
                            &node_name(dest, 0),
                            vec![0u8; 96],
                        );
                        true
                    }
                    ExecOutcome::Failed => false,
                };
                tx_ids.push(tx.id);
                valid.push(ok);
            }
        }

        if tx_ids.is_empty() {
            return None;
        }
        // Intra-shard block distribution from the shard leader.
        Some(Round {
            proposer: node_name(shard_id, 0),
            tx_ids,
            valid,
            gossip_to: (1..self.config.nodes_per_shard)
                .map(|i| node_name(shard_id, i))
                .collect(),
            mempool_depth: None,
        })
    }
}

/// Outcome of executing one transaction on its source shard.
enum ExecOutcome {
    Ok,
    OkCrossShard(u32, Credit),
    Failed,
}

impl MeepoPolicy {
    /// Executes `op` on its source shard; cross-shard transfers debit
    /// locally and emit a relay credit.
    fn execute_on_shard(&self, state: &mut VersionedState, op: &Op, shard_id: u32) -> ExecOutcome {
        let home = |a: &Address| self.shard_of(*a);
        match op {
            Op::SendPayment { from, to, amount } => {
                debug_assert_eq!(home(from), shard_id, "router sent tx to wrong shard");
                if home(to) == shard_id {
                    return match state.apply(op) {
                        Ok(_) => ExecOutcome::Ok,
                        Err(_) => ExecOutcome::Failed,
                    };
                }
                // Cross-shard: debit locally, relay the credit.
                match state.get(*from) {
                    Some(acct) if acct.checking >= *amount => {
                        state.force_write(*from, acct.checking - amount, acct.savings);
                        ExecOutcome::OkCrossShard(
                            home(to),
                            Credit {
                                account: *to,
                                amount: *amount,
                            },
                        )
                    }
                    _ => ExecOutcome::Failed,
                }
            }
            Op::Amalgamate { from, to } => {
                debug_assert_eq!(home(from), shard_id, "router sent tx to wrong shard");
                if home(to) == shard_id {
                    return match state.apply(op) {
                        Ok(_) => ExecOutcome::Ok,
                        Err(_) => ExecOutcome::Failed,
                    };
                }
                match state.get(*from) {
                    Some(acct) => {
                        let moved = acct.savings;
                        state.force_write(*from, acct.checking, 0);
                        ExecOutcome::OkCrossShard(
                            home(to),
                            Credit {
                                account: *to,
                                amount: moved,
                            },
                        )
                    }
                    None => ExecOutcome::Failed,
                }
            }
            single_shard => match state.apply(single_shard) {
                Ok(_) => ExecOutcome::Ok,
                Err(_) => ExecOutcome::Failed,
            },
        }
    }
}

/// Handle to a running Meepo simulation.
pub struct MeepoSim {
    node: Arc<ChainNode<MeepoPolicy>>,
}

impl_sim_handle!(MeepoSim);

impl MeepoSim {
    /// Starts the deployment: per-shard sealer threads and node endpoints
    /// on the kernel runtime.
    pub fn start(config: MeepoConfig, clock: SimClock, net: SimNetwork) -> Arc<Self> {
        assert!(config.shards >= 1 && config.nodes_per_shard >= 1);
        let mut builder = NodeKernelBuilder::new(clock, net)
            .mempool_capacity(config.mempool_capacity)
            .gossip_sizing(200, 110);
        for shard in 0..config.shards {
            for i in 0..config.nodes_per_shard {
                builder = builder.sink_endpoint(&node_name(shard, i));
            }
        }
        let relay_in = (0..config.shards).map(|_| Mutex::new(Vec::new())).collect();
        let node = builder.start(MeepoPolicy {
            config,
            relay_in,
            cross_shard: AtomicU64::new(0),
        });
        Arc::new(MeepoSim { node })
    }

    /// The shard an account lives on.
    pub fn shard_of(&self, account: Address) -> u32 {
        self.node.policy().shard_of(account)
    }

    /// Seeds an account on its home shard.
    pub fn seed_account(&self, account: Address, checking: u64, savings: u64) {
        SimChain::seed_account(&*self.node, account, checking, savings);
    }

    /// Reads an account from its home shard.
    pub fn account(&self, account: Address) -> Option<hammer_chain::state::AccountState> {
        SimChain::account(&*self.node, account)
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> MeepoStats {
        let stats = self.node.stats();
        MeepoStats {
            blocks: stats.blocks,
            committed: stats.committed,
            failed: stats.failed,
            cross_shard: self.node.policy().cross_shard.load(Ordering::Relaxed),
            bad_sig: stats.bad_sig,
        }
    }

    /// Sum of funds across every shard (conservation audits).
    pub fn total_funds(&self) -> u128 {
        self.node
            .kernel()
            .shards()
            .iter()
            .map(|s| s.state.lock().total_funds())
            .sum()
    }

    /// Per-shard committed block counts (shard-aware load reporting).
    pub fn shard_heights(&self) -> Vec<u64> {
        self.node
            .kernel()
            .shards()
            .iter()
            .map(|s| s.ledger.read().height())
            .collect()
    }

    /// Verifies every shard's hash chain.
    pub fn verify_ledgers(&self) -> Result<(), hammer_chain::ledger::LedgerError> {
        SimChain::verify_ledgers(&*self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_chain::client::BlockchainClient;
    use hammer_chain::types::Transaction;
    use hammer_crypto::Keypair;
    use hammer_net::LinkConfig;

    fn fast_chain(config: MeepoConfig) -> Arc<MeepoSim> {
        let clock = SimClock::with_speedup(1000.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
        MeepoSim::start(config, clock, net)
    }

    fn signed(nonce: u64, op: Op) -> SignedTransaction {
        Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op,
            chain_name: "meepo-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
        }
        .sign(&Keypair::from_seed(6), &SigParams::fast())
    }

    fn wait_until(pred: impl Fn() -> bool, wall_ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(wall_ms);
        while std::time::Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    /// Finds addresses on specific shards (2-shard default config).
    fn addr_on_shard(shard: u64, salt: u64) -> Address {
        let mut i = salt;
        loop {
            let a = Address::from_name(&format!("acct-{i}"));
            if a.as_u64() % 2 == shard {
                return a;
            }
            i += 1;
        }
    }

    #[test]
    fn intra_shard_transfer_commits() {
        let chain = fast_chain(MeepoConfig::default());
        let a = addr_on_shard(0, 0);
        let b = addr_on_shard(0, 100);
        assert_ne!(a, b);
        chain.seed_account(a, 100, 0);
        chain.seed_account(b, 0, 0);
        chain
            .submit(signed(
                1,
                Op::SendPayment {
                    from: a,
                    to: b,
                    amount: 30,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().committed == 1, 8000));
        assert_eq!(chain.account(a).unwrap().checking, 70);
        assert_eq!(chain.account(b).unwrap().checking, 30);
        assert_eq!(chain.stats().cross_shard, 0);
        chain.shutdown();
    }

    #[test]
    fn cross_shard_transfer_settles_next_epoch() {
        let chain = fast_chain(MeepoConfig::default());
        let a = addr_on_shard(0, 0);
        let b = addr_on_shard(1, 200);
        chain.seed_account(a, 100, 0);
        chain.seed_account(b, 5, 0);
        let before = chain.total_funds();
        chain
            .submit(signed(
                1,
                Op::SendPayment {
                    from: a,
                    to: b,
                    amount: 40,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().cross_shard == 1, 8000));
        // Debit is immediate; the credit lands at the destination's next
        // epoch.
        assert_eq!(chain.account(a).unwrap().checking, 60);
        assert!(wait_until(
            || chain.account(b).unwrap().checking == 45,
            8000
        ));
        assert_eq!(chain.total_funds(), before);
        chain.shutdown();
    }

    #[test]
    fn cross_shard_amalgamate_settles() {
        let chain = fast_chain(MeepoConfig::default());
        let a = addr_on_shard(0, 0);
        let b = addr_on_shard(1, 200);
        chain.seed_account(a, 10, 70);
        chain.seed_account(b, 1, 0);
        chain
            .submit(signed(1, Op::Amalgamate { from: a, to: b }))
            .unwrap();
        assert!(wait_until(|| chain.stats().cross_shard == 1, 8000));
        assert_eq!(chain.account(a).unwrap().savings, 0);
        assert!(wait_until(
            || chain.account(b).unwrap().checking == 71,
            8000
        ));
        chain.shutdown();
    }

    #[test]
    fn insufficient_funds_cross_shard_fails_without_relay() {
        let chain = fast_chain(MeepoConfig::default());
        let a = addr_on_shard(0, 0);
        let b = addr_on_shard(1, 200);
        chain.seed_account(a, 10, 0);
        chain.seed_account(b, 0, 0);
        chain
            .submit(signed(
                1,
                Op::SendPayment {
                    from: a,
                    to: b,
                    amount: 999,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().failed == 1, 8000));
        assert_eq!(chain.stats().cross_shard, 0);
        assert_eq!(chain.account(a).unwrap().checking, 10);
        chain.shutdown();
    }

    #[test]
    fn txs_route_to_home_shard_block() {
        let chain = fast_chain(MeepoConfig::default());
        let a0 = addr_on_shard(0, 0);
        let a1 = addr_on_shard(1, 300);
        chain.seed_account(a0, 100, 0);
        chain.seed_account(a1, 100, 0);
        let id0 = chain
            .submit(signed(
                1,
                Op::DepositChecking {
                    account: a0,
                    amount: 1,
                },
            ))
            .unwrap();
        let id1 = chain
            .submit(signed(
                2,
                Op::DepositChecking {
                    account: a1,
                    amount: 1,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().committed == 2, 8000));
        let b0 = chain.block_at(0, 1).unwrap().unwrap();
        let b1 = chain.block_at(1, 1).unwrap().unwrap();
        assert!(b0.tx_ids.contains(&id0));
        assert!(b1.tx_ids.contains(&id1));
        assert_eq!(b0.header.shard, 0);
        assert_eq!(b1.header.shard, 1);
        chain.shutdown();
    }

    #[test]
    fn unknown_shard_query_rejected() {
        let chain = fast_chain(MeepoConfig::default());
        assert_eq!(chain.latest_height(5).unwrap_err().shard(), Some(5));
        chain.shutdown();
    }

    #[test]
    fn shard_leader_crash_only_affects_its_shard() {
        use hammer_net::FaultPlan;
        let chain = fast_chain(MeepoConfig {
            epoch_interval: Duration::from_millis(200),
            ..MeepoConfig::default()
        });
        chain.node.net().install_faults(FaultPlan::new().crash(
            "meepo-s0-node-0",
            Duration::ZERO,
            Duration::from_secs(3600),
        ));
        let a0 = addr_on_shard(0, 7);
        let a1 = addr_on_shard(1, 7);
        chain.seed_account(a0, 1000, 0);
        chain.seed_account(a1, 1000, 0);
        // Shard 0 ingress is down...
        let err = chain
            .submit(signed(
                1,
                Op::DepositChecking {
                    account: a0,
                    amount: 1,
                },
            ))
            .unwrap_err();
        assert!(err.is_unavailable());
        // ...while shard 1 keeps accepting and committing.
        chain
            .submit(signed(
                2,
                Op::DepositChecking {
                    account: a1,
                    amount: 1,
                },
            ))
            .unwrap();
        assert!(wait_until(|| chain.stats().committed >= 1, 5000));
        assert_eq!(chain.latest_height(0).unwrap(), 0);
        chain.shutdown();
    }

    #[test]
    fn sharded_architecture_reported() {
        let chain = fast_chain(MeepoConfig::default());
        assert_eq!(chain.architecture(), Architecture::Sharded { shards: 2 });
        chain.shutdown();
    }

    #[test]
    fn conservation_under_mixed_load() {
        let chain = fast_chain(MeepoConfig {
            epoch_interval: Duration::from_millis(200),
            ..MeepoConfig::default()
        });
        let accounts: Vec<Address> = (0..10).map(|i| addr_on_shard(i % 2, i * 50)).collect();
        for a in &accounts {
            chain.seed_account(*a, 1000, 500);
        }
        let before = chain.total_funds();
        let mut n = 0;
        for i in 0..40u64 {
            let from = accounts[(i % 10) as usize];
            let to = accounts[((i * 3 + 1) % 10) as usize];
            if from == to {
                continue;
            }
            chain
                .submit(signed(
                    i,
                    Op::SendPayment {
                        from,
                        to,
                        amount: 7,
                    },
                ))
                .unwrap();
            n += 1;
        }
        assert!(wait_until(
            || {
                let s = chain.stats();
                s.committed + s.failed >= n
            },
            10_000
        ));
        // Let relays settle: wait until funds balance again.
        assert!(wait_until(|| chain.total_funds() == before, 10_000));
        chain.verify_ledgers().unwrap();
        chain.shutdown();
    }

    #[test]
    fn per_shard_heights_reported() {
        let chain = fast_chain(MeepoConfig::default());
        assert_eq!(chain.shard_heights().len(), 2);
        chain.shutdown();
    }

    #[test]
    fn reports_roles_for_fault_targeting() {
        let chain = fast_chain(MeepoConfig::default());
        assert_eq!(
            SimChain::ingress_nodes(&*chain),
            vec!["meepo-s0-node-0", "meepo-s1-node-0"]
        );
        assert_eq!(
            SimChain::sealer_nodes(&*chain),
            vec!["meepo-s0-node-0", "meepo-s1-node-0"]
        );
        chain.shutdown();
    }
}
