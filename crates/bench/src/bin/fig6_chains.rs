//! **Fig. 6** — Throughput and latency of the four blockchains under the
//! SmallBank workload.
//!
//! Paper numbers (5-node Aliyun testbed): Ethereum 18.6 TPS / 4.8 s
//! latency (a private PoW net with short blocks), Fabric ~239 TPS,
//! Meepo mid-range TPS with high latency, Neuchain 8 688 TPS with low
//! latency. The shape to reproduce:
//! `Neuchain ≫ Meepo > Fabric ≫ Ethereum` on TPS, Ethereum worst latency.
//!
//! Each chain is driven just above its capacity so measured TPS is its
//! peak without building an unbounded backlog. Speed-ups are tuned per
//! chain so the real CPU the simulators burn (PoW hashing, signature
//! verification) fits inside the simulated-time budget.

use std::time::Duration;

use bench::{save_csv, summary_header, summary_row, RunSpec};
use hammer_core::deploy::ChainSpec;
use hammer_ethereum::EthereumConfig;
use hammer_store::report::{render_bars, render_table, to_csv};

fn main() {
    println!("=== Fig. 6: throughput & latency of different blockchains (SmallBank) ===\n");

    // Private-net Ethereum (the paper's testbed): 5 s PoW blocks,
    // 2 M gas => ~95 txs/block => ~19 TPS ceiling.
    let ethereum = ChainSpec::Ethereum(EthereumConfig {
        block_interval: Duration::from_secs(5),
        block_gas_limit: 2_000_000,
        ..EthereumConfig::default()
    });

    // (spec, rate tx/s, seconds, speedup): rates ~10% above each system's
    // capacity; Ethereum gets a long window to average over PoW blocks.
    // The other three run at their registry defaults, selected by name.
    let by_name = |name| ChainSpec::by_name(name).expect("registered backend");
    let runs = vec![
        (ethereum, 17u32, 240usize, 400.0),
        (by_name("fabric-sim"), 245, 60, 100.0),
        (by_name("meepo-sim"), 3_300, 30, 10.0),
        (by_name("neuchain-sim"), 9_000, 20, 5.0),
    ];

    let mut rows = Vec::new();
    let mut tps_points = Vec::new();
    let mut lat_points = Vec::new();
    for (chain, rate, seconds, speedup) in runs {
        let name = chain.name().to_owned();
        eprintln!("running {name} at {rate} tx/s for {seconds}s (sim, {speedup}x)...");
        let mut spec = RunSpec::peak(chain, rate, seconds);
        spec.speedup = speedup;
        // A realistically sized SmallBank pool keeps incidental MVCC
        // conflicts on Fabric at the few-percent level seen in practice.
        spec.accounts = 30_000;
        let report = spec.run();
        if report.per_shard_committed.len() > 1 {
            eprintln!(
                "  shard-aware load report: {:?}",
                report.per_shard_committed
            );
        }
        tps_points.push((name.clone(), report.overall_tps));
        lat_points.push((name.clone(), report.latency.mean_s));
        rows.push(summary_row(&report));
    }

    println!("{}", render_table(&summary_header(), &rows));
    println!("{}", render_bars("Peak throughput (TPS)", &tps_points, 50));
    println!(
        "{}",
        render_bars("Mean commit latency (s)", &lat_points, 50)
    );

    save_csv("fig6_chains", &to_csv(&summary_header(), &rows));

    println!("Paper reference: Ethereum 18.6 TPS (worst, latency 4.8s);");
    println!("Neuchain 8688 TPS (best, lowest latency); Meepo between, high latency.");
}
