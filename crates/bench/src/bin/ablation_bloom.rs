//! **Ablation (§III-C)** — the Bloom filter's value in distributed
//! testing.
//!
//! In a multi-server deployment, blocks contain transactions submitted by
//! *other* driver servers; matching those against the local vector list is
//! pure waste. The paper puts a Bloom filter in front of the hash index to
//! "significantly save time and bring some other benefits in distributed
//! testing". This ablation sweeps the foreign-transaction fraction and
//! measures matching time three ways:
//!
//! * Hammer task processing (Bloom + hash index),
//! * the same index *without* the Bloom filter,
//! * the Blockbench batch queue (every foreign transaction scans the whole
//!   queue — the O(n) worst case).

use std::time::{Duration, Instant};

use bench::save_csv;
use hammer_chain::smallbank::Op;
use hammer_chain::types::{Transaction, TxId};
use hammer_core::baseline::BatchQueue;
use hammer_core::index::TxTable;
use hammer_store::report::{render_table, to_csv};

fn tx_ids(range: std::ops::Range<u64>) -> Vec<TxId> {
    range
        .map(|nonce| {
            Transaction {
                client_id: 0,
                server_id: 0,
                nonce,
                op: Op::KvGet { key: nonce },
                chain_name: "bench".to_owned(),
                contract_name: "kv".to_owned(),
            }
            .id()
        })
        .collect()
}

fn main() {
    println!("=== Ablation: Bloom filter under distributed (foreign-tx) load ===\n");

    let local_n = 50_000u64;
    let block_m = 10_000usize;
    let local = tx_ids(0..local_n);
    let foreign_pool = tx_ids(1_000_000..1_000_000 + block_m as u64);

    let mut rows = Vec::new();
    for foreign_pct in [0usize, 25, 50, 75, 90] {
        // Build the block: `foreign_pct`% foreign txs, rest local (the
        // most recently inserted — worst case for the scan baseline).
        let n_foreign = block_m * foreign_pct / 100;
        let n_local = block_m - n_foreign;
        let mut block: Vec<TxId> = Vec::with_capacity(block_m);
        block.extend_from_slice(&foreign_pool[..n_foreign]);
        block.extend_from_slice(&local[local.len() - n_local..]);

        // Bloom + index.
        let mut with_bloom = TxTable::with_capacity(local_n as usize);
        for id in &local {
            with_bloom.insert(*id, 0, 0, Duration::ZERO);
        }
        let start = Instant::now();
        let matched: usize = block
            .iter()
            .filter(|id| with_bloom.complete(id, Duration::from_secs(1), true))
            .count();
        let bloom_time = start.elapsed();
        assert_eq!(matched, n_local);

        // Index only.
        let mut without_bloom = TxTable::with_capacity_and_bloom(local_n as usize, false);
        for id in &local {
            without_bloom.insert(*id, 0, 0, Duration::ZERO);
        }
        let start = Instant::now();
        let matched: usize = block
            .iter()
            .filter(|id| without_bloom.complete(id, Duration::from_secs(1), true))
            .count();
        let nobloom_time = start.elapsed();
        assert_eq!(matched, n_local);

        // Batch queue.
        let mut queue = BatchQueue::new();
        for id in &local {
            queue.insert(*id, 0, 0, Duration::ZERO);
        }
        let start = Instant::now();
        let matched: usize = block
            .iter()
            .filter(|id| queue.complete(id, Duration::from_secs(1), true))
            .count();
        let queue_time = start.elapsed();
        assert_eq!(matched, n_local);

        rows.push(vec![
            format!("{foreign_pct}%"),
            format!("{:.3}", bloom_time.as_secs_f64() * 1e3),
            format!("{:.3}", nobloom_time.as_secs_f64() * 1e3),
            format!("{:.1}", queue_time.as_secs_f64() * 1e3),
            format!("{}", with_bloom.stats().bloom_rejections),
        ]);
    }

    let header = [
        "foreign_txs",
        "bloom+index_ms",
        "index_only_ms",
        "batch_queue_ms",
        "bloom_rejections",
    ];
    println!("{}", render_table(&header, &rows));
    save_csv("ablation_bloom", &to_csv(&header, &rows));
    println!("Finding: the batch queue degrades catastrophically as foreign");
    println!("transactions rise (each one scans all 50k entries); the hash index");
    println!("stays flat with or without the Bloom front. Against this tight");
    println!("open-addressing index, a miss already terminates in ~1.5 probes,");
    println!("so the filter is cost-neutral; its value appears when the index");
    println!("lookup is expensive (remote store, chained buckets) — the setting");
    println!("the paper's distributed deployment implies. See EXPERIMENTS.md.");
}
