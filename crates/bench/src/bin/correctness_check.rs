//! **§V-C Correctness** — driver statistics vs node-side ground truth.
//!
//! The paper pushes 100 000 transactions through Fabric at 600 TPS, then
//! compares Hammer's statistics against a log analysis of the peer nodes.
//! Here the "log analysis" reads the simulator's own ledger and counters —
//! the equivalent ground truth — and both sides must agree exactly:
//!
//! * every transaction the driver recorded as committed appears exactly
//!   once on the ledger with a valid flag;
//! * the chain's committed/conflict counters match the driver's totals;
//! * the hash chain verifies end to end.

use std::collections::HashMap;
use std::time::Duration;

use hammer_chain::types::TxStatus;
use hammer_core::deploy::{ChainSpec, Deployment};
use hammer_core::driver::{EvalConfig, Evaluation};
use hammer_core::machine::ClientMachine;
use hammer_fabric::FabricConfig;
use hammer_workload::{ControlSequence, WorkloadConfig};

fn main() {
    // Defaults follow the paper (100k @ 600 TPS). Override the total with
    // the first CLI argument for quicker runs.
    let total: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let rate = 600u32;
    let seconds = total.div_ceil(rate as usize);
    println!("=== §V-C correctness check: {total} txs at {rate} TPS on Fabric ===\n");

    // The audit is about *accounting*, not peak throughput: configure the
    // Fabric sim so 600 TPS flows without backlog (validation 1 ms/tx =>
    // ~1000 TPS ceiling), exactly as the paper's correctness run assumes.
    let deployment = Deployment::up(
        ChainSpec::Fabric(FabricConfig {
            validate_cost: Duration::from_millis(1),
            inbox_capacity: 50_000,
            ..FabricConfig::default()
        }),
        200.0,
    );
    let workload = WorkloadConfig {
        accounts: 10_000,
        clients: 4,
        threads_per_client: 2,
        chain_name: "fabric-sim".to_owned(),
        ..WorkloadConfig::default()
    };
    let control = ControlSequence::constant(rate, seconds, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .drain_timeout(Duration::from_secs(120))
        .build()
        .expect("valid config");
    let report = Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("run failed");

    println!(
        "driver: submitted={} committed={} failed={} timed_out={} rejected={}",
        report.submitted, report.committed, report.failed, report.timed_out, report.rejected
    );

    // "Log analysis": walk the ledger.
    let chain = deployment.client();
    let height = chain.latest_height(0).expect("height");
    let mut ledger_status: HashMap<_, bool> = HashMap::new();
    for h in 1..=height {
        let block = chain.block_at(0, h).expect("block").expect("present");
        assert!(block.verify_merkle_root(), "merkle root broken at {h}");
        for (tx_id, ok) in block.entries() {
            let duplicate = ledger_status.insert(tx_id, ok).is_some();
            assert!(!duplicate, "tx {tx_id} appears twice on the ledger");
        }
    }
    println!(
        "ledger: {height} blocks, {} transactions",
        ledger_status.len()
    );

    // Cross-check every driver record against the ledger.
    let mut mismatches = 0usize;
    for record in &report.records {
        match (record.status, ledger_status.get(&record.tx_id)) {
            (TxStatus::Committed, Some(true)) => {}
            (TxStatus::Failed, Some(false)) => {}
            (TxStatus::Failed, None) => {} // driver-side rejection
            (TxStatus::TimedOut, None) => {}
            // A timed-out record that *is* on the ledger means the drain
            // deadline fired before the block was polled — report it.
            (status, on_ledger) => {
                mismatches += 1;
                if mismatches <= 5 {
                    eprintln!(
                        "mismatch: {} driver={status:?} ledger={on_ledger:?}",
                        record.tx_id
                    );
                }
            }
        }
    }

    println!(
        "cross-check: {mismatches} mismatches across {} records",
        report.records.len()
    );
    assert_eq!(mismatches, 0, "driver statistics diverge from node logs");
    println!("\nPASS: driver statistics match the node-side ground truth exactly.");
}
