//! **Table III** — Prediction-model comparison on the three datasets.
//!
//! Trains Linear, RNN, TCN, Transformer, and the paper's TCN+BiGRU+MHA
//! model on the synthetic DeFi/Sandbox/NFT traces and reports
//! MAE / MSE / RMSE / R² on a held-out chronological test split.
//! Metrics are on the normalised scale (scale-free, comparable across the
//! three very different count magnitudes — the paper's table mixes scales
//! similarly).
//!
//! Expected shape: "Ours" achieves the lowest MAE on every dataset; the
//! Transformer underperforms on this data volume.

use bench::save_csv;
use hammer_predict::models::all_models;
use hammer_predict::{evaluate, Dataset, TrainConfig};
use hammer_store::report::{render_table, to_csv};
use hammer_workload::traces::{TraceKind, TraceSpec};

fn main() {
    println!("=== Table III: model comparison on DeFi / Sandbox / NFTs ===\n");
    let config = TrainConfig::default();
    println!(
        "window = {}, epochs <= {}, lr = {}, MAE loss, Adam\n",
        config.window, config.epochs, config.lr
    );

    let mut rows = Vec::new();
    for kind in TraceKind::all() {
        let series = TraceSpec::paper(kind, 1).generate();
        let dataset = Dataset::new(&series, config.window, 0.8);
        for mut model in all_models(&config) {
            eprintln!("training {} on {}...", model.name(), kind.name());
            let train_loss = model.fit(&dataset.train, &config);
            let samples = dataset.test_samples();
            let mut predictions = Vec::with_capacity(samples.len());
            let mut targets = Vec::with_capacity(samples.len());
            for (window, target) in &samples {
                predictions.push(model.predict_next(window));
                targets.push(*target);
            }
            let metrics = evaluate(&predictions, &targets);
            rows.push(vec![
                kind.name().to_owned(),
                model.name().to_owned(),
                format!("{:.3}", metrics.mae),
                format!("{:.3}", metrics.mse),
                format!("{:.3}", metrics.rmse),
                format!("{:.4}", metrics.r2),
                format!("{train_loss:.4}"),
            ]);
        }
    }

    let header = [
        "dataset",
        "method",
        "MAE",
        "MSE",
        "RMSE",
        "R2",
        "train_loss",
    ];
    println!("{}", render_table(&header, &rows));
    save_csv("table3_models", &to_csv(&header, &rows));

    println!("Paper reference (raw-count scale): Ours beats Linear/RNN/TCN/");
    println!("Transformer on MAE for all three datasets (>56% lower), with R2");
    println!("close to 1 on Sandbox/NFTs and weakest results on the small DeFi set.");
}
