//! **Fig. 8** — Workload generation time: serial vs asynchronous pipeline.
//!
//! The paper reports ≈6.88× speed-up for asynchronous signatures combined
//! with pipelined preparation/execution over naive serial generation,
//! measured on a multi-core client. This reproduction measures the same
//! three strategies as *simulated-time makespans*: each signature costs a
//! fixed amount of modelled client CPU (2 ms — an ECDSA-class signature on
//! a weak cloud core, paid via the simulation clock so concurrency
//! behaves like a multi-core client even on a single-core CI host), and
//! the execution phase pays a smaller per-transaction ingestion cost.
//!
//! * **Serial** — one thread signs everything, then execution ingests
//!   everything (Fig. 4a).
//! * **Async** — a pool signs concurrently; execution still waits for the
//!   whole batch (Fig. 4b).
//! * **Async Pipeline** — signed transactions stream into execution as
//!   they are produced (Fig. 4c).
//!
//! Real-crypto wall-clock numbers (host-core dependent) live in the
//! Criterion bench: `cargo bench -p bench --bench signing`.

use std::time::Duration;

use bench::save_csv;
use crossbeam::channel::bounded;
use hammer_chain::types::{SignedTransaction, Transaction};
use hammer_crypto::sig::SigParams;
use hammer_crypto::Keypair;
use hammer_net::SimClock;
use hammer_store::report::{render_table, to_csv};
use hammer_workload::{SmallBankGenerator, WorkloadConfig};

/// Modelled client CPU per signature.
const SIGN_COST: Duration = Duration::from_millis(2);
/// Modelled execution-side ingestion cost per transaction.
const CONSUME_COST: Duration = Duration::from_micros(330);
/// Signer pool width (the client's core count in the paper's setup).
const SIGNER_THREADS: usize = 8;

fn make_batch(n: usize) -> Vec<Transaction> {
    SmallBankGenerator::new(WorkloadConfig {
        accounts: 1_000,
        total_txs: n,
        ..WorkloadConfig::default()
    })
    .generate_all()
}

/// Accumulates modelled CPU cost and pays it with plain OS sleeps,
/// tracking a *signed* debt: the OS's coarse timer granularity makes each
/// sleep overshoot, and the overshoot is credited against future charges,
/// so long-run makespans are exact without any busy-waiting (which on a
/// single-core host would starve the other pipeline stages).
struct CostMeter {
    clock: SimClock,
    /// Outstanding simulated nanoseconds; negative = slept ahead.
    debt_ns: i128,
}

impl CostMeter {
    /// Pay once the debt reaches this much simulated time.
    const CHUNK_NS: i128 = 8_000_000; // 8 ms

    fn new(clock: &SimClock) -> Self {
        CostMeter {
            clock: clock.clone(),
            debt_ns: 0,
        }
    }

    fn pay(&mut self) {
        let owed = Duration::from_nanos(self.debt_ns as u64);
        let start = std::time::Instant::now();
        std::thread::sleep(self.clock.to_wall(owed));
        let slept_sim = self.clock.to_sim(start.elapsed());
        self.debt_ns -= slept_sim.as_nanos() as i128;
    }

    fn charge(&mut self, cost: Duration) {
        self.debt_ns += cost.as_nanos() as i128;
        if self.debt_ns >= Self::CHUNK_NS {
            self.pay();
        }
    }

    fn settle(&mut self) {
        if self.debt_ns > 0 {
            self.pay();
        }
    }
}

fn sign_one(
    meter: &mut CostMeter,
    tx: Transaction,
    kp: &Keypair,
    params: &SigParams,
) -> SignedTransaction {
    meter.charge(SIGN_COST);
    tx.sign(kp, params)
}

fn consume(meter: &mut CostMeter, _tx: &SignedTransaction) {
    meter.charge(CONSUME_COST);
}

/// Serial baseline: sign all, then consume all, on one thread.
fn serial_makespan(
    clock: &SimClock,
    batch: Vec<Transaction>,
    kp: &Keypair,
    p: &SigParams,
) -> Duration {
    let start = clock.now();
    let mut meter = CostMeter::new(clock);
    let signed: Vec<SignedTransaction> = batch
        .into_iter()
        .map(|tx| sign_one(&mut meter, tx, kp, p))
        .collect();
    for tx in &signed {
        consume(&mut meter, tx);
    }
    meter.settle();
    clock.now() - start
}

/// Async signatures: a pool signs concurrently; execution waits for all.
fn async_makespan(
    clock: &SimClock,
    batch: Vec<Transaction>,
    kp: &Keypair,
    p: &SigParams,
) -> Duration {
    let start = clock.now();
    let signed = pooled_sign(clock, batch, kp, p, None);
    let mut meter = CostMeter::new(clock);
    for tx in &signed {
        consume(&mut meter, tx);
    }
    meter.settle();
    clock.now() - start
}

/// Async + pipeline: the consumer drains a channel while the pool signs.
fn pipeline_makespan(
    clock: &SimClock,
    batch: Vec<Transaction>,
    kp: &Keypair,
    p: &SigParams,
) -> Duration {
    let start = clock.now();
    let (out_tx, out_rx) = bounded::<SignedTransaction>(4096);
    std::thread::scope(|scope| {
        let n = batch.len();
        let chunk = n.div_ceil(SIGNER_THREADS).max(1);
        let mut batch = batch;
        for _ in 0..SIGNER_THREADS {
            if batch.is_empty() {
                break;
            }
            let take = chunk.min(batch.len());
            let part: Vec<Transaction> = batch.drain(..take).collect();
            let out = out_tx.clone();
            let clock = clock.clone();
            scope.spawn(move || {
                let mut meter = CostMeter::new(&clock);
                for tx in part {
                    let signed = sign_one(&mut meter, tx, kp, p);
                    if out.send(signed).is_err() {
                        return;
                    }
                }
                meter.settle();
            });
        }
        drop(out_tx);
        let mut meter = CostMeter::new(clock);
        for tx in out_rx {
            consume(&mut meter, &tx);
        }
        meter.settle();
    });
    clock.now() - start
}

/// Signs on the pool and returns everything (barrier at the end).
fn pooled_sign(
    clock: &SimClock,
    batch: Vec<Transaction>,
    kp: &Keypair,
    p: &SigParams,
    _marker: Option<()>,
) -> Vec<SignedTransaction> {
    let mut out: Vec<SignedTransaction> = Vec::with_capacity(batch.len());
    std::thread::scope(|scope| {
        let n = batch.len();
        let chunk = n.div_ceil(SIGNER_THREADS).max(1);
        let mut batch = batch;
        let mut handles = Vec::new();
        while !batch.is_empty() {
            let take = chunk.min(batch.len());
            let part: Vec<Transaction> = batch.drain(..take).collect();
            let clock = clock.clone();
            handles.push(scope.spawn(move || {
                let mut meter = CostMeter::new(&clock);
                let signed: Vec<SignedTransaction> = part
                    .into_iter()
                    .map(|tx| sign_one(&mut meter, tx, kp, p))
                    .collect();
                meter.settle();
                signed
            }));
        }
        for h in handles {
            out.extend(h.join().expect("signer panicked"));
        }
    });
    out
}

fn main() {
    println!("=== Fig. 8: workload generation — serial vs async vs async pipeline ===\n");
    println!(
        "model: {SIGNER_THREADS}-thread signer pool, {} ms simulated CPU per signature,",
        SIGN_COST.as_millis()
    );
    println!(
        "{} us ingestion per transaction; makespans in simulated time\n",
        CONSUME_COST.as_micros()
    );

    let params = SigParams::fast();
    let keypair = Keypair::from_seed(1);
    // Modest speed-up: each modelled 2 ms signature occupies ~130 us of
    // wall time, so the real crypto (~3 us) cannot distort concurrency
    // even with 9 threads sharing one host core.
    let clock = SimClock::with_speedup(15.0);

    let sizes = [10_000usize, 25_000, 50_000, 100_000];
    let mut rows = Vec::new();
    for &n in &sizes {
        eprintln!("batch of {n}...");
        let serial = serial_makespan(&clock, make_batch(n), &keypair, &params);
        let asynchronous = async_makespan(&clock, make_batch(n), &keypair, &params);
        let pipelined = pipeline_makespan(&clock, make_batch(n), &keypair, &params);

        let speedup_async = serial.as_secs_f64() / asynchronous.as_secs_f64();
        let speedup_pipe = serial.as_secs_f64() / pipelined.as_secs_f64();
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", serial.as_secs_f64()),
            format!("{:.2}", asynchronous.as_secs_f64()),
            format!("{:.2}", pipelined.as_secs_f64()),
            format!("{speedup_async:.2}x"),
            format!("{speedup_pipe:.2}x"),
        ]);
    }

    let header = [
        "txs",
        "serial_s",
        "async_s",
        "async_pipeline_s",
        "async_speedup",
        "pipeline_speedup",
    ];
    println!("{}", render_table(&header, &rows));
    save_csv("fig8_pipeline", &to_csv(&header, &rows));
    println!("Paper reference: Asynchronous Pipeline ~ 6.88x over Serial.");
}
