//! **Fig. 1** — Temporal distribution of real workloads.
//!
//! The paper plots 300 hours of DeFi, NFT and Sandbox-game transaction
//! rates to motivate temporal workload modelling. This binary generates
//! the synthetic equivalents (matched totals and temporal character; see
//! DESIGN.md substitution table), prints their statistics and line charts,
//! and saves the raw series as CSV.

use hammer_store::report::{render_series, render_table, to_csv};
use hammer_workload::traces::{trace_stats, TraceKind, TraceSpec};

fn main() {
    println!("=== Fig. 1: temporal distribution of (synthetic) real workloads ===\n");

    let mut rows = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut all_series = Vec::new();

    for kind in TraceKind::all() {
        let series = TraceSpec::paper(kind, 1).generate();
        let stats = trace_stats(&series);
        rows.push(vec![
            kind.name().to_owned(),
            format!("{}", kind.paper_total()),
            format!("{:.0}", stats.total),
            format!("{:.1}", stats.mean),
            format!("{:.2}", stats.cv),
            format!("{:.2}", stats.peak_to_mean),
        ]);
        all_series.push((kind, series));
    }

    println!(
        "{}",
        render_table(
            &[
                "application",
                "paper_total",
                "total",
                "mean/h",
                "cv",
                "peak/mean"
            ],
            &rows
        )
    );

    for (kind, series) in &all_series {
        println!(
            "{}",
            render_series(&format!("{} — hourly tx count", kind.name()), series, 10)
        );
    }

    // CSV: hour, defi, sandbox, nft.
    let hours = all_series[0].1.len();
    for h in 0..hours {
        csv_rows.push(vec![
            h.to_string(),
            format!("{}", all_series[0].1[h]),
            format!("{}", all_series[1].1[h]),
            format!("{}", all_series[2].1[h]),
        ]);
    }
    bench::save_csv(
        "fig1_traces",
        &to_csv(&["hour", "defi", "sandbox", "nft"], &csv_rows),
    );

    println!("\nExpected shape (paper): Sandbox least stable; DeFi/NFT more stable;");
    println!("all three show bursts and periodic structure.");
}
