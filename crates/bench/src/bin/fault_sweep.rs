//! **Fault sweep** — SmallBank on all four chain simulators under three
//! scripted fault scenarios, with the resilient submission path enabled.
//!
//! Scenarios (the fault window is `[3 s, 5 s)` of a 10 s run):
//!
//! * `none` — no fault plan installed. With no faults the retry machinery
//!   is inert, so `retried`/`dropped`/`expired` must all be zero and the
//!   committed count is identical to a run without a [`RetryPolicy`]
//!   (the driver's one-shot path).
//! * `blackhole` — the chain's ingress endpoint silently drops all
//!   traffic for the window. Submissions see transient timeouts; the
//!   retry policy rides most of them out, the rest expire.
//! * `crash-restart` — the nodes that gate ingress *and* block
//!   production are down for the window, then come back. Per-window
//!   stats show the degraded interval instead of one blended number.
//!
//! ```text
//! cargo run --release --bin fault_sweep
//! ```
//!
//! Emits a JSON snapshot to `target/bench-results/fault_sweep.json`.

use std::fmt::Write as _;
use std::time::Duration;

use hammer_core::deploy::{ChainSpec, Deployment};
use hammer_core::driver::{EvalConfig, EvalReport, Evaluation};
use hammer_core::machine::ClientMachine;
use hammer_core::retry::RetryPolicy;
use hammer_ethereum::EthereumConfig;
use hammer_net::{FaultPlan, LinkConfig, SimClock, SimNetwork};
use hammer_store::report::render_table;
use hammer_workload::{ControlSequence, WorkloadConfig};

/// Run length in simulated seconds.
const RUN_SECONDS: usize = 10;
/// Fault window, simulated time since run start.
const WINDOW_START: Duration = Duration::from_secs(3);
const WINDOW_END: Duration = Duration::from_secs(5);

const SCENARIOS: [&str; 3] = ["none", "blackhole", "crash-restart"];

/// The fault targets, discovered from the running chain instead of a
/// per-chain match: the first ingress endpoint gates `submit` for the
/// blackhole scenario; crash-restart additionally takes down the first
/// sealer so block production halts too. Sharded chains (Meepo) report
/// one ingress/sealer pair per shard, so crashing the first crashes only
/// shard 0 and shard 1 keeps committing through the window (the per-shard
/// degradation the paper's sharded experiments care about).
fn plan_for(chain: &dyn hammer_chain::kernel::SimChain, scenario: &str) -> Option<FaultPlan> {
    let ingress = chain.ingress_nodes();
    let sealers = chain.sealer_nodes();
    let ingress = ingress.first().expect("every chain reports ingress");
    let sealer = sealers.first().expect("every chain reports a sealer");
    match scenario {
        "none" => None,
        "blackhole" => Some(FaultPlan::new().blackhole(ingress, WINDOW_START, WINDOW_END)),
        "crash-restart" => {
            let mut plan = FaultPlan::new().crash(ingress, WINDOW_START, WINDOW_END);
            if sealer != ingress {
                plan = plan.crash(sealer, WINDOW_START, WINDOW_END);
            }
            Some(plan)
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

/// One evaluation: deploy on a fresh seeded network, discover the fault
/// targets from the chain's reported roles, install the plan (the window
/// opens at 3 s of simulated time, long after installation), and run
/// SmallBank with the standard retry policy.
fn run_one(chain: &ChainSpec, scenario: &str, rate: u32, speedup: f64) -> EvalReport {
    let clock = SimClock::with_speedup(speedup);
    let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
    let deployment = Deployment::up_on(chain.clone(), clock, net.clone());
    if let Some(plan) = plan_for(&**deployment.chain(), scenario) {
        net.install_faults(plan);
    }
    let workload = WorkloadConfig {
        accounts: 10_000,
        chain_name: chain.name().to_owned(),
        ..WorkloadConfig::default()
    };
    let control = ControlSequence::constant(rate, RUN_SECONDS, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .retry(RetryPolicy::standard())
        .drain_timeout(Duration::from_secs(60))
        .build()
        .expect("valid fault-sweep config");
    Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("evaluation failed")
}

/// Appends one run as a JSON object. Everything report-shaped now comes
/// from [`EvalReport::to_json`] (fault windows included); only the
/// scenario tag is sweep-specific.
fn push_json_run(out: &mut String, report: &EvalReport, scenario: &str) {
    let _ = write!(
        out,
        "    {{\"scenario\": \"{scenario}\", \"report\": {}}}",
        report.to_json()
    );
}

fn main() {
    println!("=== Fault sweep: SmallBank under scripted faults (all four sims) ===");
    println!(
        "fault window [{}s, {}s) of a {RUN_SECONDS}s run; RetryPolicy::standard()\n",
        WINDOW_START.as_secs(),
        WINDOW_END.as_secs()
    );

    // Private-net Ethereum with short blocks, as in the Fig. 6 testbed —
    // the 15 s PoW default would give the 2 s window nothing to degrade.
    let ethereum = ChainSpec::Ethereum(EthereumConfig {
        block_interval: Duration::from_secs(1),
        block_gas_limit: 2_000_000,
        ..EthereumConfig::default()
    });

    // (spec, rate tx/s, speedup) — moderate rates well under capacity so
    // the fault, not saturation, is what shapes the numbers.
    let targets = vec![
        (ethereum, 40u32, 100.0f64),
        (ChainSpec::fabric_default(), 150, 100.0),
        (ChainSpec::meepo_default(), 300, 50.0),
        (ChainSpec::neuchain_default(), 500, 100.0),
    ];

    let mut rows = Vec::new();
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"window\": {{\"start_s\": {:.1}, \"end_s\": {:.1}}},\n  \"runs\": [\n",
        WINDOW_START.as_secs_f64(),
        WINDOW_END.as_secs_f64()
    );
    let mut first_run = true;

    for (chain, rate, speedup) in targets {
        for scenario in SCENARIOS {
            eprintln!(
                "running {} / {scenario} at {rate} tx/s ({speedup}x)...",
                chain.name()
            );
            let report = run_one(&chain, scenario, rate, speedup);
            rows.push(vec![
                report.chain.clone(),
                scenario.to_owned(),
                format!("{:.1}", report.overall_tps),
                report.committed.to_string(),
                report.retried.to_string(),
                report.dropped.to_string(),
                report.expired.to_string(),
                report.rejected.to_string(),
            ]);
            for w in &report.fault_windows {
                println!(
                    "  {} / {scenario} [{:.1}s-{:.1}s] {}: {} committed ({:.1} TPS)",
                    report.chain,
                    w.start.as_secs_f64(),
                    w.end.as_secs_f64(),
                    w.label,
                    w.committed,
                    w.tps
                );
            }
            if !first_run {
                json.push_str(",\n");
            }
            first_run = false;
            push_json_run(&mut json, &report, scenario);
        }
    }
    json.push_str("\n  ]\n}\n");

    println!(
        "\n{}",
        render_table(
            &[
                "chain",
                "scenario",
                "tps",
                "committed",
                "retried",
                "dropped",
                "expired",
                "rejected",
            ],
            &rows,
        )
    );

    let dir = std::path::Path::new("target/bench-results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
    } else {
        let path = dir.join("fault_sweep.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
        }
    }

    println!("\nReading the table: under `none` the retry path is inert");
    println!("(retried = dropped = expired = 0, identical to the one-shot");
    println!("driver); under `crash-restart` the crashed window's TPS");
    println!("degrades while retried/expired go non-zero, and the nominal");
    println!("row shows the chain recovering outside the window.");
}
