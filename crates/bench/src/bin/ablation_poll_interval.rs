//! **Ablation ξ1 (§II-C1)** — polling-interval latency skew.
//!
//! Batch testing "relies on the time to poll for a new block as the
//! transaction's completion time. A large time interval leads to missing
//! block generation time and thus results in overestimating transaction
//! latency." Hammer's Algorithm 1 records the *block* time instead, so its
//! latency measurement is interval-independent.
//!
//! This ablation runs the identical Fabric workload under both methods at
//! four polling intervals and reports the measured mean latency. The batch
//! baseline's numbers inflate with the interval; Hammer's stay flat.

use std::time::Duration;

use bench::{save_csv, RunSpec};
use hammer_core::deploy::ChainSpec;
use hammer_core::driver::TestingMode;
use hammer_store::report::{render_table, to_csv};

fn main() {
    println!("=== Ablation: polling interval vs measured latency (xi_1) ===\n");

    let intervals = [
        Duration::from_millis(20),
        Duration::from_millis(100),
        Duration::from_millis(500),
        Duration::from_millis(2_000),
    ];
    let mut rows = Vec::new();
    for interval in intervals {
        let mut latencies = Vec::new();
        for mode in [TestingMode::TaskProcessing, TestingMode::BatchBaseline] {
            let mut spec = RunSpec::peak(ChainSpec::fabric_default(), 150, 30);
            spec.mode = mode;
            spec.accounts = 20_000;
            spec.speedup = 100.0;
            let deployment = hammer_core::deploy::Deployment::up(spec.chain.clone(), spec.speedup);
            let workload = hammer_workload::WorkloadConfig {
                accounts: spec.accounts,
                clients: spec.clients,
                threads_per_client: spec.threads_per_client,
                chain_name: spec.chain.name().to_owned(),
                ..hammer_workload::WorkloadConfig::default()
            };
            let control = hammer_workload::ControlSequence::constant(
                spec.rate,
                spec.seconds,
                Duration::from_secs(1),
            );
            let config = hammer_core::driver::EvalConfig::builder()
                .mode(mode)
                .machine(spec.machine)
                .poll_interval(interval)
                .drain_timeout(spec.drain_timeout)
                .build()
                .expect("valid config");
            eprintln!("interval {interval:?}, mode {mode:?}...");
            let report = hammer_core::driver::Evaluation::new(config)
                .run(&deployment, &workload, &control)
                .expect("run failed");
            latencies.push(report.latency.mean_s);
        }
        let skew = latencies[1] - latencies[0];
        rows.push(vec![
            format!("{}", interval.as_millis()),
            format!("{:.3}", latencies[0]),
            format!("{:.3}", latencies[1]),
            format!("{skew:+.3}"),
        ]);
    }

    let header = [
        "poll_interval_ms",
        "hammer_mean_lat_s",
        "batch_mean_lat_s",
        "batch_skew_s",
    ];
    println!("{}", render_table(&header, &rows));
    save_csv("ablation_poll_interval", &to_csv(&header, &rows));
    println!("Expected: the batch baseline's measured latency inflates by roughly");
    println!("half the polling interval (plus queueing), while Hammer's block-time");
    println!("end stamps keep its measurement flat across intervals.");
}
