//! **Fig. 10** — Fabric throughput/latency vs client-thread and client
//! counts.
//!
//! The paper's clients are 2-vCPU machines, so throughput peaks at
//! **2 threads per client** — beyond that, core time-sharing and
//! scheduling overhead shrink the offered rate. Across **clients**, two
//! clients saturate the chain; further clients push offered load past the
//! endorsement capacity, deepening the endorse-to-commit window so MVCC
//! conflicts climb (the paper found this in the peer logs), and at five
//! clients the nodes shed load outright (inbox rejections), cutting
//! throughput and capping latency.
//!
//! Both sweeps drive each client thread in a near-closed loop (the control
//! budget is far above the machine capacity), exactly like a peak test.

use bench::save_csv;
use hammer_core::deploy::{ChainSpec, Deployment};
use hammer_core::driver::{EvalConfig, EvalReport, Evaluation};
use hammer_core::machine::ClientMachine;
use hammer_fabric::FabricConfig;
use hammer_store::report::{render_table, to_csv};
use hammer_workload::{AccessDistribution, ControlSequence, WorkloadConfig};
use std::time::Duration;

/// The paper's 2-vCPU client: ~12 ms of client CPU per submission
/// (SDK serialisation + gRPC + bookkeeping) and heavy scheduling overhead
/// once threads exceed cores.
fn paper_client() -> ClientMachine {
    ClientMachine {
        vcpus: 2,
        submit_cost: Duration::from_millis(12),
        contention_overhead: 0.5,
    }
}

fn run(fabric: FabricConfig, clients: u32, threads: u32, workload: WorkloadConfig) -> EvalReport {
    // Moderate speed-up: the sweep compares 4-11 concurrent driver threads
    // on a 1-core host, so give every modelled delay enough wall time to
    // be scheduled accurately.
    let deployment = Deployment::up(ChainSpec::Fabric(fabric), 30.0);
    let workload = WorkloadConfig {
        clients,
        threads_per_client: threads,
        chain_name: "fabric-sim".to_owned(),
        ..workload
    };
    // 600/s budget: far above what the modelled machines can offer, so the
    // client machines (not the pacer) set the submission rate.
    let control = ControlSequence::constant(600, 40, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(paper_client())
        .drain_timeout(Duration::from_secs(60))
        .build()
        .expect("valid config");
    Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("run failed")
}

fn main() {
    println!("=== Fig. 10: Fabric vs client threads and client count ===\n");
    let mut json_runs: Vec<String> = Vec::new();

    // Sweep 1: one client, 1..6 threads. Uniform access over a large pool
    // keeps conflicts out of the picture; the client machine dominates.
    let mut rows = Vec::new();
    for threads in 1..=6u32 {
        eprintln!("threads = {threads}...");
        let out = run(
            FabricConfig::default(),
            1,
            threads,
            WorkloadConfig {
                accounts: 5_000,
                distribution: AccessDistribution::Uniform,
                ..WorkloadConfig::default()
            },
        );
        rows.push(vec![
            threads.to_string(),
            format!("{:.1}", out.overall_tps),
            format!("{:.3}", out.latency.mean_s),
            out.failed.to_string(),
            out.rejected.to_string(),
        ]);
        json_runs.push(format!(
            "    {{\"sweep\": \"threads\", \"value\": {threads}, \"report\": {}}}",
            out.to_json()
        ));
    }
    let header = ["threads", "tps", "mean_lat_s", "conflicts", "rejected"];
    println!("--- thread sweep (1 client, 2 vCPUs) ---");
    println!("{}", render_table(&header, &rows));
    save_csv("fig10_threads", &to_csv(&header, &rows));

    // Sweep 2: 1..5 clients, 2 threads each. Endorsement capacity is the
    // chain-side ceiling (4 endorsers x 15 ms each ~ 267 tx/s, just below
    // what two clients offer); past saturation the endorse-to-commit
    // window deepens (latency and MVCC conflicts rise), the bounded inbox
    // sheds load, and every shed request costs the endorsement pool 2 ms
    // of handling — so throughput erodes as client count grows.
    let mut rows = Vec::new();
    for clients in 1..=5u32 {
        eprintln!("clients = {clients}...");
        let out = run(
            FabricConfig {
                endorse_cost: Duration::from_millis(15),
                inbox_capacity: 400,
                reject_handling_cost: Duration::from_millis(2),
                ..FabricConfig::default()
            },
            clients,
            2,
            WorkloadConfig {
                accounts: 5_000,
                distribution: AccessDistribution::Uniform,
                ..WorkloadConfig::default()
            },
        );
        rows.push(vec![
            clients.to_string(),
            format!("{:.1}", out.overall_tps),
            format!("{:.3}", out.latency.mean_s),
            out.failed.to_string(),
            out.rejected.to_string(),
        ]);
        json_runs.push(format!(
            "    {{\"sweep\": \"clients\", \"value\": {clients}, \"report\": {}}}",
            out.to_json()
        ));
    }
    let header = ["clients", "tps", "mean_lat_s", "conflicts", "rejected"];
    println!("--- client sweep (2 threads per client) ---");
    println!("{}", render_table(&header, &rows));
    save_csv("fig10_clients", &to_csv(&header, &rows));

    // Full machine-readable reports alongside the CSVs.
    let json = format!("{{\n  \"runs\": [\n{}\n  ]\n}}\n", json_runs.join(",\n"));
    let dir = std::path::Path::new("target/bench-results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
    } else {
        let path = dir.join("fig10_scaling.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
        }
    }

    println!("Paper reference: best at 2 threads / 2 clients; more threads add");
    println!("scheduling overhead; more clients add conflicts, then node-side");
    println!("rejections that cut throughput (and shed latency).");
}
