//! **Driver ceiling** — how many in-flight transactions the tracker
//! sustains before the *driver* (not the chain) becomes the bottleneck.
//!
//! The paper's driver claim is O(1) asynchronous task processing; ROADMAP
//! item 1 asks for that at production scale ("millions of users"). This
//! bin takes the chain out of the picture entirely — transactions are
//! synthesized, never submitted — and pushes the in-flight tracker to
//! millions of concurrently pending records, sweeping shard count ×
//! submit-thread count × in-flight depth:
//!
//! 1. **Fill** — `clients` submit threads insert until the configured
//!    in-flight depth is reached (every 1000th id is terminally rejected,
//!    exercising the one-lock rejection path).
//! 2. **Sustained match** — a matcher completes whole blocks through the
//!    batched per-shard fan-out while the submit threads insert
//!    replacements, holding the depth at the configured level (this is
//!    the steady state of a saturated run).
//! 3. **Accounting** — inserted must equal matched + rejected + pending,
//!    and the drained tracker must agree; the line `accounting identity
//!    holds` is what scripts/ci_check.sh greps for.
//!
//! `--shards 1` is the single-lock tracker (the pre-sharding driver);
//! larger values are the sharded tracker. Results append as JSON objects
//! to `target/bench-results/driver_ceiling.json` for
//! scripts/bench_snapshot.sh.
//!
//! Usage: `driver_ceiling [--inflight N] [--clients C] [--blocks B]
//! [--block-size M] [--shards 1,4,16] [--smoke]`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hammer_chain::types::{TxId, TxStatus};
use hammer_core::shard::ShardedTxTable;

/// splitmix64: cheap, well-mixed 64-bit ids. The fingerprint (the first
/// 8 bytes, big-endian) drives both shard selection and the per-shard
/// home slot, so it must be uniform — hashing real transactions here
/// would make the bench measure SHA-256, not the tracker.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn tx_id(i: u64) -> TxId {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&splitmix64(i).to_be_bytes());
    bytes[8..16].copy_from_slice(&i.to_be_bytes());
    TxId(bytes)
}

struct Args {
    inflight: u64,
    clients: u64,
    blocks: u64,
    block_size: u64,
    shards: Vec<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        inflight: 1_000_000,
        clients: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1)
            .clamp(1, 8),
        blocks: 50,
        block_size: 10_000,
        shards: vec![
            1,
            std::thread::available_parallelism()
                .map(|n| n.get().next_power_of_two())
                .unwrap_or(4)
                .max(4),
        ],
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--inflight" => args.inflight = value("--inflight").parse().expect("--inflight"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients"),
            "--blocks" => args.blocks = value("--blocks").parse().expect("--blocks"),
            "--block-size" => {
                args.block_size = value("--block-size").parse().expect("--block-size")
            }
            "--shards" => {
                args.shards = value("--shards")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards"))
                    .collect();
            }
            "--smoke" => {
                // The CI configuration: small but still deep enough to
                // exercise index growth, Bloom rotation, and the batched
                // fan-out.
                args.inflight = 50_000;
                args.clients = 2;
                args.blocks = 10;
                args.block_size = 5_000;
                args.shards = vec![2];
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    // The matcher consumes ids 0..blocks×block_size while replacement
    // submitters insert ids from `inflight` upward; keeping the match
    // window inside the fill range guarantees the two never race on the
    // same id (a matched-then-rejected overlap would double-count).
    assert!(
        args.blocks * args.block_size <= args.inflight,
        "blocks × block_size must not exceed the in-flight depth"
    );
    args
}

struct CeilingResult {
    shards: usize,
    fill_tps: f64,
    match_tps: f64,
    match_ns_per_tx: f64,
    inserted: u64,
    matched: u64,
    rejected: u64,
    pending: u64,
}

/// One sweep point: fill to depth, then match `blocks` blocks while
/// submitters keep the depth constant.
fn run_point(shards: usize, args: &Args) -> CeilingResult {
    let tracker = Arc::new(ShardedTxTable::new(shards, args.inflight as usize));
    let next_id = AtomicU64::new(0);
    let inserted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    // Phase 1: fill to the configured depth from `clients` threads.
    let fill_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            let tracker = Arc::clone(&tracker);
            let next_id = &next_id;
            let inserted = &inserted;
            let rejected = &rejected;
            scope.spawn(move || loop {
                let i = next_id.fetch_add(1, Ordering::Relaxed);
                if i >= args.inflight {
                    return;
                }
                let id = tx_id(i);
                tracker.insert(id, (i % 97) as u32, 0, Duration::ZERO);
                inserted.fetch_add(1, Ordering::Relaxed);
                if i % 1000 == 999 {
                    tracker.reject(&id, Duration::from_millis(1));
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let fill_time = fill_start.elapsed();
    let fill_tps = args.inflight as f64 / fill_time.as_secs_f64().max(1e-9);

    // Phase 2: sustained matching at constant depth. The matcher
    // completes blocks of the oldest live ids; submitters insert fresh
    // ids (with the same 1/1000 rejection mix) as fast as the matcher
    // retires old ones, so pending hovers at the configured depth.
    let matched_target = args.blocks * args.block_size;
    let match_start = Instant::now();
    let (matched, match_time) = std::thread::scope(|scope| {
        for _ in 0..args.clients {
            let tracker = Arc::clone(&tracker);
            let next_id = &next_id;
            let inserted = &inserted;
            let rejected = &rejected;
            let stop = &stop;
            let ceiling = args.inflight + matched_target;
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let i = next_id.fetch_add(1, Ordering::Relaxed);
                    if i >= ceiling {
                        return; // replacement budget spent
                    }
                    let id = tx_id(i);
                    tracker.insert(id, (i % 97) as u32, 0, Duration::ZERO);
                    inserted.fetch_add(1, Ordering::Relaxed);
                    if i % 1000 == 999 {
                        tracker.reject(&id, Duration::from_millis(1));
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // The matcher runs in this thread: oldest-first blocks, skipping
        // the ids the submitters already rejected (1/1000).
        let mut matched = 0u64;
        let mut out = Vec::with_capacity(args.block_size as usize);
        let mut entries = Vec::with_capacity(args.block_size as usize);
        let mut cursor = 0u64;
        for b in 0..args.blocks {
            entries.clear();
            entries.extend((cursor..cursor + args.block_size).map(|i| (tx_id(i), i % 3 != 2)));
            cursor += args.block_size;
            out.clear();
            tracker.complete_block(&entries, Duration::from_secs(1), &mut out);
            matched += out.len() as u64;
            if b == args.blocks / 2 {
                // Mid-sweep sanity: depth is still at the ceiling level.
                let pending = tracker.pending() as u64;
                assert!(
                    pending + matched_target >= args.inflight,
                    "depth collapsed mid-run: {pending}"
                );
            }
        }
        let match_time = match_start.elapsed();
        stop.store(true, Ordering::Release);
        (matched, match_time)
    });

    let stats = tracker.stats();
    let pending = tracker.pending() as u64;
    let inserted = inserted.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);

    // Accounting identity over the live tracker, then over the drain.
    assert_eq!(
        inserted,
        matched + rejected + pending,
        "live accounting broke"
    );
    let (records, drained_rejected) = tracker.drain();
    assert_eq!(records.len() as u64, inserted, "drain lost records");
    assert_eq!(drained_rejected.len() as u64, rejected, "rejected set off");
    let drained_pending = records
        .iter()
        .filter(|r| r.status == TxStatus::Pending)
        .count() as u64;
    assert_eq!(drained_pending, pending, "pending mismatch after drain");

    let match_tps = matched as f64 / match_time.as_secs_f64().max(1e-9);
    println!(
        "shards={shards:>4}  fill {fill_tps:>12.0} tx/s   match {match_tps:>12.0} tx/s   \
         ({:.1} ns/tx, bloom_rebuilds={}, expansions={})",
        1e9 / match_tps.max(1e-9),
        stats.bloom_rebuilds,
        stats.expansions,
    );
    println!(
        "accounting identity holds (inserted={inserted} matched={matched} \
         rejected={rejected} pending={pending})"
    );

    CeilingResult {
        shards,
        fill_tps,
        match_tps,
        match_ns_per_tx: 1e9 / match_tps.max(1e-9),
        inserted,
        matched,
        rejected,
        pending,
    }
}

fn main() {
    let args = parse_args();
    println!(
        "=== Driver ceiling: sharded in-flight tracker at depth {} ===",
        args.inflight
    );
    println!(
        "clients={} blocks={} block_size={} shard sweep {:?}\n",
        args.clients, args.blocks, args.block_size, args.shards
    );

    let results: Vec<CeilingResult> = args.shards.iter().map(|&s| run_point(s, &args)).collect();

    if let Some(single) = results.iter().find(|r| r.shards == 1) {
        for r in results.iter().filter(|r| r.shards > 1) {
            println!(
                "\nsharded({}) vs single-lock match throughput: {:.2}x",
                r.shards,
                r.match_tps / single.match_tps.max(1e-9)
            );
        }
    }

    // JSON results for bench_snapshot.sh. Hand-rolled like
    // EvalReport::to_json — no serde in the workspace.
    let mut json = String::from("{\"bench\":\"driver_ceiling\",");
    json.push_str(&format!(
        "\"inflight\":{},\"clients\":{},\"blocks\":{},\"block_size\":{},\"host_cores\":{},",
        args.inflight,
        args.clients,
        args.blocks,
        args.block_size,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    json.push_str("\"points\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"shards\":{},\"fill_tps\":{:.0},\"match_tps\":{:.0},\
             \"match_ns_per_tx\":{:.1},\"inserted\":{},\"matched\":{},\
             \"rejected\":{},\"pending\":{}}}",
            r.shards,
            r.fill_tps,
            r.match_tps,
            r.match_ns_per_tx,
            r.inserted,
            r.matched,
            r.rejected,
            r.pending,
        ));
    }
    json.push_str("]}");
    let dir = std::path::Path::new("target/bench-results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("driver_ceiling.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("\n[saved {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
        }
    }
}
