//! **Fig. 7** — Peak performance as *measured by* three frameworks.
//!
//! The same two chains (Ethereum, Fabric) are evaluated with Hammer's task
//! processing, Blockbench-style batch testing, and Caliper-style
//! interactive testing. The paper's observation: on Fabric under heavy
//! load, Hammer reports 239 TPS vs Caliper's 176 — interactive listening
//! wastes client resources, and batch testing suffers from poll-time end
//! stamps and O(n·m) matching. On Ethereum the frameworks are
//! indistinguishable (the chain is the bottleneck at 18.6 TPS).

use bench::{save_csv, RunSpec};
use hammer_core::driver::TestingMode;
use hammer_core::machine::ClientMachine;
use hammer_store::report::{render_bars, render_table, to_csv};

fn mode_label(mode: TestingMode) -> &'static str {
    match mode {
        TestingMode::TaskProcessing => "Hammer",
        TestingMode::BatchBaseline => "Blockbench",
        TestingMode::Interactive => "Caliper",
    }
}

fn main() {
    println!("=== Fig. 7: peak TPS of Ethereum & Fabric as seen by three frameworks ===\n");

    let modes = [
        TestingMode::TaskProcessing,
        TestingMode::BatchBaseline,
        TestingMode::Interactive,
    ];

    let mut rows = Vec::new();
    let mut chart = Vec::new();
    for (chain_name, rate, seconds) in [("ethereum-sim", 20u32, 180usize), ("fabric-sim", 260, 60)]
    {
        for mode in modes {
            eprintln!("measuring {chain_name} with {}...", mode_label(mode));
            let mut spec = RunSpec::peak_named(chain_name, rate, seconds);
            spec.mode = mode;
            // The measuring client is the paper's 2-vCPU machine:
            // submission is comfortably within its budget, but Caliper's
            // event listener shares the same cores and its SDK buffer
            // loses responses once it falls behind.
            spec.machine = ClientMachine {
                submit_cost: std::time::Duration::from_millis(2),
                contention_overhead: 0.5,
                ..ClientMachine::paper_client()
            };
            spec.clients = 2;
            spec.threads_per_client = 2;
            spec.accounts = 30_000;
            // A heavyweight SDK response handler (~4 ms/event on the
            // 2-vCPU client) and a 500-event buffer.
            spec.listen_cost = std::time::Duration::from_millis(4);
            spec.event_buffer = 500;
            spec.speedup = if chain_name == "ethereum-sim" {
                400.0
            } else {
                100.0
            };
            let report = spec.run();
            let label = format!("{}/{}", chain_name, mode_label(mode));
            chart.push((label, report.overall_tps));
            rows.push(vec![
                chain_name.to_owned(),
                mode_label(mode).to_owned(),
                format!("{:.1}", report.overall_tps),
                format!("{:.3}", report.latency.mean_s),
                report.committed.to_string(),
                report.timed_out.to_string(),
            ]);
        }
    }

    let header = [
        "chain",
        "framework",
        "tps",
        "mean_lat_s",
        "committed",
        "timed_out",
    ];
    println!("{}", render_table(&header, &rows));
    println!(
        "{}",
        render_bars("Measured peak TPS by framework", &chart, 50)
    );
    save_csv("fig7_frameworks", &to_csv(&header, &rows));

    println!("Paper reference: all frameworks agree on Ethereum (~18 TPS);");
    println!("on Fabric, Hammer (239) > Caliper (176) > Blockbench.");
}
