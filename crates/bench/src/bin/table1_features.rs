//! **Table I** — Summary of blockchain benchmarking tools.
//!
//! A static feature-comparison table; reproduced verbatim from the paper
//! so the repository's reports are self-contained. The final row is the
//! system this repository implements.

use hammer_store::report::render_table;

fn main() {
    println!("=== Table I: summary of blockchain benchmarking tools ===\n");
    let header = [
        "framework",
        "supported type",
        "languages",
        "architectures",
        "workloads",
        "testing method",
    ];
    let rows: Vec<Vec<String>> = [
        [
            "Blockbench",
            "Permissioned",
            "Rust, Go",
            "Non-sharding",
            "Synthetic",
            "Batch",
        ],
        [
            "Blockbench v3",
            "Permissioned",
            "Rust, Go",
            "Non-sharding",
            "Real",
            "Batch",
        ],
        [
            "Caliper",
            "Permissioned",
            "Java, C++, Go",
            "Non-sharding",
            "Self-defined",
            "Interactive",
        ],
        [
            "Bctmark",
            "Permissioned",
            "Go",
            "Non-sharding",
            "Synthetic",
            "Interactive",
        ],
        [
            "Diablo-v2",
            "Permissioned",
            "Move, Go",
            "Non-sharding",
            "Real",
            "Interactive",
        ],
        [
            "HyperledgerLab",
            "Permissioned",
            "Go",
            "Non-sharding",
            "Real",
            "Interactive",
        ],
        [
            "Gromit",
            "Permissioned",
            "Go, C++, Rust, Move",
            "Non-sharding",
            "Synthetic",
            "Interactive",
        ],
        [
            "BlockCompass",
            "Permissioned",
            "Go, Python",
            "Non-sharding",
            "Self-defined",
            "Interactive",
        ],
        [
            "DLPS",
            "Permissioned",
            "Go, Python, Rust",
            "Non-sharding",
            "Synthetic",
            "Interactive",
        ],
        [
            "Hammer (ours)",
            "Permissioned+less",
            "Go, C++, Rust, Java, Python",
            "Non-sharding and sharding",
            "Self-defined",
            "Batch+Task processing",
        ],
    ]
    .iter()
    .map(|r| r.iter().map(|s| (*s).to_owned()).collect())
    .collect();
    println!("{}", render_table(&header, &rows));
    println!("This repository implements the 'Hammer (ours)' row: the generic");
    println!("JSON-RPC interface (hammer-rpc), sharded + non-sharded drivers");
    println!("(hammer-core::driver over hammer-meepo and the three non-sharded");
    println!("simulators), and the batch + task-processing method (Algorithm 1).");
}
