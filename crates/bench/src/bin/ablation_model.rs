//! **Ablation (§IV / Fig. 5)** — what each component of the prediction
//! model contributes.
//!
//! The paper motivates the architecture piecewise: the TCN captures
//! long-distance dependencies, the BiGRU short-distance ones, and the
//! multi-head attention sudden bursts. This ablation trains the full
//! model and three reduced variants on each dataset and reports test MAE,
//! so the contribution of every stage is measurable rather than asserted.

use bench::save_csv;
use hammer_nn::layer::Linear;
use hammer_nn::{BiGru, MultiHeadAttention, Sequential, TcnBlock};
use hammer_predict::models::{HammerModel, SeriesModel, TrainConfig};
use hammer_predict::{evaluate, Dataset};
use hammer_store::report::{render_table, to_csv};
use hammer_workload::traces::{TraceKind, TraceSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reduced variant built from the same blocks and trained with the same
/// recipe as the full model.
struct Variant {
    name: &'static str,
    trainer: hammer_predict::models::SeqTrainerHandle,
}

fn variants(config: &TrainConfig) -> Vec<Variant> {
    use hammer_predict::models::SeqTrainerHandle;
    let channels = 8;
    let gru_hidden = 6;
    let attn_dim = 2 * gru_hidden;
    let mut out = Vec::new();

    // No TCN: BiGRU -> attention.
    {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let body = Sequential::new()
            .push(BiGru::new(1, gru_hidden, &mut rng))
            .push(MultiHeadAttention::new(attn_dim, 2, &mut rng));
        let head = Linear::new(attn_dim + 1, 1, &mut rng);
        out.push(Variant {
            name: "no-TCN",
            trainer: SeqTrainerHandle::tuned(Box::new(body), head, config.lr * 0.2, config.window),
        });
    }
    // No BiGRU: TCN -> attention.
    {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let body = Sequential::new()
            .push(TcnBlock::new(1, channels, 3, 1, &mut rng))
            .push(TcnBlock::new(channels, channels, 3, 2, &mut rng))
            .push(MultiHeadAttention::new(channels, 2, &mut rng));
        let head = Linear::new(channels + 1, 1, &mut rng);
        out.push(Variant {
            name: "no-BiGRU",
            trainer: SeqTrainerHandle::tuned(Box::new(body), head, config.lr * 0.2, config.window),
        });
    }
    // No attention: TCN -> BiGRU.
    {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let body = Sequential::new()
            .push(TcnBlock::new(1, channels, 3, 1, &mut rng))
            .push(TcnBlock::new(channels, channels, 3, 2, &mut rng))
            .push(BiGru::new(channels, gru_hidden, &mut rng));
        let head = Linear::new(attn_dim + 1, 1, &mut rng);
        out.push(Variant {
            name: "no-attention",
            trainer: SeqTrainerHandle::tuned(Box::new(body), head, config.lr * 0.2, config.window),
        });
    }
    out
}

fn main() {
    println!("=== Ablation: contribution of each Fig. 5 component ===\n");
    let config = TrainConfig::default();
    let mut rows = Vec::new();

    for kind in TraceKind::all() {
        let series = TraceSpec::paper(kind, 1).generate();
        let dataset = Dataset::new(&series, config.window, 0.8);
        let samples = dataset.test_samples();
        let targets: Vec<f64> = samples.iter().map(|s| s.1).collect();

        // Full model.
        eprintln!("{}: full model...", kind.name());
        let mut full = HammerModel::new(&config);
        full.fit(&dataset.train, &config);
        let predictions: Vec<f64> = samples.iter().map(|(w, _)| full.predict_next(w)).collect();
        let full_mae = evaluate(&predictions, &targets).mae;
        rows.push(vec![
            kind.name().to_owned(),
            "full (Ours)".to_owned(),
            format!("{full_mae:.3}"),
            "-".to_owned(),
        ]);

        for mut variant in variants(&config) {
            eprintln!("{}: {}...", kind.name(), variant.name);
            variant.trainer.fit(&dataset.train, &config);
            let predictions: Vec<f64> = samples
                .iter()
                .map(|(w, _)| variant.trainer.predict_next(w))
                .collect();
            let mae = evaluate(&predictions, &targets).mae;
            let delta = (mae - full_mae) / full_mae * 100.0;
            rows.push(vec![
                kind.name().to_owned(),
                variant.name.to_owned(),
                format!("{mae:.3}"),
                format!("{delta:+.1}%"),
            ]);
        }
    }

    let header = ["dataset", "variant", "test MAE", "vs full"];
    println!("{}", render_table(&header, &rows));
    save_csv("ablation_model", &to_csv(&header, &rows));
    println!("Positive 'vs full' = removing the component hurt. Note: single");
    println!("networks (not ensembles) per variant; run-to-run noise is a few %.");
}
