//! **Scenario sweep** — the shipped scenario corpus, retargeted across
//! every registered backend and graded by its own expectations.
//!
//! Each cell loads a named corpus scenario (`hammer_core::scenario::corpus`),
//! retargets it to the backend's calibrated operating point (same
//! window shape, average rate scaled to the backend's moderate
//! under-capacity rate), runs it through the unmodified driver, and
//! prints the per-expectation verdict. `crash-during-drain` cells
//! exercise the checkpoint/kill/resume path on every backend.
//!
//! ```text
//! cargo run --release --bin scenario_sweep -- [--smoke] [--list]
//!     [--scenario NAME] [--backend NAME] [--deploy-mode in|multi]
//!     [--crash-smoke]
//! ```
//!
//! `--deploy-mode multi` reruns the selected cells with each backend as
//! a supervised `node-host` OS process behind loopback TCP (build the
//! binary first: `cargo build --release --bin node-host`).
//! `--crash-smoke` runs one scripted multi-process scenario whose crash
//! window SIGKILLs the real node process mid-run and asserts the
//! supervisor restarted it with the accounting identity intact.
//!
//! Emits a JSON verdict matrix to
//! `target/bench-results/scenario_sweep.json` and a final summary line
//! (`scenario sweep: R runs, V expectation violations`) that CI greps
//! for `0 expectation violations`.

use std::fmt::Write as _;
use std::time::Duration;

use hammer_core::chaos::live_threads;
use hammer_core::deploy::DeployMode;
use hammer_core::retry::RetryPolicy;
use hammer_core::scenario::{corpus, FaultSpec, NodeRef, Scenario, Verdict};
use hammer_store::report::render_table;

/// (backend, average rate tx/s, speedup) — the chaos-sweep operating
/// points: moderate rates well under capacity so the scenario's own
/// shape and faults, not saturation, decide the verdict.
const OPERATING_POINTS: [(&str, u32, f64); 4] = [
    ("ethereum-sim", 40, 100.0),
    ("fabric-sim", 150, 100.0),
    ("meepo-sim", 300, 50.0),
    ("neuchain-sim", 500, 100.0),
];

/// The smoke gate: two fast scenarios on the two fastest backends.
const SMOKE_SCENARIOS: [&str; 2] = ["nft-flash-crowd-mint", "partition-then-heal"];
const SMOKE_BACKENDS: [&str; 2] = ["fabric-sim", "neuchain-sim"];

fn usage() -> ! {
    eprintln!(
        "usage: scenario_sweep [--smoke] [--list] [--scenario NAME] [--backend NAME] \
         [--deploy-mode in|multi] [--crash-smoke]"
    );
    std::process::exit(2);
}

struct Args {
    smoke: bool,
    scenario: Option<String>,
    backend: Option<String>,
    deploy_mode: Option<DeployMode>,
    crash_smoke: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        scenario: None,
        backend: None,
        deploy_mode: None,
        crash_smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--list" => {
                for name in corpus::names() {
                    let scenario = corpus::load(name).expect("corpus scenario must parse");
                    println!("{name}: {}", scenario.description());
                }
                std::process::exit(0);
            }
            "--scenario" => parsed.scenario = Some(value()),
            "--backend" => parsed.backend = Some(value()),
            "--deploy-mode" => {
                parsed.deploy_mode = Some(DeployMode::parse(&value()).unwrap_or_else(|| usage()))
            }
            "--crash-smoke" => parsed.crash_smoke = true,
            _ => usage(),
        }
    }
    parsed
}

/// The multi-process crash smoke: one scripted scenario whose crash
/// window SIGKILLs the real `node-host` process. Passing means the
/// supervisor delivered the kill AND restarted the node AND the run
/// still completed with the accounting identity intact.
fn crash_smoke() -> ! {
    println!("=== Multi-process crash smoke: neuchain-sim behind loopback TCP ===");
    let scenario = Scenario::builder("multi-process-crash-smoke")
        .describe("crash window SIGKILLs the node-host process; the supervisor restarts it")
        .backend("neuchain-sim")
        .speedup(10.0)
        .deploy_mode(DeployMode::MultiProcess)
        .workload_with(|w| w.accounts = 100)
        .constant_load(30, 8)
        .retry(RetryPolicy::standard())
        .fault(FaultSpec::Crash {
            node: NodeRef::Ingress(0),
            start: Duration::from_secs(2),
            end: Duration::from_secs(4),
        })
        .expect_accounting_identity()
        .expect_no_stall()
        .build()
        .expect("the crash smoke scenario is statically valid");
    let verdict = scenario.run().unwrap_or_else(|e| {
        eprintln!("RUN FAILED: {e}");
        std::process::exit(1);
    });
    for check in &verdict.checks {
        println!(
            "  [{}] {}: {}",
            if check.passed { "pass" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    let stats = verdict.process_faults.unwrap_or_default();
    println!(
        "process faults: {} sigkills delivered, {} restarts",
        stats.kills, stats.restarts
    );
    let ok = verdict.passed() && stats.kills >= 1 && stats.restarts >= 1;
    println!(
        "crash smoke: accounting identity {}, {} violations, kills={} restarts={}",
        if verdict.passed() {
            "holds"
        } else {
            "VIOLATED"
        },
        verdict.violations().len(),
        stats.kills,
        stats.restarts
    );
    std::process::exit(if ok { 0 } else { 1 });
}

fn main() {
    let args = parse_args();
    if args.crash_smoke {
        crash_smoke();
    }
    let scenarios: Vec<&str> = corpus::names()
        .into_iter()
        .filter(|n| {
            args.scenario.as_deref().is_none_or(|only| only == *n)
                && (!args.smoke || SMOKE_SCENARIOS.contains(n))
        })
        .collect();
    let backends: Vec<(&str, u32, f64)> = OPERATING_POINTS
        .into_iter()
        .filter(|(b, _, _)| {
            args.backend.as_deref().is_none_or(|only| only == *b)
                && (!args.smoke || SMOKE_BACKENDS.contains(b))
        })
        .collect();
    if scenarios.is_empty() || backends.is_empty() {
        eprintln!("nothing to run (unknown scenario or backend filter?)");
        usage();
    }
    println!(
        "=== Scenario sweep: {} scenarios x {} backends ===\n",
        scenarios.len(),
        backends.len()
    );

    // Scenario teardown is deterministic: `run_on` shuts the deployment
    // down and *joins* the network scheduler thread before returning, so
    // nothing from a previous cell can contend with the next one (at
    // 100x speedup, stray wall-clock contention amplifies into simulated
    // block gaps big enough to trip the stall watchdog). The probe is
    // therefore an immediate assertion, not a timed wait — a leftover
    // thread here is a real leak.
    let thread_baseline = live_threads();
    let probe = |label: &str| {
        let leftover = live_threads();
        if leftover > thread_baseline {
            eprintln!(
                "  warning: {leftover} threads still live after {label} (baseline {thread_baseline})"
            );
        }
    };

    let mut rows = Vec::new();
    let mut verdicts: Vec<Verdict> = Vec::new();
    for name in &scenarios {
        let authored = corpus::load(name).expect("corpus scenario must parse");
        let native_rate =
            authored.control().total() as f64 / authored.control().duration().as_secs_f64();
        for (backend, rate, speedup) in &backends {
            let scale = f64::from(*rate) / native_rate;
            eprintln!("running {name} on {backend} at ~{rate} tx/s ({speedup}x)...");
            let mut scenario = authored
                .retarget(backend, *speedup, scale)
                .expect("retargeting a corpus scenario must validate");
            if let Some(mode) = args.deploy_mode {
                scenario = scenario
                    .to_builder()
                    .deploy_mode(mode)
                    .build()
                    .expect("a validated scenario stays valid under a deploy-mode change");
            }
            let verdict = scenario.run().unwrap_or_else(|e| {
                eprintln!("  RUN FAILED: {e}");
                std::process::exit(1);
            });
            rows.push(vec![
                (*name).to_owned(),
                (*backend).to_owned(),
                verdict.report.committed.to_string(),
                if verdict.stalled { "yes" } else { "no" }.to_owned(),
                if verdict.passed() { "pass" } else { "FAIL" }.to_owned(),
                verdict
                    .violations()
                    .iter()
                    .map(|c| c.name)
                    .collect::<Vec<_>>()
                    .join(","),
            ]);
            for violation in verdict.violations() {
                eprintln!("  VIOLATION {}: {}", violation.name, violation.detail);
            }
            verdicts.push(verdict);
            probe(name);
        }
    }

    println!(
        "\n{}",
        render_table(
            &[
                "scenario",
                "backend",
                "committed",
                "stalled",
                "verdict",
                "violations"
            ],
            &rows
        )
    );

    let mut json = String::from("{\n  \"runs\": [\n");
    for (i, verdict) in verdicts.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(json, "    {}", verdict.to_json());
    }
    json.push_str("\n  ]\n}\n");
    let dir = std::path::Path::new("target/bench-results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
    } else {
        let path = dir.join("scenario_sweep.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
        }
    }

    let violations: usize = verdicts.iter().map(|v| v.violations().len()).sum();
    println!(
        "scenario sweep: {} runs, {violations} expectation violations",
        verdicts.len()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
