//! **Fig. 9** — Task-processing algorithm vs batch-testing algorithm.
//!
//! The paper fills a local queue with n ∈ {20k..100k} in-flight
//! transactions, then matches blocks of m ∈ {1k, 5k, 10k} transactions
//! against it. Batch testing scans the queue per transaction (O(n·m));
//! Hammer's Bloom-filtered dynamic hash index matches in O(1) each, so its
//! execution time stays flat while the baseline grows linearly with n —
//! the paper reports ≥4× at n = 100k.

use std::time::{Duration, Instant};

use bench::save_csv;
use hammer_chain::smallbank::Op;
use hammer_chain::types::{Transaction, TxId};
use hammer_core::baseline::BatchQueue;
use hammer_core::index::TxTable;
use hammer_core::shard::ShardedTxTable;
use hammer_store::report::{render_table, to_csv};

fn tx_ids(n: usize) -> Vec<TxId> {
    (0..n as u64)
        .map(|nonce| {
            Transaction {
                client_id: 0,
                server_id: 0,
                nonce,
                op: Op::KvGet { key: nonce },
                chain_name: "bench".to_owned(),
                contract_name: "kv".to_owned(),
            }
            .id()
        })
        .collect()
}

fn main() {
    println!("=== Fig. 9: task-processing vs batch-testing execution time ===\n");

    let queue_sizes = [20_000usize, 40_000, 60_000, 80_000, 100_000];
    let block_sizes = [1_000usize, 5_000, 10_000];

    let mut rows = Vec::new();
    for &n in &queue_sizes {
        let ids = tx_ids(n);
        for &m in &block_sizes {
            // The block matches the most recently inserted transactions —
            // the *worst* case for a front-scanning queue.
            let block: Vec<TxId> = ids[n - m..].to_vec();

            // Batch baseline.
            let mut queue = BatchQueue::new();
            for id in &ids {
                queue.insert(*id, 0, 0, Duration::ZERO);
            }
            let start = Instant::now();
            let matched = queue.complete_block(&block, Duration::from_secs(1));
            let batch_time = start.elapsed();
            assert_eq!(matched, m);

            // Hammer task processing.
            let mut table = TxTable::with_capacity(n);
            for id in &ids {
                table.insert(*id, 0, 0, Duration::ZERO);
            }
            let start = Instant::now();
            let mut matched = 0;
            for id in &block {
                if table.complete(id, Duration::from_secs(1), true) {
                    matched += 1;
                }
            }
            let task_time = start.elapsed();
            assert_eq!(matched, m);

            let ratio = batch_time.as_secs_f64() / task_time.as_secs_f64().max(1e-9);
            rows.push(vec![
                n.to_string(),
                m.to_string(),
                format!("{:.3}", batch_time.as_secs_f64() * 1e3),
                format!("{:.3}", task_time.as_secs_f64() * 1e3),
                format!("{ratio:.1}x"),
            ]);
        }
    }

    let header = ["queue_n", "block_m", "batch_ms", "taskproc_ms", "speedup"];
    println!("{}", render_table(&header, &rows));
    save_csv("fig9_taskproc", &to_csv(&header, &rows));

    println!("Paper reference: task processing stays flat in n and is >=4x faster");
    println!("at n = 100k; batch testing grows linearly with queue length.");

    // Scaling curve beyond the paper's 100k: match cost per transaction
    // as the in-flight count climbs toward the driver-ceiling depths,
    // sharded tracker vs single-lock (single-threaded here — the
    // contended comparison is the driver_ceiling bin's job; this curve
    // isolates the data-structure cost of partitioning).
    println!("\n=== Scaling curve: match cost vs in-flight count (single-threaded) ===\n");
    let depths = [200_000usize, 500_000, 1_000_000];
    let m = 10_000usize;
    let mut scaling_rows = Vec::new();
    for &n in &depths {
        let ids = tx_ids(n);
        let entries: Vec<(TxId, bool)> = ids[n - m..].iter().map(|id| (*id, true)).collect();
        let mut costs = Vec::new();
        for shards in [1usize, 8] {
            let table = ShardedTxTable::new(shards, n);
            for id in &ids {
                table.insert(*id, 0, 0, Duration::ZERO);
            }
            let mut out = Vec::with_capacity(m);
            let start = Instant::now();
            table.complete_block(&entries, Duration::from_secs(1), &mut out);
            let elapsed = start.elapsed();
            assert_eq!(out.len(), m);
            costs.push(elapsed.as_secs_f64() * 1e9 / m as f64);
        }
        scaling_rows.push(vec![
            n.to_string(),
            m.to_string(),
            format!("{:.1}", costs[0]),
            format!("{:.1}", costs[1]),
            format!("{:.2}x", costs[0] / costs[1].max(1e-9)),
        ]);
    }
    let scaling_header = [
        "inflight_n",
        "block_m",
        "single_lock_ns_per_tx",
        "sharded8_ns_per_tx",
        "sharded_speedup",
    ];
    println!("{}", render_table(&scaling_header, &scaling_rows));
    save_csv("fig9_scaling", &to_csv(&scaling_header, &scaling_rows));
    println!("O(1) matching holds at million-record depth; see driver_ceiling");
    println!("for the contended (multi-thread) version of this comparison.");
}
