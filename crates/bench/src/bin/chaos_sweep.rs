//! **Chaos sweep** — every registered backend under N seeded randomized
//! fault schedules, judged by the run-level invariant oracle.
//!
//! Each (backend, seed) cell deploys a fresh simulated chain, generates a
//! [`hammer_net::ChaosSchedule`] from the seed over the chain's own
//! ingress/sealer topology, runs SmallBank through the resilient
//! submission path with the stall watchdog armed, and then checks the
//! oracle's invariants: the accounting identity, fault-window attribution
//! exactness, journal monotonicity, no stall, and no leaked threads
//! (see `hammer_core::chaos`).
//!
//! ```text
//! cargo run --release --bin chaos_sweep -- [--seeds N] [--slices N]
//! ```
//!
//! Emits a JSON verdict matrix to `target/bench-results/chaos_sweep.json`
//! and a final summary line (`chaos sweep: R runs, V invariant
//! violations`) that CI greps for `0 invariant violations`.

use std::fmt::Write as _;

use hammer_core::chaos::{run_chaos_case, ChaosCase, ChaosVerdict};
use hammer_store::report::render_table;

/// (backend, rate tx/s, speedup) — the fault-sweep operating points:
/// moderate rates well under capacity so the injected faults, not
/// saturation, shape the outcome. The registry's Ethereum keeps its 15 s
/// PoW blocks; the 30 s stall budget clears that comfortably.
const TARGETS: [(&str, u32, f64); 4] = [
    ("ethereum-sim", 40, 100.0),
    ("fabric-sim", 150, 100.0),
    ("meepo-sim", 300, 50.0),
    ("neuchain-sim", 500, 100.0),
];

fn usage() -> ! {
    eprintln!("usage: chaos_sweep [--seeds N] [--slices N]");
    std::process::exit(2);
}

fn parse_args() -> (u64, usize) {
    let mut seeds = 10u64;
    let mut slices = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--seeds" => seeds = value().parse().unwrap_or_else(|_| usage()),
            "--slices" => slices = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if seeds == 0 || slices == 0 {
        usage();
    }
    (seeds, slices)
}

fn main() {
    let (seeds, slices) = parse_args();
    println!(
        "=== Chaos sweep: {seeds} seeded schedules x {} backends ===\n",
        TARGETS.len()
    );

    let mut rows = Vec::new();
    let mut verdicts: Vec<ChaosVerdict> = Vec::new();
    for (backend, rate, speedup) in TARGETS {
        for seed in 1..=seeds {
            eprintln!("running {backend} seed {seed} at {rate} tx/s ({speedup}x)...");
            let case = ChaosCase {
                rate,
                speedup,
                slices,
                ..ChaosCase::new(backend, seed)
            };
            let verdict = run_chaos_case(&case);
            rows.push(vec![
                backend.to_owned(),
                seed.to_string(),
                if verdict.stalled { "yes" } else { "no" }.to_owned(),
                if verdict.passed() { "pass" } else { "FAIL" }.to_owned(),
                verdict
                    .violations()
                    .iter()
                    .map(|c| c.name)
                    .collect::<Vec<_>>()
                    .join(","),
            ]);
            for violation in verdict.violations() {
                eprintln!("  VIOLATION {}: {}", violation.name, violation.detail);
            }
            verdicts.push(verdict);
        }
    }

    println!(
        "\n{}",
        render_table(
            &["backend", "seed", "stalled", "verdict", "violations"],
            &rows
        )
    );

    let mut json = String::from("{\n  \"runs\": [\n");
    for (i, verdict) in verdicts.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(json, "    {}", verdict.to_json());
    }
    json.push_str("\n  ]\n}\n");
    let dir = std::path::Path::new("target/bench-results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
    } else {
        let path = dir.join("chaos_sweep.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
        }
    }

    let violations: usize = verdicts.iter().map(|v| v.violations().len()).sum();
    println!(
        "chaos sweep: {} runs, {violations} invariant violations",
        verdicts.len()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
