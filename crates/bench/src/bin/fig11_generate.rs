//! **Fig. 11** — Real sequence vs generated sequence.
//!
//! Trains the paper's model on the first 80% of each trace, then rolls it
//! forward autoregressively over the final 20% horizon and overlays the
//! two series. The generated sequence should track long-term structure
//! (period), short-term dependencies, and bursts.

use bench::save_csv;
use hammer_predict::generate::generate_denormalized;
use hammer_predict::models::HammerModel;
use hammer_predict::{Dataset, SeriesModel, TrainConfig};
use hammer_store::report::{render_series, to_csv};
use hammer_workload::traces::{TraceKind, TraceSpec};

fn main() {
    println!("=== Fig. 11: real vs generated sequence (Ours) ===\n");
    let config = TrainConfig::default();

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for kind in TraceKind::all() {
        eprintln!("training on {}...", kind.name());
        let series = TraceSpec::paper(kind, 1).generate();
        let dataset = Dataset::new(&series, config.window, 0.8);
        let mut model = HammerModel::new(&config);
        model.fit(&dataset.train, &config);

        // Seed with the last training window, then generate the test span.
        let seed: Vec<f64> = dataset.train[dataset.train.len() - config.window..].to_vec();
        let horizon = series.len() - dataset.train.len();
        let generated = generate_denormalized(&mut model, &seed, horizon, &dataset.normalizer);
        let real = &series[dataset.train.len()..];

        println!(
            "{}",
            render_series(&format!("{} — real (test span)", kind.name()), real, 8)
        );
        println!(
            "{}",
            render_series(
                &format!("{} — generated (rollout)", kind.name()),
                &generated,
                8
            )
        );

        let mae: f64 = real
            .iter()
            .zip(&generated)
            .map(|(r, g)| (r - g).abs())
            .sum::<f64>()
            / real.len() as f64;
        let real_mean = real.iter().sum::<f64>() / real.len() as f64;
        println!(
            "{}: rollout MAE = {:.1} (mean level {:.1})\n",
            kind.name(),
            mae,
            real_mean
        );

        for (i, (r, g)) in real.iter().zip(&generated).enumerate() {
            csv_rows.push(vec![
                kind.name().to_owned(),
                i.to_string(),
                format!("{r}"),
                format!("{g:.1}"),
            ]);
        }
    }

    save_csv(
        "fig11_generate",
        &to_csv(&["dataset", "step", "real", "generated"], &csv_rows),
    );
    println!("Paper reference: the generated sequence captures bursts, long-term");
    println!("and short-term structure of the real sequence.");
}
