//! Shared harness code for the per-figure benchmark binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the full index). This library holds the
//! pieces they share: a one-call peak-throughput evaluation, result
//! formatting, and CSV output next to the binary's name.

use std::time::Duration;

use hammer_core::deploy::{ChainSpec, Deployment};
use hammer_core::driver::{EvalConfig, EvalReport, Evaluation, TestingMode};
use hammer_core::machine::ClientMachine;
use hammer_workload::{ControlSequence, WorkloadConfig};

/// Everything one evaluation run needs.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// The system under test.
    pub chain: ChainSpec,
    /// Testing mode (Hammer / Blockbench / Caliper).
    pub mode: TestingMode,
    /// Target submission rate, transactions per simulated second.
    pub rate: u32,
    /// Run length in simulated seconds.
    pub seconds: usize,
    /// Workload clients.
    pub clients: u32,
    /// Threads per client.
    pub threads_per_client: u32,
    /// Account pool size.
    pub accounts: usize,
    /// Client machine model.
    pub machine: ClientMachine,
    /// Clock speed-up.
    pub speedup: f64,
    /// Simulated drain timeout after the last submission.
    pub drain_timeout: Duration,
    /// Interactive mode: per-event listener cost.
    pub listen_cost: Duration,
    /// Interactive mode: SDK event-buffer depth before losses.
    pub event_buffer: usize,
}

impl RunSpec {
    /// [`RunSpec::peak`] with the chain selected by registry name
    /// (`"fabric-sim"`, `"neuchain-sim"`, ...) at its paper-default
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics when the name is not a registered backend.
    pub fn peak_named(name: &str, rate: u32, seconds: usize) -> Self {
        let chain = ChainSpec::by_name(name)
            .unwrap_or_else(|| panic!("unknown backend {name:?}; see BackendRegistry::builtin()"));
        Self::peak(chain, rate, seconds)
    }

    /// A sensible default shape: peak measurement with an unconstrained
    /// client (isolates the chain side).
    pub fn peak(chain: ChainSpec, rate: u32, seconds: usize) -> Self {
        RunSpec {
            chain,
            mode: TestingMode::TaskProcessing,
            rate,
            seconds,
            clients: 4,
            threads_per_client: 2,
            accounts: 5_000,
            machine: ClientMachine::unconstrained(),
            speedup: 100.0,
            drain_timeout: Duration::from_secs(120),
            listen_cost: Duration::from_micros(400),
            event_buffer: 1_000,
        }
    }

    /// Executes the run and returns the report.
    pub fn run(&self) -> EvalReport {
        let deployment = Deployment::up(self.chain.clone(), self.speedup);
        let workload = WorkloadConfig {
            accounts: self.accounts,
            clients: self.clients,
            threads_per_client: self.threads_per_client,
            chain_name: self.chain.name().to_owned(),
            ..WorkloadConfig::default()
        };
        let control = ControlSequence::constant(self.rate, self.seconds, Duration::from_secs(1));
        let config = EvalConfig::builder()
            .mode(self.mode)
            .machine(self.machine)
            .signer_threads(8)
            .poll_interval(Duration::from_millis(100))
            .drain_timeout(self.drain_timeout)
            .listen_cost(self.listen_cost)
            .event_buffer(self.event_buffer)
            .build()
            .expect("valid bench config");
        Evaluation::new(config)
            .run(&deployment, &workload, &control)
            .expect("evaluation failed")
    }
}

/// One row of a summary table: chain, TPS, mean latency.
pub fn summary_row(report: &EvalReport) -> Vec<String> {
    vec![
        report.chain.clone(),
        format!("{:.1}", report.overall_tps),
        format!("{:.3}", report.latency.mean_s),
        format!("{:.3}", report.latency.p95_s),
        report.committed.to_string(),
        report.failed.to_string(),
        report.timed_out.to_string(),
        report.rejected.to_string(),
    ]
}

/// The header matching [`summary_row`].
pub fn summary_header() -> [&'static str; 8] {
    [
        "chain",
        "tps",
        "mean_lat_s",
        "p95_lat_s",
        "committed",
        "failed",
        "timed_out",
        "rejected",
    ]
}

/// Writes CSV text under `target/bench-results/<name>.csv`, creating the
/// directory. Prints the path. Failures are reported, not fatal — the
/// numbers are already on stdout.
pub fn save_csv(name: &str, csv: &str) {
    let dir = std::path::Path::new("target/bench-results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, csv) {
        Ok(()) => println!("\n[saved {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
    }
}

/// Formats a duration of wall time as seconds with millisecond precision.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_runspec_runs_quickly_on_neuchain() {
        let mut spec = RunSpec::peak(ChainSpec::neuchain_default(), 200, 2);
        spec.speedup = 1000.0;
        spec.accounts = 100;
        let report = spec.run();
        assert!(report.committed > 100, "committed = {}", report.committed);
    }

    #[test]
    fn summary_row_matches_header_len() {
        let mut spec = RunSpec::peak(ChainSpec::neuchain_default(), 100, 2);
        spec.speedup = 1000.0;
        spec.accounts = 50;
        let report = spec.run();
        assert_eq!(summary_row(&report).len(), summary_header().len());
    }
}
